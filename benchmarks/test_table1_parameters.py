"""T1 — Table 1: default damping parameters (Cisco, Juniper)."""

from bench_utils import run_once

from repro.experiments.table1 import table1_experiment


def test_table1_parameters(benchmark, record_experiment):
    result = run_once(benchmark, table1_experiment)
    record_experiment(result)
    cisco = result.data["cisco"]
    juniper = result.data["juniper"]
    assert cisco["withdrawal_penalty"] == 1000.0
    assert cisco["reannouncement_penalty"] == 0.0
    assert juniper["reannouncement_penalty"] == 1000.0
    assert juniper["cutoff_threshold"] == 3000.0

"""X7 — ablation: damping-parameter sensitivity (intended-model sweep)."""

from bench_utils import run_once

from repro.experiments.ablations import sensitivity_experiment


def test_ablation_sensitivity(benchmark, record_experiment):
    result = run_once(benchmark, sensitivity_experiment)
    record_experiment(result)
    onsets = {row[0]: row[1] for row in result.rows}
    # Raising the cut-off tolerates more flaps before suppression.
    assert onsets["cutoff_threshold=2000"] == 3
    assert onsets["cutoff_threshold=6000"] > onsets["cutoff_threshold=3000"]
    # Juniper suppresses earlier than Cisco (re-announcements charge too).
    assert onsets["juniper-defaults"] == 2
    # Sustained delays are capped by the hold-down time.
    for row in result.rows:
        assert row[3] <= 3600.0 + 1e-6

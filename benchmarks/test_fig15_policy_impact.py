"""F15 — Figure 15: impact of routing policy (208-node Internet topology).

Shape targets (paper): the no-valley policy reduces false suppression and
moves convergence toward — but not perfectly onto — the intended curve;
without policy the convergence for small n stays far above intended.
"""

from bench_utils import run_once

from repro.experiments.fig15 import fig15_experiment


def test_fig15_policy_impact(benchmark, record_experiment):
    result = run_once(benchmark, fig15_experiment)
    record_experiment(result)
    with_policy = result.data["sweeps"]["with_policy"]
    no_policy = result.data["sweeps"]["no_policy"]
    calc = result.data["calculation"]

    # Policy reduces false suppression at every pulse count with flaps.
    for n in range(1, 11):
        assert with_policy.point(n).suppressions <= no_policy.point(n).suppressions

    # Below the critical point, no-policy convergence is far above
    # intended while the policy curve sits much closer.
    gap_no_policy = no_policy.point(1).convergence_time - calc[1]
    gap_policy = with_policy.point(1).convergence_time - calc[1]
    assert gap_policy < gap_no_policy

    # Policy also prunes exploration traffic.
    assert with_policy.point(3).message_count < no_policy.point(3).message_count

"""X8 — ablation: convergence vs hop distance from the ISP."""

from bench_utils import run_once

from repro.experiments.ablations import distance_profile_experiment


def test_ablation_distance_profile(benchmark, record_experiment):
    result = run_once(benchmark, distance_profile_experiment)
    record_experiment(result)
    buckets = {row[0]: row for row in result.rows}
    # The torus has rings out to 10 hops from any node.
    assert 0 in buckets and max(buckets) >= 5
    # False suppression reaches routers several hops away.
    far_with_suppression = sum(
        row[4] for hops, row in buckets.items() if hops >= 3
    )
    assert far_with_suppression > 0
    # Some remote routers settle long after the origin's final
    # announcement (the releasing period).
    assert max(row[3] for row in result.rows) > 1000.0

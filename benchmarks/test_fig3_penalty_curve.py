"""F3 — Figure 3: penalty value over time in response to a few flaps."""

from bench_utils import run_once

from repro.experiments.fig3 import fig3_experiment


def test_fig3_penalty_curve(benchmark, record_experiment):
    result = run_once(benchmark, fig3_experiment)
    record_experiment(result)
    samples = dict(result.data["samples"])
    # Shape: the curve rises past the cut-off with the flaps, then decays
    # exponentially below the reuse threshold — as in the paper's plot.
    assert max(samples.values()) > 2000.0
    assert samples[2640.0] < 750.0
    assert result.data["suppressed_at"] is not None

"""Shared helpers for the benchmark harness.

Each benchmark reproduces one table or figure: it runs the experiment
driver under pytest-benchmark timing (one round — these are simulations,
not micro-benchmarks), prints the same rows/series the paper reports, and
saves the rendered output under ``benchmarks/results/`` so the artefacts
survive pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_experiment():
    """Returns a function that renders, prints, and persists a result."""

    def _record(result) -> None:  # noqa: ANN001 - ExperimentResult
        rendered = result.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")

    return _record



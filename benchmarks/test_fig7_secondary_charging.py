"""F7 — Figure 7: secondary charging in a far router's penalty trace."""

from bench_utils import run_once

from repro.experiments.fig7 import fig7_experiment


def test_fig7_secondary_charging(benchmark, record_experiment):
    result = run_once(benchmark, fig7_experiment)
    record_experiment(result)
    # Shape: after a single pulse, reuse-triggered update waves push the
    # penalty back up and postpone the reuse timer at least once; the
    # network convergence is far beyond plain path exploration.
    assert len(result.data["recharges"]) >= 1
    assert result.data["convergence_time"] > 1000.0
    record = result.data["record"]
    assert record.ended is not None and record.ended > record.started

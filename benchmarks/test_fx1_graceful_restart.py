"""FX1 — router crash mid-episode: graceful restart vs hard reset.

This is the figure-style comparison of crash-induced damping charges:
the hard reset's withdrawal/re-announce burst is charged at every
neighbour, while graceful restart retains the crashed peer's routes as
stale and a clean return charges nothing.
"""

from bench_utils import run_once

from repro.experiments.gr_faults import gr_faults_experiment


def test_fx1_graceful_restart(benchmark, record_experiment):
    result = run_once(benchmark, gr_faults_experiment)
    record_experiment(result)
    by_mode = {row[0]: row for row in result.rows}
    baseline = by_mode["no crash (baseline)"]
    hard = by_mode["hard reset"]
    graceful = by_mode["graceful restart"]
    # Columns: mode, messages, drops, suppressions, fault-induced,
    # secondary, stale flushed, convergence.
    assert baseline[4] == 0          # no crash, nothing fault-induced
    assert hard[4] > 0               # the hard reset is charged
    assert graceful[4] == 0          # GR suppresses the crash charges
    assert graceful[5] < hard[5]     # and the secondary-charging echo
    assert graceful[7] < hard[7]     # ... so convergence recovers too
    for row in result.rows:
        assert row[7] > 0

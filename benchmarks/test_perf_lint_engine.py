"""Benchmarks for the incremental, parallel lint engine.

Measures the three execution modes of :func:`repro.lint.lint_paths` over
the real source tree — cold sequential, warm from the content-digest
cache, and parallel (``--jobs 4``) — and asserts the engine's two
contracts: the warm run of an unchanged tree is at least 5x faster than
the cold run, and every mode produces byte-identical findings JSON.
The timings are merged into ``benchmarks/results/perf.json`` alongside
the simulator microbenchmarks so the lint engine's own perf trajectory
is tracked across PRs.
"""

import json
import pathlib
import time

import pytest

from repro.lint import lint_paths, make_config, render_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PERF_JSON = RESULTS_DIR / "perf.json"
PROFILE_JSON = RESULTS_DIR / "profile.json"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

_PERF = {}


def _record(name: str, seconds, **extra) -> None:
    entry = {"seconds": round(float(seconds), 6)}
    entry.update(extra)
    _PERF[name] = entry


@pytest.fixture(scope="module", autouse=True)
def _export_perf_json():
    yield
    if not _PERF:
        return
    merged = {}
    if PERF_JSON.exists():
        try:
            merged = json.loads(PERF_JSON.read_text(encoding="utf-8")).get(
                "benchmarks", {}
            )
        except ValueError:
            merged = {}
    merged.update(_PERF)
    payload = json.loads(PERF_JSON.read_text(encoding="utf-8")) if (
        PERF_JSON.exists()
    ) else {"schema": 1}
    payload["benchmarks"] = dict(sorted(merged.items()))
    RESULTS_DIR.mkdir(exist_ok=True)
    PERF_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _config():
    return make_config(passes=("all",), hot_profile=str(PROFILE_JSON))


def _timed_lint(cache_dir=None, jobs=1):
    start = time.perf_counter()
    report = lint_paths(
        [str(SRC_DIR)],
        _config(),
        cache_dir=str(cache_dir) if cache_dir else None,
        jobs=jobs,
    )
    return time.perf_counter() - start, report


def test_lint_cold_vs_warm_cache(tmp_path):
    """Cold populates the cache; warm must short-circuit every file and
    finish at least 5x faster with byte-identical findings."""
    cache_dir = tmp_path / "lint_cache"
    cold_s, cold = _timed_lint(cache_dir)
    assert cold.files_checked > 50
    assert cold.cache_stats["local_hits"] == 0
    assert cold.cache_stats["local_misses"] == cold.files_checked

    warm_s, warm = _timed_lint(cache_dir)
    assert warm.cache_stats["local_misses"] == 0
    assert warm.cache_stats["perf_misses"] == 0
    assert warm.cache_stats["local_hits"] == warm.files_checked
    assert render_json(warm) == render_json(cold)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= 5.0, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )
    _record("lint_src_cold_sequential", cold_s, files=cold.files_checked)
    _record(
        "lint_src_warm_cache",
        warm_s,
        files=warm.files_checked,
        speedup_vs_cold=round(speedup, 1),
    )


def test_lint_parallel_jobs4_matches_sequential(tmp_path):
    """``--jobs 4`` is a pure accelerator: identical findings JSON."""
    seq_s, sequential = _timed_lint()
    par_s, parallel = _timed_lint(jobs=4)
    assert render_json(parallel) == render_json(sequential)
    _record("lint_src_cold_jobs4", par_s, files=parallel.files_checked)
    _record("lint_src_cold_sequential_nocache", seq_s)


def test_warm_cache_after_single_edit_stays_incremental(tmp_path):
    """Editing one file re-lints one file; the report still matches a
    cold run of the same tree (measured on a copied tree so the real
    source is never touched)."""
    import shutil

    tree = tmp_path / "src"
    shutil.copytree(SRC_DIR, tree)
    cache_dir = tmp_path / "lint_cache"

    def run():
        start = time.perf_counter()
        report = lint_paths([str(tree)], _config(), cache_dir=str(cache_dir))
        return time.perf_counter() - start, report

    run()  # populate
    target = tree / "repro" / "core" / "penalty.py"
    target.write_text(target.read_text() + "\n# touched by benchmark\n")
    edit_s, edited = run()
    assert edited.cache_stats["local_misses"] == 1
    fresh = lint_paths([str(tree)], _config())
    assert render_json(edited) == render_json(fresh)
    _record("lint_src_warm_one_edit", edit_s, files=edited.files_checked)

"""F8 — Figure 8: convergence time vs number of pulses (four series).

Shape targets (paper): no-damping stays near zero; full damping greatly
exceeds the calculation for small n; past the critical point Nh the
simulated mesh curve matches the calculation; the Internet-derived curve
shows the same trend.
"""

import pytest
from bench_utils import run_once

from repro.experiments.fig8_9 import critical_pulse_count, fig8_experiment


def test_fig8_convergence_time(benchmark, record_experiment):
    result = run_once(benchmark, fig8_experiment)
    record_experiment(result)
    sweeps = result.data["sweeps"]
    calc = result.data["calculation"]

    mesh = sweeps["full_damping_mesh"]
    internet = sweeps["full_damping_internet"]
    no_damping = sweeps["no_damping_mesh"]

    # No damping: short convergence at every pulse count.
    for point in no_damping.points:
        assert point.convergence_time < 300.0

    # Small n: measured far above intended.
    assert mesh.point(1).convergence_time > 5 * max(calc[1], 1.0)
    assert internet.point(1).convergence_time > 5 * max(calc[1], 1.0)

    # Past the critical point: measured matches intended.
    nh = critical_pulse_count(sweeps)
    assert nh is not None and nh <= 6
    for n in range(nh, 11):
        assert mesh.point(n).convergence_time == pytest.approx(calc[n], rel=0.15)

"""F14 — Figure 14: message count with RCN-enhanced damping.

Shape targets (paper): RCN still caps the message count at large n, and
produces somewhat more messages than plain damping (suppression happens
exactly at the configured pulse count instead of early false suppression).
"""

from bench_utils import run_once

from repro.experiments.fig13_14 import fig14_experiment


def test_fig14_rcn_messages(benchmark, record_experiment):
    result = run_once(benchmark, fig14_experiment)
    record_experiment(result)
    sweeps = result.data["sweeps"]
    rcn = sweeps["damping_rcn"]
    plain = sweeps["full_damping_mesh"]
    no_damping = sweeps["no_damping_mesh"]

    # RCN message count flattens at large n (capped by ISP suppression).
    plateau = [rcn.point(n).message_count for n in range(5, 11)]
    assert max(plateau) < min(plateau) * 1.2

    # More messages than plain damping at large n, fewer than no damping.
    for n in (8, 10):
        assert rcn.point(n).message_count > plain.point(n).message_count
        assert rcn.point(n).message_count < no_damping.point(n).message_count

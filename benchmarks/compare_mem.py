#!/usr/bin/env python3
"""Compare a fresh scale-episode measurement against the committed
memory baseline.

CI's ``scale-smoke`` job runs the 1k-node flap episode (which writes
``benchmarks/results/mem.json`` — the ``topo bench --json`` /
``ScaleEpisodeResult.as_dict()`` document) and then this script, which
fails the job when:

- ``peak_rss_bytes`` grew beyond ``--rss-threshold`` times the
  committed ``mem_baseline.json`` value (default 1.30x), or breaches
  the absolute ``--max-rss-mb`` ceiling when given;
- ``total_seconds`` grew beyond ``--time-threshold`` times the
  baseline (default 2.0x — wall clock on shared runners is noisy, the
  gate exists to catch order-of-magnitude scaling regressions, the
  perf gate's tighter 1.25x handles steady-state drift), or breaches
  the absolute ``--max-seconds`` budget when given.

The wall-clock comparison is skipped (with an explicit notice) when the
current host has fewer than 2 CPUs — mirroring ``compare_perf.py``'s
speedup-gate skip — because a contended single-core runner measures
scheduler luck, not the simulator. The RSS comparison always runs:
resident memory does not depend on core count.

The two documents must describe the same workload: ``nodes``, ``seed``,
``pulses``, and ``coalesce_delivery`` have to match, otherwise the
comparison is meaningless and the script fails loudly. When the
episode digest is present on both sides a mismatch also fails — a
digest change means the workload itself changed, so refresh the
baseline deliberately (see docs/SCALING.md) rather than letting the
memory numbers drift with it.

Stdlib-only on purpose: the gate must not depend on anything the test
extra does not already install.
"""

import argparse
import json
import os
import sys

WORKLOAD_KEYS = ("nodes", "seed", "pulses", "coalesce_delivery")


def load_measurement(path):
    """One scale-episode measurement document (``topo bench --json``)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for key in ("peak_rss_bytes", "total_seconds"):
        if not isinstance(payload.get(key), (int, float)):
            raise ValueError(f"{path}: no numeric {key!r} (schema changed?)")
    return payload


def host_cpus():
    """The CPU count the wall-clock skip keys on (affinity-aware where
    the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def check_workload_match(baseline, current):
    """Failure strings when the two documents measured different work."""
    failures = []
    for key in WORKLOAD_KEYS:
        if baseline.get(key) != current.get(key):
            failures.append(
                f"workload mismatch on {key!r}: baseline "
                f"{baseline.get(key)!r} vs current {current.get(key)!r}"
            )
    base_digest = baseline.get("digest")
    cur_digest = current.get("digest")
    if base_digest and cur_digest and base_digest != cur_digest:
        failures.append(
            f"episode digest changed ({base_digest[:12]}… -> "
            f"{cur_digest[:12]}…): the workload itself differs; refresh "
            f"mem_baseline.json in the PR that legitimately changes it"
        )
    return failures


def compare(baseline, current, args, cpus):
    """(failures, notices) for the RSS and wall-clock gates."""
    failures = []
    notices = []

    base_rss = float(baseline["peak_rss_bytes"])
    cur_rss = float(current["peak_rss_bytes"])
    ratio = cur_rss / base_rss if base_rss > 0 else float("inf")
    notices.append(
        f"peak RSS {cur_rss / 1024**2:.1f} MB vs baseline "
        f"{base_rss / 1024**2:.1f} MB ({ratio:.2f}x, threshold "
        f"{args.rss_threshold:.2f}x)"
    )
    if ratio > args.rss_threshold:
        failures.append(
            f"peak RSS regressed {ratio:.2f}x beyond the "
            f"{args.rss_threshold:.2f}x threshold "
            f"({base_rss / 1024**2:.1f} MB -> {cur_rss / 1024**2:.1f} MB)"
        )
    if args.max_rss_mb is not None and cur_rss > args.max_rss_mb * 1024**2:
        failures.append(
            f"peak RSS {cur_rss / 1024**2:.1f} MB breaches the absolute "
            f"{args.max_rss_mb:.0f} MB ceiling"
        )

    base_s = float(baseline["total_seconds"])
    cur_s = float(current["total_seconds"])
    if cpus < 2:
        notices.append(
            f"wall-clock budget skipped — {cpus}-CPU host, where episode "
            f"timing measures contention rather than the simulator"
        )
        return failures, notices
    ratio = cur_s / base_s if base_s > 0 else float("inf")
    notices.append(
        f"wall clock {cur_s:.2f}s vs baseline {base_s:.2f}s "
        f"({ratio:.2f}x, threshold {args.time_threshold:.2f}x)"
    )
    if ratio > args.time_threshold:
        failures.append(
            f"episode wall clock regressed {ratio:.2f}x beyond the "
            f"{args.time_threshold:.2f}x threshold "
            f"({base_s:.2f}s -> {cur_s:.2f}s)"
        )
    if args.max_seconds is not None and cur_s > args.max_seconds:
        failures.append(
            f"episode took {cur_s:.2f}s, over the absolute "
            f"{args.max_seconds:.1f}s budget"
        )
    return failures, notices


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/mem_baseline.json",
        help="committed baseline measurement JSON",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results/mem.json",
        help="freshly measured scale-episode JSON",
    )
    parser.add_argument(
        "--rss-threshold",
        type=float,
        default=1.30,
        help="fail when current/baseline peak RSS exceeds this ratio (default 1.30)",
    )
    parser.add_argument(
        "--time-threshold",
        type=float,
        default=2.0,
        help="fail when current/baseline wall clock exceeds this ratio (default 2.0)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="absolute peak-RSS ceiling in MB (optional)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="absolute wall-clock budget in seconds (optional)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_measurement(args.baseline)
        current = load_measurement(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare_mem: {exc}", file=sys.stderr)
        return 2

    failures = check_workload_match(baseline, current)
    if not failures:
        gate_failures, notices = compare(baseline, current, args, host_cpus())
        failures.extend(gate_failures)
        for notice in notices:
            print(f"compare_mem: {notice}")

    if failures:
        for failure in failures:
            print(f"compare_mem: {failure}", file=sys.stderr)
        return 1
    print("compare_mem: scale episode within memory and wall-clock budgets")
    return 0


if __name__ == "__main__":
    sys.exit(main())

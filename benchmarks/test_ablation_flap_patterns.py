"""X5 — ablation: temporal flap patterns (regular/poisson/jittered/burst)."""

from bench_utils import run_once

from repro.experiments.ablations import flap_pattern_experiment


def test_ablation_flap_patterns(benchmark, record_experiment):
    result = run_once(benchmark, flap_pattern_experiment)
    record_experiment(result)
    by_pattern = {row[0]: row for row in result.rows}
    # Every pattern converges and triggers some damping at 5 pulses.
    for name, row in by_pattern.items():
        assert row[3] > 0, f"{name}: expected nonzero convergence time"
        assert row[5] > 0, f"{name}: expected suppressions"
    # A jittered pattern is a small perturbation of regular: same pulse
    # count, same ballpark of suppression.
    assert by_pattern["jittered"][1] == by_pattern["regular"][1]

"""Internet-scale benchmarks: large-graph build + flap episodes.

The scale tiers measure what the small-figure benchmarks cannot: how
the engine behaves when the topology is 5–50x the paper's largest
graph. Each tier records wall-clock seconds, engine events per second,
and the process's peak RSS into ``perf.json`` (same gate as every other
benchmark, via ``compare_perf.py``); the 1k tier additionally feeds the
CI ``scale-smoke`` memory gate (``compare_mem.py``).

The 1k tier runs on every benchmark invocation. The 5k and 10k tiers
take minutes, so they run only when ``SCALE_FULL=1`` is set — CI's
scale-smoke job runs the 1k tier, the 10k acceptance run is a manual /
nightly concern (see docs/SCALING.md).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys

import pytest

from bench_utils import run_once
from repro.experiments.parallel import available_cpus
from repro.experiments.scale import run_scale_episode
from repro.topology.scale import powerlaw_topology

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PERF_JSON = RESULTS_DIR / "perf.json"
MEM_JSON = RESULTS_DIR / "mem.json"

_PERF = {}

_FULL = os.environ.get("SCALE_FULL") == "1"
needs_full = pytest.mark.skipif(
    not _FULL, reason="5k/10k tiers run only with SCALE_FULL=1"
)


def _record(name: str, seconds, **extra) -> None:
    entry = {"seconds": round(float(seconds), 6)}
    entry.update(extra)
    _PERF[name] = entry


@pytest.fixture(scope="module", autouse=True)
def _export_perf_json():
    yield
    if not _PERF:
        return
    # Merge-not-clobber: other benchmark modules export into the same
    # document (see test_perf_microbenchmarks._export_perf_json).
    merged = {}
    if PERF_JSON.exists():
        try:
            merged = json.loads(PERF_JSON.read_text(encoding="utf-8")).get(
                "benchmarks", {}
            )
        except ValueError:
            merged = {}
    merged.update(_PERF)
    payload = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            "available_cpus": available_cpus(),
            "platform": sys.platform,
        },
        "benchmarks": dict(sorted(merged.items())),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    PERF_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _episode_entry(result) -> dict:
    return {
        "nodes": result.nodes,
        "edges": result.edges,
        "events": result.events,
        "events_per_sec": round(result.events_per_sec, 1),
        "peak_rss_bytes": result.peak_rss_bytes,
    }


def test_perf_scale_build_1k(benchmark):
    """Generate a 1k-node power-law graph with relationships."""
    topology = run_once(
        benchmark, powerlaw_topology, 1000, seed=3, with_relationships=True
    )
    assert topology.node_count == 1000
    _record("scale_build_1k", benchmark.stats.stats.min)


def test_perf_scale_episode_1k(benchmark):
    """1k-node flap episode (coalesced delivery), the scale-smoke tier.

    Also writes ``mem.json`` — the current-side document for the CI
    memory gate (``compare_mem.py`` vs the committed
    ``mem_baseline.json``).
    """
    result = run_once(benchmark, run_scale_episode, nodes=1000)
    assert result.nodes == 1000
    assert result.suppressions > 0  # damping actually engaged at scale
    _record("scale_episode_1k", result.total_seconds, **_episode_entry(result))
    RESULTS_DIR.mkdir(exist_ok=True)
    MEM_JSON.write_text(
        json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@needs_full
def test_perf_scale_episode_5k(benchmark):
    """5k-node flap episode (SCALE_FULL tier)."""
    result = run_once(benchmark, run_scale_episode, nodes=5000)
    assert result.nodes == 5000
    _record("scale_episode_5k", result.total_seconds, **_episode_entry(result))


@needs_full
def test_perf_scale_episode_10k():
    """10k-node flap episode — the acceptance tier (< 2 GB peak RSS)."""
    result = run_scale_episode(nodes=10000)
    assert result.nodes == 10000
    assert result.peak_rss_bytes < 2 * 1024**3, (
        f"10k episode peak RSS {result.peak_rss_bytes / 1024**2:.0f} MB "
        f"breaches the 2 GB acceptance bar"
    )
    _record("scale_episode_10k", result.total_seconds, **_episode_entry(result))

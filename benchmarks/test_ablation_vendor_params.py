"""X3 — ablation: Cisco vs Juniper default parameters."""

from bench_utils import run_once

from repro.experiments.ablations import vendor_params_experiment


def test_ablation_vendor_params(benchmark, record_experiment):
    result = run_once(benchmark, vendor_params_experiment)
    record_experiment(result)
    intended = {(row[0], row[1]): row[5] for row in result.rows}
    # Juniper's higher cut-off (3000) and re-announcement penalty shift
    # the intended delay at the same pulse count relative to Cisco's.
    assert intended[("juniper", 5)] != intended[("cisco", 5)]
    # Both vendors are suppressed at 8 pulses with 60s intervals.
    assert intended[("juniper", 8)] > 0
    assert intended[("cisco", 8)] > 0

"""X6 — ablation: MRAI applied to withdrawals (WRATE) vs immediate."""

from bench_utils import run_once

from repro.experiments.ablations import mrai_withdrawal_experiment


def test_ablation_mrai_withdrawals(benchmark, record_experiment):
    result = run_once(benchmark, mrai_withdrawal_experiment)
    record_experiment(result)
    immediate = [row for row in result.rows if row[0] == "immediate"]
    limited = [row for row in result.rows if row[0] == "rate-limited"]
    # Both variants converge at every pulse count.
    for row in immediate + limited:
        assert row[2] > 0
        assert row[3] > 0

"""F9 — Figure 9: message count vs number of pulses.

Shape targets (paper): without damping the count grows ~linearly with n;
with damping it flattens once the ISP suppresses the flapping route.
"""

import pytest
from bench_utils import run_once

from repro.experiments.fig8_9 import fig9_experiment


def test_fig9_message_count(benchmark, record_experiment):
    result = run_once(benchmark, fig9_experiment)
    record_experiment(result)
    sweeps = result.data["sweeps"]
    no_damping = sweeps["no_damping_mesh"]
    damping = sweeps["full_damping_mesh"]

    # Linear growth without damping.
    m1 = no_damping.point(1).message_count
    for n in (3, 5, 8, 10):
        assert no_damping.point(n).message_count == pytest.approx(n * m1, rel=0.4)

    # With damping the count is roughly flat for n >= 5 (suppression at
    # the ISP blocks further flaps from entering the network).
    plateau = [damping.point(n).message_count for n in range(5, 11)]
    assert max(plateau) < min(plateau) * 1.2

    # And damping caps the count well below no-damping at large n.
    assert damping.point(10).message_count < no_damping.point(10).message_count / 2

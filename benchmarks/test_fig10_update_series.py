"""F10 — Figure 10: update series and damped-link count for n = 1, 3, 5.

Shape targets (paper): n=1 shows distinct charging / suppression /
releasing periods with a long releasing tail; n=3 shows muffling plus a
strong secondary-charging surge; n=5 converges with essentially only
silent reuses until the ISP's own timer fires.
"""

from bench_utils import run_once

from repro.core.states import DampingPhase
from repro.experiments.fig10 import fig10_experiment


def test_fig10_update_series(benchmark, record_experiment):
    result = run_once(benchmark, fig10_experiment)
    record_experiment(result)

    n1 = result.data["n1"]
    n3 = result.data["n3"]
    n5 = result.data["n5"]

    # n=1: hundreds of damped links from a single pulse; the phase walk
    # includes suppression and releasing.
    assert n1["result"].summary.peak_damped_links > 50
    phases1 = [interval.phase for interval in n1["phases"]]
    assert DampingPhase.SUPPRESSION in phases1
    assert DampingPhase.RELEASING in phases1

    # n=3: muffling makes most reuses silent, but noisy expiries after the
    # ISP's timer still trigger update waves.
    assert n3["result"].summary.silent_reuses > n3["result"].summary.noisy_reuses

    # n=5: essentially all reuse timers are muffled (silent); convergence
    # is a single final surge after RTh.
    assert n5["result"].summary.noisy_reuses <= 3
    assert n5["result"].summary.silent_reuses > 100

    # Update-series bookkeeping: bins sum to the message count.
    for key in ("n1", "n3", "n5"):
        episode = result.data[key]
        assert (
            sum(count for _, count in episode["update_series"])
            == episode["result"].message_count
        )

"""X4 — comparator: selective damping (Mao et al.) vs plain vs RCN."""

from bench_utils import run_once

from repro.experiments.ablations import selective_damping_experiment


def test_ablation_selective_damping(benchmark, record_experiment):
    result = run_once(benchmark, selective_damping_experiment)
    record_experiment(result)
    row1 = next(row for row in result.rows if row[0] == 1)
    plain_sec, selective_sec, rcn_sec = row1[4], row1[5], row1[6]
    # The paper's observation: selective damping "does not address the
    # problem of secondary charging" — RCN does.
    assert rcn_sec == 0
    assert selective_sec > 0
    # RCN converges fastest after a single pulse.
    rcn_conv, plain_conv = row1[3], row1[1]
    assert rcn_conv < plain_conv

"""X10 — ablation: ISP placement (hub vs stub attachment point)."""

from bench_utils import run_once

from repro.experiments.ablations import isp_placement_experiment


def test_ablation_isp_placement(benchmark, record_experiment):
    result = run_once(benchmark, isp_placement_experiment)
    record_experiment(result)
    hub = result.data["hub"]
    stub = result.data["stub"]
    # Both attachments converge at every pulse count with flaps.
    for series in (hub, stub):
        for point in series.points:
            if point.pulses > 0:
                assert point.convergence_time > 0
                assert point.message_count > 0
    # The hub ISP has far higher degree than the stub by construction.
    hub_degree = next(row[1] for row in result.rows if row[0] == "hub")
    stub_degree = next(row[1] for row in result.rows if row[0] == "stub")
    assert hub_degree >= 3 * stub_degree

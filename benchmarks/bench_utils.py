"""Helpers shared by benchmark modules (kept out of conftest so imports
stay unambiguous when tests/ and benchmarks/ run in one pytest session)."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under benchmark timing — these benchmarks
    are whole-simulation reproductions, not micro-benchmarks."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""F13 — Figure 13: convergence time with RCN-enhanced damping.

Shape target (paper): the RCN series closely matches the calculated
(intended) curve at every pulse count — no extra delay for small n.
"""

import pytest
from bench_utils import run_once

from repro.experiments.fig13_14 import fig13_experiment


def test_fig13_rcn_convergence(benchmark, record_experiment):
    result = run_once(benchmark, fig13_experiment)
    record_experiment(result)
    rcn = result.data["sweeps"]["damping_rcn"]
    plain = result.data["sweeps"]["full_damping_mesh"]
    calc = result.data["calculation"]

    # Where suppression is intended (n >= 3) RCN tracks the calculation.
    for n in range(3, 11):
        assert rcn.point(n).convergence_time == pytest.approx(calc[n], rel=0.15)

    # Where it is not (n = 1, 2), RCN converges like plain BGP.
    for n in (1, 2):
        assert rcn.point(n).convergence_time < 300.0
        assert rcn.point(n).suppressions == 0

    # And RCN beats plain damping dramatically below the critical point.
    assert plain.point(1).convergence_time > 5 * rcn.point(1).convergence_time

"""X2 — ablation: partial damping deployment."""

from bench_utils import run_once

from repro.experiments.ablations import partial_deployment_experiment


def test_ablation_partial_deployment(benchmark, record_experiment):
    result = run_once(benchmark, partial_deployment_experiment)
    record_experiment(result)
    suppressions_at_1 = {row[0]: row[4] for row in result.rows if row[1] == 1}
    # Fewer damping routers -> fewer (false) suppressions after one pulse.
    assert suppressions_at_1["25%"] < suppressions_at_1["100%"]

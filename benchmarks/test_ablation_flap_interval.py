"""X1 — ablation: flapping-interval sweep (companion tech report)."""

from bench_utils import run_once

from repro.experiments.ablations import flap_interval_experiment


def test_ablation_flap_interval(benchmark, record_experiment):
    result = run_once(benchmark, flap_interval_experiment)
    record_experiment(result)
    # At the same pulse count, the intended ISP-side delay shrinks as the
    # interval grows (more decay between flaps).
    intended_at_3 = {
        row[0]: row[5] for row in result.rows if row[1] == 3
    }
    assert intended_at_3[240.0] < intended_at_3[60.0]

"""X9 — ablation: inconsistent damping parameters across routers."""

from bench_utils import run_once

from repro.experiments.ablations import heterogeneous_params_experiment


def test_ablation_heterogeneous_params(benchmark, record_experiment):
    result = run_once(benchmark, heterogeneous_params_experiment)
    record_experiment(result)
    rows = {(row[0], row[1]): row for row in result.rows}
    # Parameter diversity still produces reuse-timer interactions.
    assert rows[("mixed", 1)][5] > 0
    # RCN removes the reuse-triggered charges in the mixed deployment for
    # a single flap (no suppression at all is intended at n=1).
    assert rows[("mixed+rcn", 1)][5] == 0
    # All variants converge.
    for row in result.rows:
        if row[1] > 0:
            assert row[2] > 0

"""Simulator performance micro-benchmarks.

Unlike the figure benchmarks (one full run each), these measure the hot
paths with repeated rounds so regressions in the substrate show up as
timing changes: event-loop throughput, schedule/cancel churn, penalty
arithmetic, decision process, a complete small episode, warm-state
snapshot capture/restore, and the sequential-vs-parallel fig8 sweep.

Every measurement is also exported as machine-readable JSON to
``benchmarks/results/perf.json`` so the perf trajectory can be tracked
across PRs and hosts (the file records the interpreter and CPU count —
parallel numbers only beat sequential ones on multi-core hosts).
"""

import json
import pathlib
import platform
import sys
import time

import pytest

from repro.bgp.attrs import Route
from repro.bgp.decision import select_best
from repro.core.params import CISCO_DEFAULTS, UpdateKind
from repro.core.penalty import PenaltyState
from repro.experiments.base import DEFAULT_SEED, mesh100_config, small_mesh_config
from repro.experiments.parallel import (
    available_cpus,
    execute_sweep,
    resolve_chunk_size,
    shutdown_worker_pools,
)
from repro.sim.engine import Engine
from repro.sim.timers import Timer
from repro.trace import MemorySink, NullSink, PhaseProfiler, Tracer
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, WarmStateSnapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PERF_JSON = RESULTS_DIR / "perf.json"
PROFILE_JSON = RESULTS_DIR / "profile.json"

#: Timings accumulated by the tests in this module, flushed to
#: ``perf.json`` once the module finishes.
_PERF = {}


def _record(name: str, seconds, **extra) -> None:
    entry = {"seconds": round(float(seconds), 6)}
    entry.update(extra)
    _PERF[name] = entry


def _record_benchmark(name: str, benchmark, **extra) -> None:
    """Pull the min-of-rounds out of pytest-benchmark's stats."""
    _record(name, benchmark.stats.stats.min, **extra)


@pytest.fixture(scope="module", autouse=True)
def _export_perf_json():
    yield
    if not _PERF:
        return
    import os

    # Merge with entries exported by other benchmark modules (e.g. the
    # lint-engine benchmarks) instead of clobbering them.
    merged = {}
    if PERF_JSON.exists():
        try:
            merged = json.loads(PERF_JSON.read_text(encoding="utf-8")).get(
                "benchmarks", {}
            )
        except ValueError:
            merged = {}
    merged.update(_PERF)
    payload = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            # The affinity-aware count parallel sweeps actually get —
            # what compare_perf's host guard and speedup gate key on.
            "available_cpus": available_cpus(),
            "platform": sys.platform,
        },
        "benchmarks": dict(sorted(merged.items())),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    PERF_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_perf_engine_event_throughput(benchmark):
    """Schedule and drain 10k events."""

    def run() -> int:
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 100), lambda: None)
        return engine.run()

    executed = benchmark(run)
    assert executed == 10_000
    _record_benchmark("engine_event_throughput_10k", benchmark)


def test_perf_schedule_cancel_churn(benchmark):
    """10k schedule-then-cancel cycles over 100 live events.

    This is the MRAI/reuse-timer pattern: most scheduled work is
    cancelled before it fires. Lazy cancellation plus threshold
    compaction must keep the heap bounded, so churn cost stays flat
    instead of growing with the number of dead entries.
    """

    def run() -> int:
        engine = Engine()
        for i in range(100):
            engine.schedule(1_000.0 + i, lambda: None)
        for i in range(10_000):
            engine.schedule(float(i % 97), lambda: None).cancel()
        assert engine.pending_count == 100
        return engine.run()

    executed = benchmark(run)
    assert executed == 100
    _record_benchmark("engine_schedule_cancel_churn_10k", benchmark)


def _timer_churn(audited: bool) -> int:
    """Arm/cancel-heavy Timer workload: 200 handles, 10k reschedule or
    cancel operations, then a drain that fires the survivors. Every
    reschedule of an armed handle is a cancel+arm pair, so this hammers
    exactly the transitions the timer audit hooks."""
    engine = Engine()
    audit = engine.enable_timer_audit() if audited else None
    timers = [
        Timer(engine, lambda: None, name=f"t{i}", actor=f"r{i % 10}", tag="bench")
        for i in range(200)
    ]
    for i in range(10_000):
        timer = timers[i % 200]
        if i % 3 == 2:
            timer.cancel()
        else:
            timer.reschedule(1.0 + float(i % 7))
    executed = engine.run()
    if audit is not None:
        assert audit.verify() == []
    return executed


def test_perf_timer_churn_audit_cost():
    """Timer churn with the audit off and on, worst case.

    The disabled path (the default: one attribute read and a None test
    per transition) is recorded as ``timer_churn_10k`` and gated across
    PRs by the perf-baseline comparison, like every hot-path number —
    that is where a hook that stops being free would show up. The
    enabled path pays real bookkeeping per transition, and this
    workload is nothing *but* transitions, so its cost is recorded with
    a generous guard rather than the 5% gate (which lives at episode
    level below, where the audit's cost has to vanish).
    """
    rounds = 5
    plain_s = None
    audited_s = None
    for _ in range(rounds):
        plain = _timed(lambda: _timer_churn(audited=False))
        audited = _timed(lambda: _timer_churn(audited=True))
        plain_s = plain if plain_s is None else min(plain_s, plain)
        audited_s = audited if audited_s is None else min(audited_s, audited)

    _record("timer_churn_10k", plain_s)
    _record(
        "timer_churn_10k_audited",
        audited_s,
        overhead_pct=round((audited_s / plain_s - 1.0) * 100, 2),
    )
    # Even on pure churn the audit is a dict probe and a counter per
    # transition; 2x is far above its real cost but below any bug that
    # would make auditing a long sweep unusable.
    assert audited_s < plain_s * 2.0 + 0.001


def test_perf_timer_audit_episode_overhead():
    """An audited episode must time like a plain one — the tracer gate.

    On a real workload timer transitions are a sliver of the event
    count, so enabling the audit (let alone leaving it disabled) must
    disappear into noise. Rounds alternate between the two modes so
    host-load drift hits both equally; min-of-rounds plus the 5%
    relative + 1ms absolute guard matches the trace no-op gate.
    """

    def audited_episode():
        scenario = Scenario(small_mesh_config(seed=11))
        audit = scenario.engine.enable_timer_audit()
        scenario.warm_up()
        result = scenario.run(PulseSchedule.regular(2, 60.0))
        assert audit.verify() == []
        return result

    _small_episode()  # warm the topology cache outside the timed rounds
    rounds = 9
    plain_s = None
    audited_s = None
    for _ in range(rounds):
        plain = _timed(_small_episode)
        audited = _timed(audited_episode)
        plain_s = plain if plain_s is None else min(plain_s, plain)
        audited_s = audited if audited_s is None else min(audited_s, audited)

    _record("timer_audit_episode_plain", plain_s)
    _record(
        "timer_audit_episode_audited",
        audited_s,
        overhead_pct=round((audited_s / plain_s - 1.0) * 100, 2),
    )
    assert audited_s < plain_s * 1.05 + 0.001


def test_perf_penalty_charging(benchmark):
    """10k charge/decay cycles on one penalty state."""

    def run() -> float:
        state = PenaltyState(CISCO_DEFAULTS)
        value = 0.0
        for i in range(10_000):
            value = state.charge(float(i), UpdateKind.ATTRIBUTE_CHANGE)
        return value

    value = benchmark(run)
    assert 0.0 < value <= CISCO_DEFAULTS.penalty_ceiling
    _record_benchmark("penalty_charging_10k", benchmark)


def test_perf_decision_process(benchmark):
    """Best-path selection over 16 candidates, 10k times."""
    candidates = [
        (
            f"peer{i:02d}",
            Route(
                prefix="p0",
                as_path=(f"peer{i:02d}",) + tuple(f"x{j}" for j in range(i % 5)) + ("o",),
                learned_from=f"peer{i:02d}",
            ),
        )
        for i in range(16)
    ]

    def pref(peer: str, route: Route) -> int:
        del peer, route
        return 100

    def run():
        best = None
        for _ in range(10_000):
            best = select_best(candidates, pref)
        return best

    best = benchmark(run)
    assert best is not None
    assert best[0] == "peer00"
    _record_benchmark("decision_process_16x10k", benchmark)


def test_perf_full_small_episode(benchmark):
    """Complete build/warm-up/episode on a 5x5 damping mesh."""

    def run():
        scenario = Scenario(small_mesh_config(seed=11))
        scenario.warm_up()
        return scenario.run(PulseSchedule.regular(1, 60.0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.message_count > 0
    _record_benchmark("full_small_episode", benchmark)


def test_perf_snapshot_capture_and_restore():
    """Warm-state snapshot economics on the paper's mesh100 topology.

    ``capture`` pays one warm-up plus a pickle; every ``restore`` then
    replaces a full warm-up with an unpickle. The restore/warm-up ratio
    is the per-point saving the sweep optimisation banks on.
    """
    config = mesh100_config(seed=DEFAULT_SEED)

    start = time.perf_counter()
    snapshot = WarmStateSnapshot.capture(config)
    capture_s = time.perf_counter() - start

    restore_s = min(_timed(snapshot.restore) for _ in range(3))

    def fresh_warmup():
        scenario = Scenario(config)
        scenario.warm_up()
        return scenario

    warmup_s = min(_timed(fresh_warmup) for _ in range(2))

    _record("snapshot_capture_mesh100", capture_s, blob_bytes=snapshot.size_bytes)
    _record("snapshot_restore_mesh100", restore_s)
    _record(
        "fresh_warmup_mesh100",
        warmup_s,
        restore_speedup=round(warmup_s / restore_s, 2),
    )
    # Restoring must not cost meaningfully more than the warm-up it
    # replaces (generous factor: single-digit-millisecond timings on a
    # shared host are noisy).
    assert restore_s < warmup_s * 1.5
    # Blob-size ratchet: compact RNG-stream pickling brought the mesh100
    # blob from ~1.39 MB down to ~260 KB. The bound leaves headroom for
    # legitimate state growth but catches a regression back to pickling
    # full Mersenne Twister states (which alone would blow past it).
    assert snapshot.size_bytes < 600_000, (
        f"warm-state blob grew to {snapshot.size_bytes} bytes — "
        "snapshot transport and per-point restore costs scale with this"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


#: Points of the fig8 acceptance-criterion sweep (the paper's x-axis).
_FIG8_PULSES = tuple(range(0, 11))


def _fig8_sweep(jobs: int, use_snapshots: bool, rounds: int = 1):
    """The acceptance-criterion workload: full-damping mesh, n = 0..10.

    Returns (best-of-``rounds`` wall-clock seconds, outcomes).
    """
    config = mesh100_config(seed=DEFAULT_SEED)
    best = None
    outcomes = None
    for _ in range(rounds):
        start = time.perf_counter()
        outcomes = execute_sweep(
            config, _FIG8_PULSES, jobs=jobs, use_snapshots=use_snapshots
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, outcomes


def test_perf_fig8_sweep_sequential_vs_parallel():
    """Wall-clock for the fig8 full-damping mesh sweep in three modes:
    the seed's fresh-scenario-per-point loop, sequential with warm-state
    snapshots, and a warm spawn pool with content-addressed snapshot
    transport. All three must agree digest-for-digest.

    The parallel round is timed with the pool already warm (persistent
    pools are the executor's steady state — every sweep after a
    process's first reuses workers), and both sides take min-of-rounds
    so host-load noise hits them equally. On a host with >= 2 available
    CPUs the parallel sweep must be at least as fast as sequential —
    the acceptance criterion this PR exists for. On a single-core host
    the requirement is physically unsatisfiable (spawn workers time-slice
    one core and pay IPC on top), so the gate skips with that reason;
    the recorded ``cpu_count`` lets compare_perf refuse cross-host
    comparisons of the number.
    """
    par_jobs = 2 if available_cpus() < 4 else 4
    chunk = resolve_chunk_size(None, len(_FIG8_PULSES), par_jobs)

    fresh_s, fresh = _fig8_sweep(jobs=1, use_snapshots=False, rounds=2)
    snap_s, snap = _fig8_sweep(jobs=1, use_snapshots=True, rounds=2)
    _fig8_sweep(jobs=par_jobs, use_snapshots=True)  # spawn + warm the pool
    par_s, par = _fig8_sweep(jobs=par_jobs, use_snapshots=True, rounds=2)

    assert [o.digest for o in fresh] == [o.digest for o in snap] == [o.digest for o in par]

    _record("fig8_sweep_fresh_per_point", fresh_s, points=len(_FIG8_PULSES))
    _record(
        "fig8_sweep_snapshots_sequential",
        snap_s,
        points=len(_FIG8_PULSES),
        speedup_vs_fresh=round(fresh_s / snap_s, 2),
    )
    _record(
        "fig8_sweep_snapshots_parallel",
        par_s,
        points=len(_FIG8_PULSES),
        jobs=par_jobs,
        cpu_count=available_cpus(),
        start_method="spawn",
        chunk_size=chunk,
        speedup_vs_fresh=round(fresh_s / par_s, 2),
        speedup_vs_sequential=round(snap_s / par_s, 2),
    )
    assert snap_s < fresh_s * 1.35
    if available_cpus() < 2:
        pytest.skip(
            f"parallel speedup gate needs >= 2 available CPUs, host has "
            f"{available_cpus()}: jobs={par_jobs} spawn workers time-slice "
            f"one core, so parallel >= sequential cannot hold (numbers "
            f"recorded, not gated)"
        )
    assert par_s <= snap_s, (
        f"jobs={par_jobs} sweep took {par_s:.2f}s vs {snap_s:.2f}s "
        f"sequential on {available_cpus()} CPUs — the parallel executor "
        f"is losing to its own sequential path"
    )


def test_perf_warm_pool_amortises_spawn():
    """A second sweep on an already-warm pool must not pay spawn again.

    The persistent pool manager is what turns ``jobs=N`` from a
    per-sweep interpreter-start tax into a one-off: the first parallel
    sweep spawns workers, every later one reuses them. This records the
    cold/warm split so the pool manager's value is visible in the perf
    trajectory (and its loss would show as warm_s climbing to cold_s).
    """
    shutdown_worker_pools()
    config = mesh100_config(seed=DEFAULT_SEED)
    pulses = (0, 1, 2, 3)

    cold_s = _timed(lambda: execute_sweep(config, pulses, jobs=2))
    warm_s = min(
        _timed(lambda: execute_sweep(config, pulses, jobs=2)) for _ in range(2)
    )

    _record(
        "parallel_pool_cold_vs_warm",
        warm_s,
        cold_seconds=round(cold_s, 6),
        cpu_count=available_cpus(),
        jobs=2,
        start_method="spawn",
    )
    # The warm sweep skips worker spawn + import entirely; it must never
    # be slower than the cold one beyond timing noise.
    assert warm_s <= cold_s * 1.10 + 0.05


def _small_episode(tracer=None, profiler=None):
    scenario = Scenario(small_mesh_config(seed=11))
    if profiler is not None:
        # Sample per-event sub-phases (decision_process, penalty_decay,
        # mrai_flush, ...) into the exported profile — the breakdown the
        # perflint hot-set resolver reads.
        profiler.attach_probe(scenario.engine)
    scenario.warm_up()
    return scenario.run(PulseSchedule.regular(2, 60.0), tracer=tracer)


def test_perf_trace_noop_overhead():
    """A disabled tracer must be free on the hot path.

    Attaching ``Tracer(NullSink())`` is a complete no-op: the engine
    keeps its uninstrumented fast path and no per-router hook fires, so
    the traced and untraced episode must time identically to within
    noise. Rounds alternate between the two modes so host-load drift
    hits both equally; the 5% guard is the acceptance criterion, with
    min-of-rounds keeping it robust on shared runners.
    """
    _small_episode()  # warm the topology cache outside the timed rounds
    rounds = 9
    untraced_s = None
    noop_s = None
    for _ in range(rounds):
        plain = _timed(_small_episode)
        noop = _timed(lambda: _small_episode(tracer=Tracer(NullSink())))
        untraced_s = plain if untraced_s is None else min(untraced_s, plain)
        noop_s = noop if noop_s is None else min(noop_s, noop)

    _record("trace_episode_untraced", untraced_s)
    _record(
        "trace_episode_noop_sink",
        noop_s,
        overhead_pct=round((noop_s / untraced_s - 1.0) * 100, 2),
    )
    # 5% relative plus 1ms absolute: the episodes run identical code, so
    # anything beyond scheduler noise on a sub-40ms workload means the
    # fast path picked up real instrumentation cost.
    assert noop_s < untraced_s * 1.05 + 0.001


def test_perf_trace_full_collection():
    """Cost of full causal tracing on a small episode, with the phase
    profile exported alongside ``perf.json``.

    Tracing is an observability feature, not a hot-path default, so the
    cost is recorded rather than gated — but it should stay within a
    small multiple of the untraced episode (generous guard below).
    """
    untraced_s = min(_timed(_small_episode) for _ in range(3))

    profiler = PhaseProfiler()
    best = None
    records = 0
    for _ in range(3):
        tracer = Tracer(MemorySink())
        start = time.perf_counter()
        with profiler.phase("episode"):
            _small_episode(tracer=tracer, profiler=profiler)
        elapsed = time.perf_counter() - start
        records = len(tracer.records)
        profiler.bind(tracer=tracer)
        best = elapsed if best is None else min(best, elapsed)
        tracer.close()

    _record(
        "trace_episode_memory_sink",
        best,
        records=records,
        overhead_vs_untraced=round(best / untraced_s, 2),
    )
    assert records > 0
    # Full tracing allocates one record per protocol action; 3x the
    # untraced episode is far above its real cost but below any bug
    # that would make tracing unusable.
    assert best < untraced_s * 3.0

    profiler.export(str(PROFILE_JSON))
    payload = json.loads(PROFILE_JSON.read_text(encoding="utf-8"))
    assert payload["schema"] == 2
    names = [entry["phase"] for entry in payload["phases"]]
    assert "episode" in names
    # The engine probe must have contributed labelled sub-phases.
    assert "decision_process" in names

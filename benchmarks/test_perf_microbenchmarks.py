"""Simulator performance micro-benchmarks.

Unlike the figure benchmarks (one full run each), these measure the hot
paths with repeated rounds so regressions in the substrate show up as
timing changes: event-loop throughput, penalty arithmetic, decision
process, and a complete small episode.
"""

from repro.bgp.attrs import Route
from repro.bgp.decision import select_best
from repro.core.params import CISCO_DEFAULTS, UpdateKind
from repro.core.penalty import PenaltyState
from repro.experiments.base import small_mesh_config
from repro.sim.engine import Engine
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario


def test_perf_engine_event_throughput(benchmark):
    """Schedule and drain 10k events."""

    def run() -> int:
        engine = Engine()
        for i in range(10_000):
            engine.schedule(float(i % 100), lambda: None)
        return engine.run()

    executed = benchmark(run)
    assert executed == 10_000


def test_perf_penalty_charging(benchmark):
    """10k charge/decay cycles on one penalty state."""

    def run() -> float:
        state = PenaltyState(CISCO_DEFAULTS)
        value = 0.0
        for i in range(10_000):
            value = state.charge(float(i), UpdateKind.ATTRIBUTE_CHANGE)
        return value

    value = benchmark(run)
    assert 0.0 < value <= CISCO_DEFAULTS.penalty_ceiling


def test_perf_decision_process(benchmark):
    """Best-path selection over 16 candidates, 10k times."""
    candidates = [
        (
            f"peer{i:02d}",
            Route(
                prefix="p0",
                as_path=(f"peer{i:02d}",) + tuple(f"x{j}" for j in range(i % 5)) + ("o",),
                learned_from=f"peer{i:02d}",
            ),
        )
        for i in range(16)
    ]

    def pref(peer: str, route: Route) -> int:
        del peer, route
        return 100

    def run():
        best = None
        for _ in range(10_000):
            best = select_best(candidates, pref)
        return best

    best = benchmark(run)
    assert best is not None
    assert best[0] == "peer00"


def test_perf_full_small_episode(benchmark):
    """Complete build/warm-up/episode on a 5x5 damping mesh."""

    def run():
        scenario = Scenario(small_mesh_config(seed=11))
        scenario.warm_up()
        return scenario.run(PulseSchedule.regular(1, 60.0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.message_count > 0

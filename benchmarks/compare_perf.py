#!/usr/bin/env python3
"""Compare a fresh ``perf.json`` against the committed baseline.

CI runs the perf microbenchmarks (which write
``benchmarks/results/perf.json``) and then this script, which fails the
job when any benchmark's ``seconds`` regressed beyond the threshold
(default: 1.25x the committed ``perf_baseline.json`` value). A markdown
delta table is printed to stdout and, with ``--summary``, appended to a
file (CI passes ``$GITHUB_STEP_SUMMARY`` so the table lands in the job
summary page).

Parallel benchmarks are only meaningful relative to the core count they
ran on — a ``jobs=2`` sweep recorded on a single-core box is pure spawn
overhead, not a measurement. Entries therefore carry the ``cpu_count``
they were recorded on, and entries whose core counts differ between
baseline and current are reported as ``incomparable`` instead of being
allowed to fake a regression (or an improvement).

``--min-speedup NAME=RATIO`` additionally gates a recorded speedup
field: the current entry's ``speedup_vs_sequential`` must be at least
RATIO. The gate is skipped (with an explicit notice) when the current
run's host has fewer than 2 available CPUs, where the requirement is
physically unsatisfiable.

Benchmarks present on only one side are reported as ``new``/``removed``
but never fail the gate; refresh the baseline by copying the current
``perf.json`` over ``perf_baseline.json`` in the PR that legitimately
changes the numbers (or apply the documented override label to skip the
gate entirely — see ``docs/OBSERVABILITY.md``).

Stdlib-only on purpose: the gate must not depend on anything the test
extra does not already install.
"""

import argparse
import json
import sys


def load_payload(path):
    """The full perf JSON document (host + benchmarks)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload.get("benchmarks"), dict):
        raise ValueError(f"{path}: no 'benchmarks' mapping (schema changed?)")
    return payload


def load_benchmarks(path):
    """The ``benchmarks`` mapping of a perf JSON document."""
    return load_payload(path)["benchmarks"]


def _entry_cpu_count(entry, host):
    """The core count an entry was recorded on: the entry's own
    ``cpu_count`` where present (parallel benchmarks), else the
    document-level host record."""
    cpu_count = entry.get("cpu_count")
    if cpu_count is None and isinstance(host, dict):
        cpu_count = host.get("available_cpus", host.get("cpu_count"))
    return cpu_count


def compare(baseline, current, threshold, baseline_host=None, current_host=None):
    """Per-benchmark rows plus the list of regressed names.

    Each row is ``(name, baseline_s, current_s, ratio, status)`` where
    the numeric fields are ``None`` for one-sided entries. Entries that
    declare a ``cpu_count`` are compared only against entries recorded
    on the same core count.
    """
    rows = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        base_entry = baseline.get(name, {})
        cur_entry = current.get(name, {})
        base_s = base_entry.get("seconds")
        cur_s = cur_entry.get("seconds")
        if base_s is None:
            rows.append((name, None, cur_s, None, "new"))
            continue
        if cur_s is None:
            rows.append((name, base_s, None, None, "removed"))
            continue
        # Only entries that explicitly tie themselves to a core count
        # (the parallel sweeps) are host-guarded; scalar microbenchmarks
        # compare fine across machines.
        if "cpu_count" in base_entry or "cpu_count" in cur_entry:
            base_cpus = _entry_cpu_count(base_entry, baseline_host)
            cur_cpus = _entry_cpu_count(cur_entry, current_host)
            if base_cpus != cur_cpus:
                rows.append(
                    (
                        name,
                        base_s,
                        cur_s,
                        None,
                        f"incomparable (cpu_count {base_cpus} vs {cur_cpus})",
                    )
                )
                continue
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        if ratio > threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append((name, base_s, cur_s, ratio, status))
    return rows, regressions


def check_speedups(current, current_host, requirements):
    """Failures for ``--min-speedup NAME=RATIO`` requirements.

    Returns ``(failures, notices)``: failures fail the gate; notices
    explain skipped or informational outcomes (single-core host,
    missing entry).
    """
    failures = []
    notices = []
    host_cpus = None
    if isinstance(current_host, dict):
        host_cpus = current_host.get("available_cpus", current_host.get("cpu_count"))
    for name, minimum in requirements:
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: no such benchmark in the current perf JSON")
            continue
        cpus = entry.get("cpu_count", host_cpus)
        if cpus is not None and cpus < 2:
            notices.append(
                f"{name}: speedup gate skipped — recorded on a "
                f"{cpus}-CPU host, where parallel >= sequential is "
                f"physically unsatisfiable"
            )
            continue
        speedup = entry.get("speedup_vs_sequential")
        if speedup is None:
            failures.append(f"{name}: entry records no speedup_vs_sequential")
            continue
        if speedup < minimum:
            failures.append(
                f"{name}: speedup_vs_sequential {speedup:.2f} is below the "
                f"required {minimum:.2f} (parallel sweep is not beating "
                f"sequential on a {cpus}-CPU host)"
            )
        else:
            notices.append(
                f"{name}: speedup_vs_sequential {speedup:.2f} "
                f">= {minimum:.2f} on {cpus} CPUs"
            )
    return failures, notices


def _parse_speedup_requirement(spec):
    name, _, minimum = spec.partition("=")
    if not name or not minimum:
        raise ValueError(f"--min-speedup expects NAME=RATIO, got {spec!r}")
    return name, float(minimum)


def render_markdown(rows, threshold):
    """The delta table as GitHub-flavoured markdown."""

    def fmt(value, spec):
        return format(value, spec) if value is not None else "—"

    lines = [
        f"### Perf gate (threshold: {threshold:.2f}x baseline)",
        "",
        "| benchmark | baseline (s) | current (s) | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, base_s, cur_s, ratio, status in rows:
        lines.append(
            f"| {name} | {fmt(base_s, '.6f')} | {fmt(cur_s, '.6f')} "
            f"| {fmt(ratio, '.2f')} | {status} |"
        )
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/perf_baseline.json",
        help="committed baseline perf JSON",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results/perf.json",
        help="freshly measured perf JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when current/baseline exceeds this ratio (default 1.25)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help=(
            "require the current entry NAME's speedup_vs_sequential to be "
            "at least RATIO (skipped on hosts with < 2 CPUs); repeatable"
        ),
    )
    parser.add_argument(
        "--summary",
        default=None,
        help="append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    try:
        baseline_payload = load_payload(args.baseline)
        current_payload = load_payload(args.current)
        requirements = [_parse_speedup_requirement(s) for s in args.min_speedup]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare_perf: {exc}", file=sys.stderr)
        return 2

    baseline = baseline_payload["benchmarks"]
    current = current_payload["benchmarks"]
    rows, regressions = compare(
        baseline,
        current,
        args.threshold,
        baseline_host=baseline_payload.get("host"),
        current_host=current_payload.get("host"),
    )
    table = render_markdown(rows, args.threshold)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(table)

    speedup_failures, notices = check_speedups(
        current, current_payload.get("host"), requirements
    )
    for notice in notices:
        print(f"compare_perf: {notice}")

    failed = False
    if regressions:
        print(
            f"compare_perf: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.2f}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        failed = True
    for failure in speedup_failures:
        print(f"compare_perf: {failure}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"compare_perf: {len(rows)} benchmark(s) within {args.threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a fresh ``perf.json`` against the committed baseline.

CI runs the perf microbenchmarks (which write
``benchmarks/results/perf.json``) and then this script, which fails the
job when any benchmark's ``seconds`` regressed beyond the threshold
(default: 1.25x the committed ``perf_baseline.json`` value). A markdown
delta table is printed to stdout and, with ``--summary``, appended to a
file (CI passes ``$GITHUB_STEP_SUMMARY`` so the table lands in the job
summary page).

Benchmarks present on only one side are reported as ``new``/``removed``
but never fail the gate; refresh the baseline by copying the current
``perf.json`` over ``perf_baseline.json`` in the PR that legitimately
changes the numbers (or apply the documented override label to skip the
gate entirely — see ``docs/OBSERVABILITY.md``).

Stdlib-only on purpose: the gate must not depend on anything the test
extra does not already install.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """The ``benchmarks`` mapping of a perf JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path}: no 'benchmarks' mapping (schema changed?)")
    return benchmarks


def compare(baseline, current, threshold):
    """Per-benchmark rows plus the list of regressed names.

    Each row is ``(name, baseline_s, current_s, ratio, status)`` where
    the numeric fields are ``None`` for one-sided entries.
    """
    rows = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        base_s = baseline.get(name, {}).get("seconds")
        cur_s = current.get(name, {}).get("seconds")
        if base_s is None:
            rows.append((name, None, cur_s, None, "new"))
            continue
        if cur_s is None:
            rows.append((name, base_s, None, None, "removed"))
            continue
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        if ratio > threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append((name, base_s, cur_s, ratio, status))
    return rows, regressions


def render_markdown(rows, threshold):
    """The delta table as GitHub-flavoured markdown."""

    def fmt(value, spec):
        return format(value, spec) if value is not None else "—"

    lines = [
        f"### Perf gate (threshold: {threshold:.2f}x baseline)",
        "",
        "| benchmark | baseline (s) | current (s) | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, base_s, cur_s, ratio, status in rows:
        lines.append(
            f"| {name} | {fmt(base_s, '.6f')} | {fmt(cur_s, '.6f')} "
            f"| {fmt(ratio, '.2f')} | {status} |"
        )
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/perf_baseline.json",
        help="committed baseline perf JSON",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results/perf.json",
        help="freshly measured perf JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when current/baseline exceeds this ratio (default 1.25)",
    )
    parser.add_argument(
        "--summary",
        default=None,
        help="append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare_perf: {exc}", file=sys.stderr)
        return 2

    rows, regressions = compare(baseline, current, args.threshold)
    table = render_markdown(rows, args.threshold)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(table)

    if regressions:
        print(
            f"compare_perf: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.2f}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"compare_perf: {len(rows)} benchmark(s) within {args.threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""RCN-enhanced damping vs plain damping vs no damping (Figures 8/13).

Sweeps the number of pulses on the 100-node mesh under three protocol
configurations and prints convergence time and message count side by
side with the Section 3 calculation. The table reproduces the paper's
headline result: plain damping overshoots the intended convergence time
by an order of magnitude for small pulse counts, while RCN-enhanced
damping tracks the calculation at every pulse count.

Run:  python examples/rcn_comparison.py  (takes ~20 seconds)
"""

from repro import CISCO_DEFAULTS, IntendedBehaviorModel
from repro.experiments.base import mesh100_config, run_point
from repro.metrics.report import render_table


def main() -> None:
    pulse_counts = [1, 2, 3, 5, 8]
    rows = []
    for pulses in pulse_counts:
        none = run_point(mesh100_config(damping=None), pulses)
        plain = run_point(mesh100_config(), pulses)
        rcn = run_point(mesh100_config(rcn=True), pulses)
        model = IntendedBehaviorModel(
            CISCO_DEFAULTS, flap_interval=60.0, tup=none.warmup_convergence
        )
        intended = model.predict(pulses).convergence_time
        rows.append(
            [
                pulses,
                round(none.convergence_time, 1),
                round(plain.convergence_time, 1),
                round(rcn.convergence_time, 1),
                round(intended, 1),
                plain.message_count,
                rcn.message_count,
            ]
        )
    print(
        render_table(
            [
                "pulses",
                "no damping (s)",
                "plain damping (s)",
                "RCN damping (s)",
                "intended (s)",
                "plain msgs",
                "RCN msgs",
            ],
            rows,
            title="convergence time and message count, 100-node mesh",
        )
    )
    print()
    print("RCN tracks the intended column; plain damping overshoots it")
    print("badly until the muffling effect kicks in (n >= 5 here).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Causal attribution of reuse-timer interactions.

The paper infers secondary charging from penalty traces; this example
uses the library's attribution analysis to establish it *causally*: for
every reuse-timer postponement in a single-pulse episode, find the noisy
reuse expiry (or origin flap) whose update wave caused it, then rank the
reuse events by how many other timers they pushed back — the "after
shocks" of Section 8.

Run:  python examples/timer_attribution.py
"""

from repro.analysis.attribution import analyze_run, suppression_extension_seconds
from repro.experiments.base import mesh100_config, run_point
from repro.metrics.report import render_table


def main() -> None:
    result = run_point(mesh100_config(seed=42), pulses=1)
    report = analyze_run(result)

    print("=== single pulse, 100-node mesh, damping everywhere ===")
    print(f"convergence time:        {result.convergence_time:9.1f} s")
    print(f"reuse-timer recharges:   {report.total:9d}")
    print(f"  caused by reuse waves: {report.reuse_caused:9d}")
    print(f"  caused by flaps:       {report.flap_caused:9d}")
    print(f"  ambiguous (mixed):     {report.mixed:9d}")
    print(f"  unattributed:          {report.unattributed:9d}")
    print(f"secondary-charging share: {100 * report.secondary_fraction:7.1f} %")

    extension = 0.0
    for records in result.collector.suppression_records().values():
        extension += suppression_extension_seconds(records, result.config.damping)
    print(f"suppression time added by recharges (network-wide): {extension:,.0f} s")

    print()
    fanout = report.fanout_by_reuse_event()[:10]
    rows = [[f"{time:.1f}", count] for time, count in fanout]
    print(
        render_table(
            ["noisy reuse at (s)", "timers it postponed"],
            rows,
            title="top 'after shock' reuse events",
        )
    )
    print()
    print("Each row is one router reusing a suppressed route; the update")
    print("wave it launches postpones the listed number of other reuse")
    print("timers — the interaction the paper discovered.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Tuning damping parameters: Cisco vs Juniper vs a custom profile.

Section 3 of the paper points out that the ISP "can largely control the
trade-off by setting appropriate penalty increments, cut-off threshold,
and reuse threshold". This example uses the closed-form intended model
to show the trade-off, then validates one configuration in simulation.

Run:  python examples/vendor_tuning.py
"""

from repro import (
    CISCO_DEFAULTS,
    JUNIPER_DEFAULTS,
    DampingParams,
    IntendedBehaviorModel,
    ScenarioConfig,
    mesh_topology,
    run_episode,
)
from repro.metrics.report import render_table


def main() -> None:
    # A deliberately tolerant profile: more flaps allowed before
    # suppression, shorter maximum hold-down.
    tolerant = DampingParams(
        withdrawal_penalty=1000.0,
        reannouncement_penalty=0.0,
        attribute_change_penalty=250.0,
        cutoff_threshold=4000.0,
        reuse_threshold=1000.0,
        half_life=10 * 60.0,
        max_hold_down=30 * 60.0,
    )
    profiles = [
        ("cisco", CISCO_DEFAULTS),
        ("juniper", JUNIPER_DEFAULTS),
        ("tolerant", tolerant),
    ]

    rows = []
    for name, params in profiles:
        model = IntendedBehaviorModel(params, flap_interval=60.0, tup=30.0)
        critical = model.critical_pulse_count()
        rows.append(
            [
                name,
                critical if critical is not None else "never",
                round(model.predict(5).convergence_time, 1),
                round(model.predict(10).convergence_time, 1),
                round(params.penalty_ceiling, 0),
            ]
        )
    print(
        render_table(
            [
                "profile",
                "suppression onset (pulses)",
                "intended conv @5 (s)",
                "intended conv @10 (s)",
                "penalty ceiling",
            ],
            rows,
            title="intended-behaviour comparison (closed form)",
        )
    )

    print()
    print("validating the tolerant profile in simulation (5x5 mesh)...")
    config = ScenarioConfig(topology=mesh_topology(5, 5), damping=tolerant, seed=42)
    result = run_episode(config, pulses=5)
    print(
        f"  measured convergence: {result.convergence_time:.1f} s, "
        f"messages: {result.message_count}, "
        f"suppressions: {result.summary.total_suppressions}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Impact of no-valley routing policy on damping dynamics (Figure 15).

Builds an Internet-derived topology with customer-provider / peer-peer
relationships and compares the no-valley (Gao-Rexford) export policy
against unrestricted shortest-path routing. Policy prunes alternate
paths, which cuts the path exploration that seeds false suppression —
convergence moves toward (but not onto) the intended behaviour.

Run:  python examples/policy_impact.py
"""

from repro import CISCO_DEFAULTS, IntendedBehaviorModel, ScenarioConfig, internet_topology
from repro.experiments.base import run_point
from repro.metrics.report import render_table


def main() -> None:
    topology = internet_topology(120, seed=7, with_relationships=True)
    rows = []
    for pulses in (1, 3, 5):
        with_policy = run_point(
            ScenarioConfig(
                topology=topology, damping=CISCO_DEFAULTS, use_no_valley=True, seed=42
            ),
            pulses,
        )
        no_policy = run_point(
            ScenarioConfig(topology=topology, damping=CISCO_DEFAULTS, seed=42),
            pulses,
        )
        model = IntendedBehaviorModel(
            CISCO_DEFAULTS, flap_interval=60.0, tup=with_policy.warmup_convergence
        )
        rows.append(
            [
                pulses,
                round(with_policy.convergence_time, 1),
                round(no_policy.convergence_time, 1),
                round(model.predict(pulses).convergence_time, 1),
                with_policy.summary.total_suppressions,
                no_policy.summary.total_suppressions,
            ]
        )
    print(
        render_table(
            [
                "pulses",
                "no-valley (s)",
                "no policy (s)",
                "intended (s)",
                "suppr. (policy)",
                "suppr. (no policy)",
            ],
            rows,
            title=f"policy impact on {topology.name} "
            f"({topology.relationships.peer_edge_count} peer links, "
            f"{topology.relationships.provider_edge_count} provider links)",
        )
    )
    print()
    print("No-valley export prunes alternate paths: fewer routers turn on")
    print("false suppression, less secondary charging, convergence closer")
    print("to intended — exactly the paper's Section 7 observation.")


if __name__ == "__main__":
    main()

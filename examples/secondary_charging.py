#!/usr/bin/env python
"""Secondary charging, observed at a single router (paper Figure 7).

Runs the paper's standard experiment — a single pulse through the
100-node mesh with damping everywhere — then zooms into the router whose
suppression was postponed the most. The printed penalty trace shows the
initial path-exploration charge crossing the cut-off threshold, followed
by later surges (reuse-triggered update waves) pushing the penalty back
up and moving the reuse timer again and again.

Run:  python examples/secondary_charging.py
"""

from repro.experiments.fig7 import fig7_experiment


def main() -> None:
    result = fig7_experiment()
    record = result.data["record"]
    print(result.render())
    print()
    print("reuse-timer postponements (secondary charging events):")
    for when in result.data["recharges"]:
        print(f"  penalty recharged at t={when:8.1f} s")
    planned = record.started
    print()
    print(
        f"suppression started at {planned:.1f} s and, after "
        f"{len(record.recharges)} postponements, ended at {record.ended:.1f} s."
    )
    print(
        "Without RCN, updates triggered by route *reuse* at other routers "
        "keep re-charging this penalty — the paper's 'after shock' effect."
    )


if __name__ == "__main__":
    main()

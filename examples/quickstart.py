#!/usr/bin/env python
"""Quickstart: simulate one route flap through a damping network.

Builds a 6x6 mesh of BGP routers with Cisco-default route flap damping,
attaches a flapping origin AS, sends a single pulse (withdrawal +
re-announcement), and prints what the paper's Section 5.3 describes: the
single pulse is amplified by path exploration into hundreds of updates,
falsely suppresses routes far from the origin, and converges only after
a long releasing period stretched by secondary charging.

Run:  python examples/quickstart.py
"""

from repro import (
    CISCO_DEFAULTS,
    IntendedBehaviorModel,
    ScenarioConfig,
    mesh_topology,
    run_episode,
)


def main() -> None:
    config = ScenarioConfig(
        topology=mesh_topology(6, 6),
        damping=CISCO_DEFAULTS,
        seed=42,
    )
    result = run_episode(config, pulses=1, flap_interval=60.0)

    summary = result.summary
    print("=== one pulse through a 36-router damping mesh ===")
    print(f"warm-up convergence (t_up):     {result.warmup_convergence:8.1f} s")
    print(f"measured convergence time:      {summary.convergence_time:8.1f} s")
    print(f"updates observed:               {summary.message_count:8d}")
    print(f"suppression episodes:           {summary.total_suppressions:8d}")
    print(f"peak damped links:              {summary.peak_damped_links:8d}")
    print(f"noisy / silent reuse timers:    {summary.noisy_reuses:5d} / {summary.silent_reuses}")
    print(f"reuse-timer postponements:      {summary.secondary_charges:8d}")

    model = IntendedBehaviorModel(
        CISCO_DEFAULTS, flap_interval=60.0, tup=result.warmup_convergence
    )
    intended = model.predict(1)
    print()
    print("the *intended* behaviour for a single flap:")
    print(f"  suppression triggered: {intended.suppressed}")
    print(f"  intended convergence:  {intended.convergence_time:.1f} s")
    ratio = summary.convergence_time / max(intended.convergence_time, 1e-9)
    print(f"=> the network took {ratio:.0f}x the intended time to settle,")
    print("   driven by false suppression and reuse-timer interactions.")


if __name__ == "__main__":
    main()

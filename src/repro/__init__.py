"""repro — reproduction of "Timer Interaction in Route Flap Damping"
(Zhang, Pei, Massey, Zhang; ICDCS 2005).

An event-driven BGP simulator with RFC 2439 route flap damping, the
paper's analytical "intended behaviour" model, RCN-enhanced damping, and
an experiment harness that regenerates every table and figure in the
paper's evaluation.

Quickstart::

    from repro import (
        CISCO_DEFAULTS, ScenarioConfig, mesh_topology, run_episode,
    )

    config = ScenarioConfig(topology=mesh_topology(5, 5), damping=CISCO_DEFAULTS)
    result = run_episode(config, pulses=1)
    print(result.convergence_time, result.message_count)
"""

from repro.bgp import (
    BgpRouter,
    MraiConfig,
    NoValleyPolicy,
    OriginRouter,
    Route,
    RouterConfig,
    RoutingPolicy,
    ShortestPathPolicy,
    UpdateMessage,
)
from repro.core import (
    CISCO_DEFAULTS,
    JUNIPER_DEFAULTS,
    DampingManager,
    DampingParams,
    DampingPhase,
    IntendedBehaviorModel,
    IntendedPrediction,
    PenaltyState,
    RootCause,
    RootCauseHistory,
    SelectiveDampingFilter,
    UpdateKind,
    classify_phases,
)
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    TimerError,
    TopologyError,
)
from repro.metrics import ConvergenceSummary, MetricsCollector, summarize_convergence
from repro.net import Link, LinkConfig, Message, Network, Node
from repro.sim import Engine, RngRegistry, Timer
from repro.topology import (
    RelationshipMap,
    Topology,
    assign_relationships,
    internet_topology,
    mesh_topology,
)
from repro.analysis import AttributionReport, attribute_recharges
from repro.analysis.attribution import analyze_run
from repro.metrics.digest import run_digest
from repro.topology.io import load_topology, save_topology
from repro.workload import FlapRunResult, PulseSchedule, Scenario, ScenarioConfig
from repro.workload.multi import MultiOriginScenario
from repro.workload.patterns import (
    burst_pattern,
    jittered_pattern,
    poisson_pattern,
)
from repro.workload.scenarios import run_episode

__version__ = "1.0.0"

__all__ = [
    "AttributionReport",
    "BgpRouter",
    "CISCO_DEFAULTS",
    "ConfigurationError",
    "ConvergenceSummary",
    "DampingManager",
    "DampingParams",
    "DampingPhase",
    "Engine",
    "ExperimentError",
    "FlapRunResult",
    "IntendedBehaviorModel",
    "IntendedPrediction",
    "JUNIPER_DEFAULTS",
    "Link",
    "LinkConfig",
    "Message",
    "MetricsCollector",
    "MraiConfig",
    "MultiOriginScenario",
    "Network",
    "Node",
    "NoValleyPolicy",
    "OriginRouter",
    "PenaltyState",
    "ProtocolError",
    "PulseSchedule",
    "RelationshipMap",
    "ReproError",
    "RngRegistry",
    "RootCause",
    "RootCauseHistory",
    "Route",
    "RouterConfig",
    "RoutingPolicy",
    "Scenario",
    "ScenarioConfig",
    "SelectiveDampingFilter",
    "ShortestPathPolicy",
    "SimulationError",
    "Timer",
    "TimerError",
    "Topology",
    "TopologyError",
    "UpdateKind",
    "UpdateMessage",
    "analyze_run",
    "assign_relationships",
    "attribute_recharges",
    "burst_pattern",
    "classify_phases",
    "internet_topology",
    "jittered_pattern",
    "load_topology",
    "mesh_topology",
    "poisson_pattern",
    "run_digest",
    "run_episode",
    "save_topology",
    "summarize_convergence",
]

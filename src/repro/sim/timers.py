"""Cancellable, restartable timers layered on the event engine.

Both BGP's MRAI timer and damping's reuse timer need the same life cycle:
start, possibly reschedule to a later (or earlier) instant while pending,
fire exactly once per arming, and report their state. :class:`Timer`
wraps the engine's lazy-cancellation events with that life cycle.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import TimerError
from repro.sim.engine import Engine, ScheduledEvent


class TimerState(enum.Enum):
    """Life-cycle states of a :class:`Timer`."""

    IDLE = "idle"
    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Timer:
    """A one-shot timer that can be rescheduled while pending.

    Parameters
    ----------
    engine:
        The event engine that owns simulated time.
    callback:
        Invoked with no arguments when the timer fires.
    name:
        Optional label used in error messages and ``repr``.
    actor:
        Optional router name forwarded to the engine's schedule-race
        detector: ties between this timer and any other event touching
        the same actor at the same instant are recorded.
    tag:
        Kind label for the detector (``"mrai"``, ``"reuse"``, ...).
    """

    def __init__(
        self,
        engine: Engine,
        callback: Callable[[], None],
        name: str = "",
        actor: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> None:
        self._engine = engine
        self._callback = callback
        self._name = name
        self._actor = actor
        self._tag = tag
        self._state = TimerState.IDLE
        self._event: Optional[ScheduledEvent] = None
        self._expiry: Optional[float] = None

    @property
    def state(self) -> TimerState:
        return self._state

    @property
    def is_pending(self) -> bool:
        return self._state is TimerState.PENDING

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will (or did) fire, ``None`` if idle."""
        return self._expiry

    @property
    def remaining(self) -> float:
        """Seconds until expiry; 0.0 when not pending."""
        if not self.is_pending or self._expiry is None:
            return 0.0
        return max(0.0, self._expiry - self._engine.now)

    def start(self, delay: float) -> None:
        """Arm the timer to fire ``delay`` seconds from now.

        Raises
        ------
        TimerError
            If the timer is already pending (use :meth:`reschedule`).
        """
        if self._state is TimerState.PENDING:
            raise TimerError(f"timer {self._name!r} already pending; use reschedule()")
        self._arm(delay)

    def reschedule(self, delay: float) -> None:
        """Move a pending timer's expiry to ``delay`` seconds from now,
        or arm an idle one."""
        if self._state is TimerState.PENDING and self._event is not None:
            self._event.cancel()
        self._arm(delay)

    def restart_if_idle(self, delay: float) -> bool:
        """Arm the timer only if it is not currently pending.

        Returns ``True`` if the timer was armed by this call.
        """
        if self._state is TimerState.PENDING:
            return False
        self._arm(delay)
        return True

    def cancel(self) -> None:
        """Disarm a pending timer; a no-op in any other state."""
        if self._state is TimerState.PENDING and self._event is not None:
            self._event.cancel()
            self._event = None
            self._state = TimerState.CANCELLED
            self._expiry = None

    def _arm(self, delay: float) -> None:
        if delay < 0:
            raise TimerError(f"timer {self._name!r} delay must be >= 0, got {delay}")
        self._expiry = self._engine.now + delay
        self._event = self._engine.schedule(
            delay, self._fire, actor=self._actor, tag=self._tag
        )
        self._state = TimerState.PENDING

    def _fire(self) -> None:
        # The engine only calls this for non-cancelled events, but a
        # reschedule may have replaced self._event; guard on state anyway.
        if self._state is not TimerState.PENDING:
            return
        self._state = TimerState.FIRED
        self._event = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self._name!r}, state={self._state.value}, expiry={self._expiry})"

"""Cancellable, restartable timers layered on the event engine.

Both BGP's MRAI timer and damping's reuse timer need the same life cycle:
start, possibly reschedule to a later (or earlier) instant while pending,
fire exactly once per arming, and report their state. :class:`Timer`
wraps the engine's lazy-cancellation events with that life cycle.

:class:`TimerAudit` is the opt-in runtime oracle behind ``timerlint``
(:mod:`repro.lint.timers`): when attached via
:meth:`~repro.sim.engine.Engine.enable_timer_audit`, every timer reports
its arm/cancel/fire transitions, and :meth:`TimerAudit.verify` at
simulation end asserts the lifecycle invariants the static pass checks
syntactically — no armed handle was abandoned, no handle was re-armed
while already pending, and every fire matched an arming. When no audit
is attached the timers pay one attribute read per transition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import TimerError
from repro.sim.engine import Engine, ScheduledEvent


class TimerState(enum.Enum):
    """Life-cycle states of a :class:`Timer`."""

    IDLE = "idle"
    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Timer:
    """A one-shot timer that can be rescheduled while pending.

    Parameters
    ----------
    engine:
        The event engine that owns simulated time.
    callback:
        Invoked with no arguments when the timer fires.
    name:
        Optional label used in error messages and ``repr``.
    actor:
        Optional router name forwarded to the engine's schedule-race
        detector: ties between this timer and any other event touching
        the same actor at the same instant are recorded.
    tag:
        Kind label for the detector (``"mrai"``, ``"reuse"``, ...).
    """

    def __init__(
        self,
        engine: Engine,
        callback: Callable[[], None],
        name: str = "",
        actor: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> None:
        self._engine = engine
        self._callback = callback
        self._name = name
        self._actor = actor
        self._tag = tag
        self._state = TimerState.IDLE
        self._event: Optional[ScheduledEvent] = None
        self._expiry: Optional[float] = None

    @property
    def state(self) -> TimerState:
        return self._state

    @property
    def is_pending(self) -> bool:
        return self._state is TimerState.PENDING

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will (or did) fire, ``None`` if idle."""
        return self._expiry

    @property
    def remaining(self) -> float:
        """Seconds until expiry; 0.0 when not pending."""
        if not self.is_pending or self._expiry is None:
            return 0.0
        return max(0.0, self._expiry - self._engine.now)

    def start(self, delay: float) -> None:
        """Arm the timer to fire ``delay`` seconds from now.

        Raises
        ------
        TimerError
            If the timer is already pending (use :meth:`reschedule`).
        """
        if self._state is TimerState.PENDING:
            raise TimerError(f"timer {self._name!r} already pending; use reschedule()")
        self._arm(delay)

    def reschedule(self, delay: float) -> None:
        """Move a pending timer's expiry to ``delay`` seconds from now,
        or arm an idle one."""
        if self._state is TimerState.PENDING and self._event is not None:
            self._event.cancel()
            audit = self._engine.timer_audit
            if audit is not None:
                audit.record_cancel(self)
        self._arm(delay)

    def restart_if_idle(self, delay: float) -> bool:
        """Arm the timer only if it is not currently pending.

        Returns ``True`` if the timer was armed by this call.
        """
        if self._state is TimerState.PENDING:
            return False
        self._arm(delay)
        return True

    def cancel(self) -> None:
        """Disarm a pending timer; a no-op in any other state."""
        if self._state is TimerState.PENDING and self._event is not None:
            self._event.cancel()
            self._event = None
            self._state = TimerState.CANCELLED
            self._expiry = None
            audit = self._engine.timer_audit
            if audit is not None:
                audit.record_cancel(self)

    def _arm(self, delay: float) -> None:
        if delay < 0:
            raise TimerError(f"timer {self._name!r} delay must be >= 0, got {delay}")
        self._expiry = self._engine.now + delay
        self._event = self._engine.schedule(
            delay, self._fire, actor=self._actor, tag=self._tag
        )
        self._state = TimerState.PENDING
        audit = self._engine.timer_audit
        if audit is not None:
            audit.record_arm(self)

    def _fire(self) -> None:
        audit = self._engine.timer_audit
        if audit is not None:
            # Before the state guard on purpose: a fire that arrives while
            # the timer is not pending (a hand-called ``_fire``, or a stale
            # event surviving a bypassed cancel) is exactly the unmatched
            # fire the audit exists to catch.
            audit.record_fire(self)
        # The engine only calls this for non-cancelled events, but a
        # reschedule may have replaced self._event; guard on state anyway.
        if self._state is not TimerState.PENDING:
            return
        self._state = TimerState.FIRED
        self._event = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self._name!r}, state={self._state.value}, expiry={self._expiry})"


@dataclass(frozen=True)
class TimerAuditViolation:
    """One lifecycle invariant broken at runtime.

    ``kind`` is one of ``"double-arm"`` (a handle was armed while the
    audit still considered it armed — only reachable by bypassing the
    :meth:`Timer.start` guard), ``"unmatched-fire"`` (a fire with no
    matching arming, e.g. a hand-called ``_fire`` or a stale event left
    behind by a bypassed cancel), or ``"leak"`` (at verify time a handle
    the audit considers armed can no longer fire because its engine event
    is gone or cancelled).
    """

    kind: str
    timer: str
    time: float
    detail: str


class _AuditRecord:
    """Per-handle ledger entry; holds a strong reference to the timer so
    ``id()`` reuse cannot alias two handles within one audit."""

    __slots__ = ("serial", "timer", "armed", "arms", "fires", "cancels")

    def __init__(self, serial: int, timer: Timer) -> None:
        self.serial = serial
        self.timer = timer
        self.armed = False
        self.arms = 0
        self.fires = 0
        self.cancels = 0


class TimerAudit:
    """Runtime oracle for timer-lifecycle invariants.

    Attach via :meth:`~repro.sim.engine.Engine.enable_timer_audit`
    *before* components create their timers, run the simulation, then
    call :meth:`verify`. The audit is passive — it never reorders,
    delays, or suppresses events — and deterministic: handles are
    numbered in first-seen order and violations are reported in
    occurrence order, so its output is stable across identical runs.

    A timer that is still pending with a live engine event at verify
    time is *not* a leak (the simulation was merely stopped early); it
    is listed by :meth:`pending_timers` instead. A leak means the armed
    handle can never fire: its event was cancelled or dropped behind
    the timer's back, which is the runtime shape of timerlint's TIM001.
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._records: Dict[int, _AuditRecord] = {}
        self._violations: List[TimerAuditViolation] = []

    # ------------------------------------------------------------------
    # recording hooks (called by Timer)
    # ------------------------------------------------------------------

    def _record_for(self, timer: Timer) -> _AuditRecord:
        key = id(timer)
        record = self._records.get(key)
        if record is None:
            record = _AuditRecord(len(self._records), timer)
            self._records[key] = record
        return record

    def _label(self, record: _AuditRecord) -> str:
        return record.timer._name or f"<timer #{record.serial}>"

    def record_arm(self, timer: Timer) -> None:
        record = self._record_for(timer)
        record.arms += 1
        if record.armed:
            self._violations.append(
                TimerAuditViolation(
                    kind="double-arm",
                    timer=self._label(record),
                    time=self._engine.now,
                    detail=(
                        f"armed while already armed (arming #{record.arms}); "
                        "the previous arming was never fired or cancelled"
                    ),
                )
            )
        record.armed = True

    def record_cancel(self, timer: Timer) -> None:
        record = self._record_for(timer)
        record.cancels += 1
        record.armed = False

    def record_fire(self, timer: Timer) -> None:
        record = self._record_for(timer)
        record.fires += 1
        if not record.armed:
            self._violations.append(
                TimerAuditViolation(
                    kind="unmatched-fire",
                    timer=self._label(record),
                    time=self._engine.now,
                    detail=(
                        f"fire #{record.fires} has no matching arming "
                        "(manual _fire call or stale event)"
                    ),
                )
            )
        record.armed = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def timers_seen(self) -> int:
        """Number of distinct timer handles that reported a transition."""
        return len(self._records)

    @property
    def transitions(self) -> int:
        """Total arm/cancel/fire transitions recorded."""
        return sum(r.arms + r.fires + r.cancels for r in self._records.values())

    def pending_timers(self) -> List[str]:
        """Labels of timers still armed with a live event (stopped-early
        state, not a violation), in first-seen order."""
        names: List[str] = []
        for record in sorted(self._records.values(), key=lambda r: r.serial):
            if record.armed and self._event_is_live(record.timer):
                names.append(self._label(record))
        return names

    @staticmethod
    def _event_is_live(timer: Timer) -> bool:
        event = timer._event
        return event is not None and not event.cancelled

    def verify(self) -> List[TimerAuditViolation]:
        """All violations observed so far plus end-state leaks.

        Safe to call repeatedly; transition violations accumulate in
        occurrence order and leak checks reflect the current end state.
        """
        violations = list(self._violations)
        for record in sorted(self._records.values(), key=lambda r: r.serial):
            if record.armed and not self._event_is_live(record.timer):
                violations.append(
                    TimerAuditViolation(
                        kind="leak",
                        timer=self._label(record),
                        time=self._engine.now,
                        detail=(
                            f"armed handle can never fire ({record.arms} arm(s), "
                            f"{record.fires} fire(s), {record.cancels} cancel(s)); "
                            "its engine event was cancelled or dropped behind "
                            "the timer's back"
                        ),
                    )
                )
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimerAudit(timers={self.timers_seen}, "
            f"transitions={self.transitions}, "
            f"violations={len(self._violations)})"
        )

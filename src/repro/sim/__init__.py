"""Discrete-event simulation substrate.

This package provides the deterministic event engine that every other
subsystem is built on: a priority-queue scheduler (:class:`Engine`),
cancellable timers (:class:`Timer`), and named, independently-seeded
random-number streams (:class:`RngRegistry`).

The engine is intentionally minimal — time is a float number of simulated
seconds, events are plain callables, and ties in firing time are broken by
insertion order so that runs with the same seed are bit-for-bit
reproducible.
"""

from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.events import EventRecord, EventTrace, ScheduleTie
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer, TimerAudit, TimerAuditViolation, TimerState

__all__ = [
    "Engine",
    "ScheduledEvent",
    "ScheduleTie",
    "EventRecord",
    "EventTrace",
    "RngRegistry",
    "Timer",
    "TimerAudit",
    "TimerAuditViolation",
    "TimerState",
]

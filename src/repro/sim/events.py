"""Structured trace of interesting simulation events.

The metrics layer and the four-state classifier both need a replayable
record of what happened: message deliveries, suppression starts and ends,
reuse-timer expiries and whether they were noisy. :class:`EventTrace`
collects :class:`EventRecord` rows in time order; it is append-only during
a run and queried afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class ScheduleTie:
    """Two events firing at the same simulated instant against one actor.

    Recorded by the engine's opt-in schedule-race detector (see
    :meth:`repro.sim.engine.Engine.enable_tie_detection`). A tie is not
    itself a bug — the ``(time, seq)`` heap order resolves it
    deterministically — but it marks a place where results *depend* on
    scheduling order, which static analysis cannot see. ``first_seq`` is
    the anchor event of the instant (the first event touching ``actor``
    at ``time``); ``second_seq`` is the tied event. Tags carry the
    scheduling site's label (``deliver``, ``mrai``, ``reuse``, ``flap``).
    """

    time: float
    actor: str
    first_seq: int
    second_seq: int
    first_tag: Optional[str] = None
    second_tag: Optional[str] = None

    @property
    def tags(self) -> Tuple[str, str]:
        """The (anchor, tied) tag pair, with ``?`` for unlabelled events."""
        return (self.first_tag or "?", self.second_tag or "?")


@dataclass(frozen=True)
class EventRecord:
    """One row of the simulation trace.

    ``kind`` is a short string tag (``"update"``, ``"suppress"``,
    ``"reuse"``, ``"flap"`` ...); ``data`` carries kind-specific fields.
    """

    time: float
    kind: str
    node: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)


class EventTrace:
    """Append-only, time-ordered container of :class:`EventRecord` rows."""

    def __init__(self) -> None:
        self._records: List[EventRecord] = []

    def record(
        self,
        time: float,
        kind: str,
        node: Optional[str] = None,
        **data: Any,
    ) -> EventRecord:
        """Append one record. Times must be non-decreasing."""
        if self._records and time < self._records[-1].time - 1e-9:
            raise ValueError(
                f"trace records must be appended in time order "
                f"({time} < {self._records[-1].time})"
            )
        rec = EventRecord(time=time, kind=kind, node=node, data=dict(data))
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def of_kind(self, *kinds: str) -> List[EventRecord]:
        """All records whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def times_of_kind(self, *kinds: str) -> List[float]:
        """Just the timestamps of records matching ``kinds``."""
        wanted = set(kinds)
        return [r.time for r in self._records if r.kind in wanted]

    def last_time_of_kind(self, *kinds: str) -> Optional[float]:
        """Timestamp of the most recent matching record, or ``None``."""
        wanted = set(kinds)
        for rec in reversed(self._records):
            if rec.kind in wanted:
                return rec.time
        return None

    def window(self, start: float, end: float) -> List[EventRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self._records if start <= r.time < end]

    def span(self) -> Tuple[float, float]:
        """(first, last) record times; (0.0, 0.0) when empty."""
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].time, self._records[-1].time)

"""Runtime allocation oracle for the perflint pass.

:class:`AllocationProbe` is the dynamic counterpart of the static
PERF001..PERF010 rules, the same pairing the timer audit provides for
timerlint: attach it to an engine (``simulate --audit-alloc``) and every
executed event is bracketed with tracemalloc samples, accumulating *net
traced bytes* and allocation-size peaks per profiled sub-phase (the
event-tag mapping is shared with
:class:`~repro.trace.profile.EnginePhaseProbe`). A hot path that keeps
allocating per event — closures, outcome objects without ``__slots__``,
per-call dict displays — shows up as a per-event byte rate the
integration oracle (``tests/integration/test_perflint_oracle.py``)
cross-checks against seeded rule violations.

tracemalloc measures *live* traced memory, so churn that is immediately
garbage-collected nets out to ~zero; the oracle therefore compares
retained allocations (hazard fixtures append their per-event garbage to
a results list) and per-event peaks rather than raw totals.

The probe reads tracemalloc, never the simulated clock, and is strictly
opt-in: with no probe attached the engine keeps its uninstrumented fast
dispatch path.
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, List, Optional

from repro.trace.profile import PHASE_TIMER_DISPATCH, TAG_PHASE_MAP


class AllocationProbe:
    """Per-sub-phase net-allocation sampler (engine ``PhaseProbe``)."""

    __slots__ = (
        "_net_bytes",
        "_peak_bytes",
        "_events",
        "_before",
        "_started_tracing",
    )

    def __init__(self) -> None:
        self._net_bytes: Dict[str, int] = {}
        self._peak_bytes: Dict[str, int] = {}
        self._events: Dict[str, int] = {}
        self._before = 0
        self._started_tracing = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Begin tracing (idempotent; remembers whether it owns the
        tracemalloc session so :meth:`stop` never tears down a session
        someone else started)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def stop(self) -> None:
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False

    def __enter__(self) -> "AllocationProbe":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- engine PhaseProbe protocol ------------------------------------

    def before(self) -> None:
        if tracemalloc.is_tracing():
            self._before = tracemalloc.get_traced_memory()[0]

    def after(self, tag: Optional[str]) -> None:
        if not tracemalloc.is_tracing():
            return
        current = tracemalloc.get_traced_memory()[0]
        delta = current - self._before
        label = TAG_PHASE_MAP.get(tag, PHASE_TIMER_DISPATCH) if tag else (
            PHASE_TIMER_DISPATCH
        )
        self._net_bytes[label] = self._net_bytes.get(label, 0) + delta
        if delta > self._peak_bytes.get(label, 0):
            self._peak_bytes[label] = delta
        self._events[label] = self._events.get(label, 0) + 1

    # -- reporting -----------------------------------------------------

    @property
    def events_sampled(self) -> int:
        return sum(self._events.values())

    def net_bytes(self, label: Optional[str] = None) -> int:
        """Net retained bytes, for one sub-phase or over all of them."""
        if label is not None:
            return self._net_bytes.get(label, 0)
        return sum(self._net_bytes.values())

    def peak_event_bytes(self, label: Optional[str] = None) -> int:
        """Largest single-event net allocation seen."""
        if label is not None:
            return self._peak_bytes.get(label, 0)
        return max(self._peak_bytes.values(), default=0)

    def bytes_per_event(self, label: str) -> float:
        events = self._events.get(label, 0)
        if events == 0:
            return 0.0
        return self._net_bytes.get(label, 0) / events

    def report(self) -> List[Dict[str, object]]:
        """Per-sub-phase rows for the CLI / JSON export, sorted by label."""
        return [
            {
                "phase": label,
                "events": self._events.get(label, 0),
                "net_bytes": self._net_bytes.get(label, 0),
                "peak_event_bytes": self._peak_bytes.get(label, 0),
                "bytes_per_event": round(self.bytes_per_event(label), 1),
            }
            for label in sorted(self._net_bytes)
        ]

    def describe(self) -> str:
        """Human-readable summary for the ``--audit-alloc`` CLI output."""
        rows = self.report()
        if not rows:
            return "allocation audit: no events sampled"
        lines = ["allocation audit (net traced bytes per sub-phase):"]
        for row in rows:
            lines.append(
                "  {phase:<18} events={events:<8} net={net_bytes:<10} "
                "peak/event={peak_event_bytes:<8} "
                "avg/event={bytes_per_event}".format(**row)
            )
        return "\n".join(lines)


__all__ = ["AllocationProbe"]

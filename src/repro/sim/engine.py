"""The discrete-event engine.

The engine owns simulated time. Components schedule callables at absolute
or relative times; :meth:`Engine.run` pops events in ``(time, sequence)``
order and invokes them. Because ties are broken by the monotonically
increasing sequence number, two events scheduled for the same instant fire
in the order they were scheduled, which makes whole simulations
deterministic for a fixed seed.

Heap entries are plain ``(time, seq, event)`` tuples so the heap compares
at C speed without calling back into Python ``__lt__``; the
:class:`ScheduledEvent` object itself is a ``__slots__`` handle used for
cancellation and the schedule-race labels. Cancellation is lazy, but the
engine tracks the cancelled population and compacts the heap in place
whenever cancelled entries outnumber live ones, so timer churn (MRAI
re-arms, reuse-timer reschedules) cannot bloat the queue without bound.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

from repro.errors import SimulationError
from repro.sim.events import ScheduleTie

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.timers import TimerAudit
    from repro.sim.watchdog import Watchdog

TieObserver = Callable[[ScheduleTie], None]

#: Observer invoked for every executed event when instrumentation is on
#: (the causal tracer installs one via :meth:`Engine.set_event_hook`).
EventHook = Callable[["ScheduledEvent"], None]


class PhaseProbe(Protocol):
    """Structural interface for per-event phase sampling.

    The engine brackets every callback with ``before()``/``after(tag)``
    so the probe — not the engine — owns whatever non-deterministic
    measurement it takes (wall clock for the
    :class:`~repro.trace.profile.EnginePhaseProbe`, tracemalloc for the
    :class:`~repro.sim.allocprobe.AllocationProbe`). The engine itself
    never reads a host clock.
    """

    def before(self) -> None: ...

    def after(self, tag: Optional[str]) -> None: ...

#: Heap entry layout: ties in ``time`` break on ``seq``, and the event
#: handle never participates in comparisons.
_HeapEntry = Tuple[float, int, "ScheduledEvent"]

#: Queues smaller than this are never compacted — rebuilding a tiny heap
#: costs more than skipping its cancelled entries at pop time.
_COMPACT_MIN_SIZE = 64

#: Hoisted so the finiteness guard in :meth:`Engine.schedule_at` does not
#: rebuild a tuple (and two floats) on every scheduling call.
_NON_FINITE = (float("inf"), float("-inf"))

_EventState = Tuple[
    float, int, Callable[[], None], bool, Optional[str], Optional[str], Optional["Engine"]
]


class ScheduledEvent:
    """A callback registered to fire at a simulated instant.

    The engine stores events inside ``(time, seq)``-keyed heap tuples, so
    instances only need to carry state, not ordering. ``cancelled``
    supports lazy cancellation: cancelled entries stay in the heap and are
    skipped when popped (the engine compacts when they pile up). ``actor``
    and ``tag`` are optional labels (the router a callback touches and the
    scheduling site's kind) consumed by the schedule-race detector; they
    never affect ordering.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "actor", "tag", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        actor: Optional[str] = None,
        tag: Optional[str] = None,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.actor = actor
        self.tag = tag
        #: Back-reference used to report cancellations while the event is
        #: still queued; the engine clears it when the entry leaves the heap.
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            self._engine = None
            engine._note_cancelled()

    def __getstate__(self) -> _EventState:
        return (
            self.time,
            self.seq,
            self.callback,
            self.cancelled,
            self.actor,
            self.tag,
            self._engine,
        )

    def __setstate__(self, state: _EventState) -> None:
        (
            self.time,
            self.seq,
            self.callback,
            self.cancelled,
            self.actor,
            self.tag,
            self._engine,
        ) = state

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"ScheduledEvent(time={self.time:.6f}, seq={self.seq}, "
            f"{state}, actor={self.actor!r}, tag={self.tag!r})"
        )


class Engine:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        The initial value of the simulated clock, in seconds.

    Notes
    -----
    The engine never advances the clock past the firing time of the event
    being executed, and it refuses to schedule events in the past; both
    guarantees together mean causality can never be violated by scheduling
    mistakes — they surface as :class:`SimulationError` instead.

    **Schedule-race detection.** Ties — two events at the same instant —
    are resolved deterministically by the sequence number, but when both
    events touch the same router the *outcome* of the simulation depends
    on that tie-break, which is exactly the ordering-dependence static
    analysis cannot see. With ``detect_ties=True`` (or after
    :meth:`enable_tie_detection`) the engine records a
    :class:`~repro.sim.events.ScheduleTie` whenever two labelled events
    with the same ``actor`` fire at the same instant, and forwards it to
    any registered observers (the metrics collector hooks in here).
    Detection is passive: it never reorders, delays, or drops events.
    When detection is off, the run loops skip tie bookkeeping entirely —
    the hot path is pop, advance clock, fire.

    **Heap compaction.** Cancelled events are dropped lazily, but the
    engine counts them and rebuilds the heap in place once they exceed
    half the queue (above :data:`_COMPACT_MIN_SIZE` entries), so heavy
    timer churn keeps memory proportional to the *live* event count.
    """

    def __init__(self, start_time: float = 0.0, detect_ties: bool = False) -> None:
        self._now = float(start_time)
        self._queue: List[_HeapEntry] = []
        self._seq = 0
        self._cancelled = 0
        self._running = False
        self._events_executed = 0
        self._detect_ties = bool(detect_ties)
        self._ties: List[ScheduleTie] = []
        self._tie_observers: List[TieObserver] = []
        self._instant_time: Optional[float] = None
        self._instant_actors: Dict[str, Tuple[int, Optional[str]]] = {}
        self._event_hook: Optional[EventHook] = None
        #: Opt-in timer-lifecycle oracle (:class:`~repro.sim.timers.TimerAudit`);
        #: ``None`` keeps every :class:`~repro.sim.timers.Timer` hook on the
        #: cheap disabled path (one attribute read + ``is None`` test).
        self._timer_audit: Optional["TimerAudit"] = None
        #: Opt-in no-progress detector (:class:`~repro.sim.watchdog.Watchdog`);
        #: observes every executed event through the instrumented path.
        self._watchdog: Optional["Watchdog"] = None
        #: Opt-in per-event phase sampler (profiler sub-phases or the
        #: allocation audit); forces the instrumented dispatch path.
        self._phase_probe: Optional[PhaseProbe] = None
        #: True when the run loops must route through :meth:`_execute`
        #: (tie detection or an event hook); kept as one precomputed flag
        #: so the hot path stays a single attribute test.
        self._instrumented = self._detect_ties

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled

    @property
    def queue_size(self) -> int:
        """Total heap entries, including lazily-cancelled ones (the
        compaction threshold keeps this within 2x the live count)."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        actor: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        ``actor`` names the router (or other serialisation domain) the
        callback touches and ``tag`` the kind of scheduling site; both
        exist solely for the schedule-race detector.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not a finite number.
        """
        if time != time or time in _NON_FINITE:
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, clock is already at {self._now:.6f}"
            )
        time = float(time)
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, actor=actor, tag=tag, engine=self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        actor: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, actor=actor, tag=tag)

    def peek_next_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    def _drop_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1

    # ------------------------------------------------------------------
    # cancellation bookkeeping / heap compaction
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is still
        queued; compacts once cancelled entries outnumber live ones."""
        self._cancelled += 1
        queue_len = len(self._queue)
        if queue_len >= _COMPACT_MIN_SIZE and self._cancelled * 2 > queue_len:
            self.purge_cancelled()

    def purge_cancelled(self) -> int:
        """Drop every cancelled entry from the heap and re-heapify.

        The rebuild mutates the queue list in place, so run loops holding
        a local reference observe the compaction. Returns the number of
        entries removed. Called automatically past the compaction
        threshold; callable explicitly before snapshotting an engine.
        """
        if self._cancelled == 0:
            return 0
        queue = self._queue
        live = [entry for entry in queue if not entry[2].cancelled]
        removed = len(queue) - len(live)
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled = 0
        return removed

    # ------------------------------------------------------------------
    # schedule-race detection
    # ------------------------------------------------------------------

    @property
    def tie_detection_enabled(self) -> bool:
        """Whether same-instant same-actor ties are being recorded."""
        return self._detect_ties

    @property
    def ties(self) -> List[ScheduleTie]:
        """Ties recorded so far (empty unless detection is enabled)."""
        return list(self._ties)

    def enable_tie_detection(self) -> None:
        """Turn on the schedule-race detector for subsequent events."""
        self._detect_ties = True
        self._instrumented = True

    def set_event_hook(self, hook: Optional[EventHook]) -> None:
        """Install (or clear) an observer invoked with every executed
        event, before its callback fires. Used by the causal tracer; with
        no hook and no tie detection the run loops keep the
        uninstrumented fast dispatch path."""
        self._event_hook = hook
        self._instrumented = (
            self._detect_ties
            or hook is not None
            or self._watchdog is not None
            or self._phase_probe is not None
        )

    def set_phase_probe(self, probe: Optional[PhaseProbe]) -> None:
        """Install (or clear) a per-event phase sampler.

        Every executed event is bracketed with ``probe.before()`` /
        ``probe.after(event.tag)``; the probe maps tags to profiled
        sub-phases. With no probe (and no other instrumentation) the run
        loops keep the uninstrumented fast dispatch path.
        """
        self._phase_probe = probe
        self._instrumented = (
            self._detect_ties
            or self._event_hook is not None
            or self._watchdog is not None
            or probe is not None
        )

    @property
    def phase_probe(self) -> Optional[PhaseProbe]:
        """The attached phase sampler, or ``None`` when disabled."""
        return self._phase_probe

    @property
    def timer_audit(self) -> Optional["TimerAudit"]:
        """The attached timer-lifecycle oracle, or ``None`` when disabled."""
        return self._timer_audit

    def enable_timer_audit(self) -> "TimerAudit":
        """Attach (or return the existing) :class:`~repro.sim.timers.TimerAudit`.

        Once attached, every :class:`~repro.sim.timers.Timer` bound to this
        engine reports its arm/cancel/fire transitions to the audit;
        ``audit.verify()`` at simulation end asserts no timer leaked and
        every fire matched an armed handle. Opt-in for the same reason as
        tie detection: the disabled path must stay free for the hot loop.
        """
        if self._timer_audit is None:
            # Imported lazily: repro.sim.timers imports this module at top
            # level, so the reverse edge must not exist at import time.
            from repro.sim.timers import TimerAudit

            self._timer_audit = TimerAudit(self)
        return self._timer_audit

    @property
    def watchdog(self) -> Optional["Watchdog"]:
        """The attached no-progress detector, or ``None`` when disabled."""
        return self._watchdog

    def enable_watchdog(
        self, max_events_per_instant: Optional[int] = None
    ) -> "Watchdog":
        """Attach (or return the existing) :class:`~repro.sim.watchdog.Watchdog`.

        Once attached, every executed event is observed; executing more
        than ``max_events_per_instant`` events at one identical virtual
        instant raises :class:`~repro.errors.SimulationStalled` with a
        structured diagnostics snapshot (including the pending-timer
        inventory when a :class:`~repro.sim.timers.TimerAudit` is also
        attached). Opt-in because it forces the instrumented dispatch
        path; fault-injection scenarios enable it automatically.
        """
        # Imported lazily: repro.sim.watchdog type-imports this module,
        # and the runtime edge must not exist at import time.
        from repro.sim.watchdog import Watchdog

        if self._watchdog is None:
            if max_events_per_instant is not None:
                self._watchdog = Watchdog(self, max_events_per_instant)
            else:
                self._watchdog = Watchdog(self)
            self._instrumented = True
        elif max_events_per_instant is not None:
            self._watchdog.max_events_per_instant = max_events_per_instant
        return self._watchdog

    def pending_summary(
        self, limit: int = 8
    ) -> List[Tuple[float, Optional[str], Optional[str]]]:
        """The earliest live queue entries as ``(time, actor, tag)``
        triples (diagnostics; at most ``limit`` entries)."""
        # Heap entries are (time, seq, event) with seq unique, so plain
        # tuple order sorts by (time, seq) and never compares events — no
        # key lambda needed.
        live = sorted(entry for entry in self._queue if not entry[2].cancelled)
        return [(entry[0], entry[2].actor, entry[2].tag) for entry in live[:limit]]

    def add_tie_observer(self, observer: TieObserver) -> None:
        """Invoke ``observer`` with every :class:`ScheduleTie` as it is
        recorded (used by the metrics collector)."""
        self._tie_observers.append(observer)

    def clear_ties(self) -> None:
        """Forget recorded ties (between warm-up and the measured run)."""
        self._ties.clear()
        self._instant_time = None
        self._instant_actors = {}

    def _note_tie(self, event: ScheduledEvent) -> None:
        # A "tie" means two events were scheduled for the *identical*
        # float instant, so exact inequality is the correct bucket test.
        if event.time != self._instant_time:  # detlint: disable=DET005
            self._instant_time = event.time
            self._instant_actors = {}
        if event.actor is None:
            return
        anchor = self._instant_actors.get(event.actor)
        if anchor is None:
            self._instant_actors[event.actor] = (event.seq, event.tag)
            return
        tie = ScheduleTie(
            time=event.time,
            actor=event.actor,
            first_seq=anchor[0],
            second_seq=event.seq,
            first_tag=anchor[1],
            second_tag=event.tag,
        )
        self._ties.append(tie)
        for observer in self._tie_observers:
            observer(tie)

    def _execute(self, event: ScheduledEvent) -> None:
        """Advance the clock to ``event`` and fire it (shared by
        :meth:`step` and the instrumented run loops, so detection sees
        every event when it is enabled)."""
        event._engine = None
        self._now = event.time
        self._events_executed += 1
        if self._detect_ties:
            self._note_tie(event)
        if self._watchdog is not None:
            self._watchdog.observe(event)
        if self._event_hook is not None:
            self._event_hook(event)
        probe = self._phase_probe
        if probe is None:
            event.callback()
            return
        probe.before()
        try:
            event.callback()
        finally:
            probe.after(event.tag)

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (the clock does not move in that case).
        """
        self._drop_cancelled_head()
        if not self._queue:
            return False
        self._execute(heapq.heappop(self._queue)[2])
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Parameters
        ----------
        until:
            If given, stop before executing any event scheduled strictly
            after this time; the clock is then advanced to ``until``.
        max_events:
            Safety valve for runaway simulations; ``None`` means unlimited.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                if not queue:
                    break
                entry = queue[0]
                if until is not None and entry[0] > until:
                    break
                heappop(queue)
                event = entry[2]
                if self._instrumented:
                    self._execute(event)
                else:
                    # Hot path: no tie/hook bookkeeping, no extra call.
                    event._engine = None
                    self._now = entry[0]
                    self._events_executed += 1
                    event.callback()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_until_idle(self, max_time: float, max_events: int = 10_000_000) -> int:
        """Run until the queue is fully drained or ``max_time`` is reached.

        This is the standard way to run a damping simulation to
        completion: reuse timers are bounded by the max hold-down ceiling,
        so a converged network always drains its queue. Unlike
        :meth:`run`, the clock is left at the last executed event rather
        than advanced to ``max_time``, so ``engine.now`` after a drained
        run reads as "when the simulation went quiet".
        """
        if self._running:
            raise SimulationError("engine.run_until_idle() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while executed < max_events:
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                if not queue:
                    break
                entry = queue[0]
                if entry[0] > max_time:
                    break
                heappop(queue)
                event = entry[2]
                if self._instrumented:
                    self._execute(event)
                else:
                    # Hot path: no tie/hook bookkeeping, no extra call.
                    event._engine = None
                    self._now = entry[0]
                    self._events_executed += 1
                    event.callback()
                executed += 1
        finally:
            self._running = False
        if executed >= max_events:
            # Imported lazily: repro.sim.watchdog type-imports this module.
            from repro.errors import SimulationStalled
            from repro.sim.watchdog import stall_diagnostics

            diagnostics = stall_diagnostics(self)
            raise SimulationStalled(
                f"simulation did not drain within {max_events} events "
                f"(clock at {self._now:.1f}s)\n" + diagnostics.describe(),
                diagnostics=diagnostics,
            )
        return executed

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""
        for entry in self._queue:
            entry[2]._engine = None
        self._queue.clear()
        self._cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self._now:.3f}, pending={self.pending_count}, "
            f"executed={self._events_executed})"
        )


def call_soon(
    engine: Engine,
    callback: Callable[[], None],
    actor: Optional[str] = None,
    tag: Optional[str] = None,
) -> ScheduledEvent:
    """Schedule ``callback`` at the current instant (after pending same-time
    events already in the queue)."""
    return engine.schedule(0.0, callback, actor=actor, tag=tag)


def format_time(seconds: float) -> str:
    """Render a simulated time as ``h:mm:ss.mmm`` for logs and reports."""
    total_ms = int(round(seconds * 1000))
    ms = total_ms % 1000
    total_s = total_ms // 1000
    s = total_s % 60
    m = (total_s // 60) % 60
    h = total_s // 3600
    return f"{h}:{m:02d}:{s:02d}.{ms:03d}"


__all__: List[str] = [
    "Engine",
    "EventHook",
    "ScheduleTie",
    "ScheduledEvent",
    "TieObserver",
    "call_soon",
    "format_time",
]

"""Named, independently-seeded random streams.

A simulation needs several sources of randomness — MRAI jitter, link-delay
jitter, topology construction, ISP placement. If they all shared one
``random.Random``, changing how often one consumer draws would perturb
every other consumer and make results impossible to compare across code
changes. :class:`RngRegistry` derives an independent stream per name from
a single master seed, so each consumer's draws are stable in isolation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for named random streams derived from one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)``, so
        the same name always yields the same sequence for a given master
        seed, regardless of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw one uniform sample from the named stream."""
        return self.stream(name).uniform(low, high)

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry whose master seed depends on ``name``.

        Used by sweep runners so each repetition gets fully independent
        randomness while remaining reproducible.
        """
        digest = hashlib.sha256(
            f"{self._master_seed}/fork/{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={sorted(self._streams)})"

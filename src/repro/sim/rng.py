"""Named, independently-seeded random streams.

A simulation needs several sources of randomness — MRAI jitter, link-delay
jitter, topology construction, ISP placement. If they all shared one
``random.Random``, changing how often one consumer draws would perturb
every other consumer and make results impossible to compare across code
changes. :class:`RngRegistry` derives an independent stream per name from
a single master seed, so each consumer's draws are stable in isolation.

Streams are :class:`CompactStateRandom` instances: behaviourally plain
``random.Random`` (every draw is the same C-implemented method — no
wrapper on the hot path), but they pickle *compactly*. A Mersenne
Twister state is 625 machine words (~3.7 KB pickled), and a warmed-up
scenario holds hundreds of streams that have each consumed only a
handful of draws; pickling full states made warm-state snapshots
megabyte-sized. A compact stream instead records "seed plus words
consumed" when the state is reachable by replaying a few generator
words from the seed (the overwhelmingly common case), falling back to
the packed raw state otherwise. Restoration is exact in both paths:
the unpickled stream's ``getstate()`` equals the original's, so the
digest-identity contract of snapshot restore holds bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Any, Dict, Optional, Tuple

#: Words in one Mersenne Twister output block (the regeneration unit).
_MT_BLOCK_WORDS = 624

#: How many regenerated blocks the encoder searches before falling back
#: to the raw packed state. Warm-up draws consume a few words per
#: stream, so block 1 matches almost always; the bound keeps encoding
#: O(blocks) for pathological, heavily-drawn streams.
_MAX_REPLAY_BLOCKS = 8

#: Encoded stream state: ``("replay", words_consumed, gauss_next)`` or
#: ``("raw", version, packed_internal_state, gauss_next)``.
_EncodedState = Tuple[Any, ...]


def _encode_stream_state(seed: int, state: Tuple[Any, ...]) -> _EncodedState:
    """Compress a ``random.Random`` state relative to its seed.

    The Mersenne block after ``k`` regenerations is a pure function of
    the seed, so a state whose block matches one of the first few
    regenerations is fully described by the number of 32-bit words
    consumed since seeding (index semantics make the reconstruction
    exact — see :func:`_restore_compact_stream`). States beyond the
    search bound, or from a different generator version, are stored
    packed instead of as a Python tuple of 625 boxed ints.
    """
    version, internal, gauss_next = state[0], state[1], state[2]
    probe = random.Random(seed)
    if probe.getstate() == state:
        return ("replay", 0, None)
    block = internal[:-1]
    index = internal[-1]
    for regen in range(1, _MAX_REPLAY_BLOCKS + 1):
        # One draw forces the next regeneration; the probe's block is
        # then the regen-``regen`` block with one word consumed.
        probe.getrandbits(32)
        if probe.getstate()[1][:-1] == block:
            return ("replay", (regen - 1) * _MT_BLOCK_WORDS + index, gauss_next)
        for _ in range(_MT_BLOCK_WORDS - 1):
            probe.getrandbits(32)
    packed = struct.pack("<625I", *internal)
    return ("raw", version, packed, gauss_next)


def _restore_compact_stream(
    seed: int, encoded: _EncodedState
) -> "CompactStateRandom":
    """Rebuild a stream from its seed and encoded state, exactly.

    Replay encoding: every ``getrandbits(32)`` call consumes exactly one
    generator word, so ``words_consumed`` calls on a freshly-seeded
    stream land on the same block with the same index as the original —
    whatever mix of ``random()``/``getrandbits``/``choice`` produced
    that consumption in the first place.
    """
    stream = CompactStateRandom(seed)
    kind = encoded[0]
    if kind == "replay":
        words, gauss_next = encoded[1], encoded[2]
        for _ in range(words):
            stream.getrandbits(32)
        if gauss_next is not None:
            version, internal, _ = stream.getstate()
            stream.setstate((version, internal, gauss_next))
        return stream
    version, packed, gauss_next = encoded[1], encoded[2], encoded[3]
    internal = struct.unpack("<625I", packed)
    stream.setstate((version, internal, gauss_next))
    return stream


class CompactStateRandom(random.Random):
    """``random.Random`` that pickles as (seed, compact state delta).

    Draws are untouched C methods — the subclass only overrides
    ``__reduce__`` — so there is no hot-path cost. Pickling and
    ``copy.deepcopy`` both go through the compact encoding and restore
    the generator state exactly (verified by the snapshot digest
    tests); a lightly-used stream serialises to tens of bytes instead
    of ~3.7 KB.
    """

    def __init__(self, derived_seed: int) -> None:
        self._derived_seed = int(derived_seed)
        super().__init__(self._derived_seed)

    def __reduce__(self) -> Tuple[Any, ...]:
        encoded = _encode_stream_state(self._derived_seed, self.getstate())
        return (_restore_compact_stream, (self._derived_seed, encoded))


class RngRegistry:
    """Factory for named random streams derived from one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)``, so
        the same name always yields the same sequence for a given master
        seed, regardless of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = CompactStateRandom(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw one uniform sample from the named stream."""
        return self.stream(name).uniform(low, high)

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry whose master seed depends on ``name``.

        Used by sweep runners so each repetition gets fully independent
        randomness while remaining reproducible.
        """
        digest = hashlib.sha256(
            f"{self._master_seed}/fork/{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={sorted(self._streams)})"

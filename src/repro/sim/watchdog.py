"""No-progress detection for the event engine.

A damping simulation is supposed to drain: reuse timers are bounded by
the max hold-down ceiling, MRAI timers go quiet once routers stop
churning. A bug that breaks either property — a zero-delay event that
re-schedules itself, two components re-triggering each other at the same
instant, a timer callback that re-arms unconditionally — turns
``run_until_idle`` into an unbounded loop at a frozen virtual clock.

The :class:`Watchdog` makes that failure mode structural instead of a
hang: it counts events executed at each identical virtual instant and,
past a threshold, raises :class:`~repro.errors.SimulationStalled`
carrying a :class:`StallDiagnostics` snapshot — the clock, progress
counters, a sample of the next pending events, and (when a
:class:`~repro.sim.timers.TimerAudit` is attached) the pending-timer
inventory, so the failure names the timers that kept the queue alive.

The watchdog is opt-in (:meth:`~repro.sim.engine.Engine.enable_watchdog`)
because it routes dispatch through the instrumented path; fault-injection
scenarios enable it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import SimulationStalled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, ScheduledEvent

#: Default ceiling on events executed at one identical virtual instant.
#: Orders of magnitude above anything a real episode produces (a full
#: mesh delivering one update per link at one instant is O(links)), and
#: low enough to trip within milliseconds of wall-clock on a wedge.
DEFAULT_MAX_EVENTS_PER_INSTANT = 50_000

#: How many upcoming events a diagnostics snapshot samples.
_NEXT_EVENT_SAMPLE = 8


@dataclass(frozen=True)
class StallDiagnostics:
    """Structured snapshot of a stalled engine.

    ``culprit`` is the ``(actor, tag)`` of the event whose execution
    tripped the watchdog — the queue sample alone can miss it, because a
    self-rescheduling wedge trips *before* it re-arms, leaving the queue
    empty. ``next_events`` samples the earliest live queue entries as
    ``(time, actor, tag)`` triples; ``pending_timers`` is the
    :meth:`~repro.sim.timers.TimerAudit.pending_timers` inventory when an
    audit was attached (``None`` means no audit, not "no timers").
    """

    now: float
    events_executed: int
    events_at_instant: int
    pending_count: int
    next_events: Tuple[Tuple[float, Optional[str], Optional[str]], ...]
    pending_timers: Optional[Tuple[str, ...]]
    culprit: Optional[Tuple[Optional[str], Optional[str]]] = None

    def describe(self) -> str:
        """Multi-line human-readable rendering (CLI error output)."""
        lines = [
            f"clock {self.now:.6f}s, {self.events_executed} events executed, "
            f"{self.events_at_instant} at the current instant, "
            f"{self.pending_count} pending",
        ]
        if self.culprit is not None:
            actor, tag = self.culprit
            lines.append(f"tripped by: actor={actor or '?'} tag={tag or '?'}")
        if self.next_events:
            lines.append("next events:")
            for time, actor, tag in self.next_events:
                lines.append(
                    f"  t={time:.6f} actor={actor or '?'} tag={tag or '?'}"
                )
        if self.pending_timers is None:
            lines.append("pending timers: (no timer audit attached)")
        elif self.pending_timers:
            lines.append("pending timers:")
            for label in self.pending_timers:
                lines.append(f"  {label}")
        else:
            lines.append("pending timers: none")
        return "\n".join(lines)


def stall_diagnostics(
    engine: "Engine",
    events_at_instant: int = 0,
    culprit: Optional[Tuple[Optional[str], Optional[str]]] = None,
) -> StallDiagnostics:
    """Snapshot ``engine``'s queue and timer inventory for a stall report."""
    audit = engine.timer_audit
    inventory: Optional[Tuple[str, ...]] = None
    if audit is not None:
        inventory = tuple(audit.pending_timers())
    # StallDiagnostics has a defaulted field, so it cannot take __slots__
    # on this Python; it is built once per stall report, never per event.
    return StallDiagnostics(  # perflint: disable=PERF006
        now=engine.now,
        events_executed=engine.events_executed,
        events_at_instant=events_at_instant,
        pending_count=engine.pending_count,
        next_events=tuple(engine.pending_summary(_NEXT_EVENT_SAMPLE)),
        pending_timers=inventory,
        culprit=culprit,
    )


class Watchdog:
    """Counts events per identical virtual instant and trips on a stall.

    Observation is passive — the watchdog never reorders, delays, or
    drops events — and deterministic: the same run trips at the same
    event, so stall reports are reproducible like everything else.
    """

    def __init__(
        self,
        engine: "Engine",
        max_events_per_instant: int = DEFAULT_MAX_EVENTS_PER_INSTANT,
    ) -> None:
        if max_events_per_instant < 1:
            raise ValueError(
                f"max_events_per_instant must be >= 1, got {max_events_per_instant}"
            )
        self._engine = engine
        self.max_events_per_instant = max_events_per_instant
        self._instant: Optional[float] = None
        self._count = 0

    @property
    def events_at_instant(self) -> int:
        """Events observed so far at the current virtual instant."""
        return self._count

    def observe(self, event: "ScheduledEvent") -> None:
        """Engine dispatch hook: called once per executed event.

        Raises
        ------
        SimulationStalled
            When more than ``max_events_per_instant`` events execute at
            one identical virtual instant.
        """
        # A stall bucket is the *identical* float instant — any advance,
        # however small, is progress, so exact inequality is correct.
        if event.time != self._instant:  # detlint: disable=DET005
            self._instant = event.time
            self._count = 1
            return
        self._count += 1
        if self._count > self.max_events_per_instant:
            diagnostics = stall_diagnostics(
                self._engine, self._count, culprit=(event.actor, event.tag)
            )
            raise SimulationStalled(
                f"no progress: {self._count} events executed at "
                f"t={event.time:.6f}s without the clock advancing\n"
                + diagnostics.describe(),
                diagnostics=diagnostics,
            )


__all__ = [
    "DEFAULT_MAX_EVENTS_PER_INSTANT",
    "StallDiagnostics",
    "Watchdog",
    "stall_diagnostics",
]

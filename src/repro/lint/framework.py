"""The rule framework shared by the detlint, semlint and timerlint passes.

A :class:`Rule` inspects one file's AST through a :class:`FileContext`
(parsed tree with parent links, import alias map, module name, config,
lazily computed effect and timer-handle analyses) and yields
:class:`~repro.lint.findings.Finding` rows. Rules register themselves
into a global catalogue via :func:`register`; the id prefix (``DET`` /
``SEM`` / ``TIM`` / ``PERF``) assigns each rule to an analysis pass.
Suppression filtering happens in the runner, not here.

With four passes sharing one registry, a silent id collision would make
a rule unreachable, so :func:`register` validates the id format and
raises at import time when two rule classes claim the same id.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Type

from repro.lint.config import LintConfig
from repro.lint.effects import EffectAnalysis, analyze_effects
from repro.lint.findings import SEVERITIES, Finding

if TYPE_CHECKING:
    from repro.lint.callgraph import ProjectGraph
    from repro.lint.perf import PerfAnalysis
    from repro.lint.timers import TimerAnalysis

_PARENT_ATTR = "_detlint_parent"


# ----------------------------------------------------------------------
# file context
# ----------------------------------------------------------------------


@dataclass
class FileContext:
    """Everything a rule may look at while checking one file."""

    path: str
    tree: ast.AST
    config: LintConfig
    #: Dotted module name (``repro.sim.engine``) when derivable, else None.
    module: Optional[str] = None
    #: Local name -> fully qualified name, built from import statements.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Cross-file project view (call graph + hot set) when the runner
    #: linted a whole tree; None for single-file invocations, in which
    #: case the perf pass builds a one-file project on the fly.
    project: Optional["ProjectGraph"] = None
    _effects: Optional[EffectAnalysis] = field(default=None, repr=False)
    _timers: Optional["TimerAnalysis"] = field(default=None, repr=False)
    _perf: Optional["PerfAnalysis"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._link_parents()
        self._collect_aliases()

    def _link_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, _PARENT_ATTR, node)

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, _PARENT_ATTR, None)

    def effect_analysis(self) -> EffectAnalysis:
        """Per-function effect classification of this file, computed on
        first use and shared by every rule that needs it."""
        if self._effects is None:
            self._effects = analyze_effects(self.tree)
        return self._effects

    def timer_analysis(self) -> "TimerAnalysis":
        """Timer-handle abstract interpretation of this file, computed on
        first use and shared by the TIM001..TIM003 rules."""
        if self._timers is None:
            # Local import: repro.lint.timers subclasses Rule from this
            # module, so a top-level import would be circular.
            from repro.lint.timers import analyze_timers

            self._timers = analyze_timers(self)
        return self._timers

    def perf_analysis(self) -> "PerfAnalysis":
        """Hot-set-annotated function scopes of this file, computed on
        first use and shared by the PERF001..PERF010 rules."""
        if self._perf is None:
            # Local import: repro.lint.perf subclasses Rule from this
            # module, so a top-level import would be circular.
            from repro.lint.perf import PerfAnalysis

            self._perf = PerfAnalysis(self)
        return self._perf

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted name, expanding
        the leading segment through the file's import aliases."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        end_line = getattr(node, "end_lineno", None) or line
        # A finding anchored to a whole def/class must not let directives
        # deep inside the body silence it; cap the suppression window at
        # the statement header (decorator lines are handled separately by
        # the runner).
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.body:
                end_line = max(line, node.body[0].lineno - 1)
        return Finding(
            rule_id=rule.id,
            message=message,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            end_line=end_line,
            severity=severity if severity is not None else rule.severity,
        )


# ----------------------------------------------------------------------
# rule framework
# ----------------------------------------------------------------------


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`, a
    generator over findings for one file. Registration happens through
    the :func:`register` decorator so the catalogue is the single source
    of truth for ``--list-rules`` and the documentation gate.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: ``error`` (default) or ``warning``; drives the ``--fail-on`` gate.
    severity: str = "error"

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}

#: Pass prefix (three or four letters) + three-digit ordinal, e.g.
#: ``TIM004`` or ``PERF002``.
_RULE_ID_FORMAT = re.compile(r"^[A-Z]{3,4}\d{3}$")


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalogue.

    Raises :class:`ValueError` at import time for a missing or malformed
    id, an unknown severity, or an id another rule class already claimed
    (within or across passes) — a collision would silently shadow one of
    the two rules in ``--select``/``--ignore`` and the documentation gate.
    """
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if not _RULE_ID_FORMAT.match(rule_class.id):
        raise ValueError(
            f"rule {rule_class.__name__} id {rule_class.id!r} does not match "
            "the PREFIXnnn format (e.g. DET001, SEM003, TIM010, PERF004)"
        )
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule_class.__name__} severity {rule_class.severity!r} "
            f"is not one of {SEVERITIES}"
        )
    existing = _REGISTRY.get(rule_class.id)
    if existing is not None:
        raise ValueError(
            f"duplicate rule id {rule_class.id}: {rule_class.__name__} "
            f"collides with already-registered {existing.__name__}"
        )
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def registry() -> Dict[str, Type[Rule]]:
    """The live rule catalogue (id -> class), for introspection."""
    return dict(_REGISTRY)


def all_rule_ids() -> FrozenSet[str]:
    return frozenset(_REGISTRY)


def iter_rules(config: Optional[LintConfig] = None) -> List[Rule]:
    """Instantiate the enabled rules, sorted by id."""
    rules: List[Rule] = []
    for rule_id in sorted(_REGISTRY):
        if config is None or config.rule_enabled(rule_id):
            rules.append(_REGISTRY[rule_id]())
    return rules


def iter_calls(context: FileContext) -> Iterator[ast.Call]:
    """All call expressions of the file, in tree order."""
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            yield node

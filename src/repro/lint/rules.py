"""The detlint (determinism) rule catalogue.

Every rule subclasses :class:`~repro.lint.framework.Rule` and inspects
one file's AST through a :class:`~repro.lint.framework.FileContext`.
The protocol-semantics catalogue (SEM001..) lives in
:mod:`repro.lint.semantics`; importing this module pulls both in, so
``RULE_IDS`` below always spells the full catalogue.

The determinism catalogue (see ``docs/STATIC_ANALYSIS.md`` for rationale
and examples):

========  ==========================================================
DET001    wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002    module-level ``random.*`` calls / literal-seeded ``Random``
DET003    iteration over sets (unordered, PYTHONHASHSEED-dependent)
DET004    ``hash()``/``id()`` as a sort key or mapping key
DET005    ``==``/``!=`` on simulated-time floats
DET006    re-entrant ``Engine.run`` from an event callback (closure)
DET007    environment/filesystem access inside protected packages
DET008    mutable default arguments in public simulator APIs
DET009    unsorted filesystem iteration (``os.listdir``, ``glob``, ...)
DET010    process fan-out outside the deterministic sweep executor
========  ==========================================================
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.effects import TIME_NAMES
from repro.lint.findings import Finding
from repro.lint.framework import (
    FileContext,
    Rule,
    all_rule_ids,
    iter_calls,
    iter_rules,
    register,
)

__all__ = [
    "RULE_IDS",
    "FileContext",
    "Rule",
    "all_rule_ids",
    "iter_rules",
    "register",
]


# ----------------------------------------------------------------------
# DET001 — wall-clock reads
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """Simulated time must come from ``Engine.now``, never the host clock."""

    id = "DET001"
    title = "wall-clock read"
    rationale = (
        "Host-clock reads make runs irreproducible; all timing must come "
        "from the simulation engine's clock."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            name = context.qualified_name(call.func)
            if name in _WALL_CLOCK_CALLS:
                yield context.finding(
                    self, call, f"wall-clock call {name}() — use Engine.now instead"
                )


# ----------------------------------------------------------------------
# DET002 — global random state
# ----------------------------------------------------------------------

_MODULE_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register
class GlobalRandomRule(Rule):
    """Randomness must flow through named ``RngRegistry`` streams."""

    id = "DET002"
    title = "global/aliased random stream"
    rationale = (
        "Module-level random.* calls share hidden global state, and "
        "literal-seeded random.Random(N) fallbacks silently alias streams "
        "across call sites; derive a named stream from RngRegistry or "
        "accept an injected random.Random."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            name = context.qualified_name(call.func)
            if name is None or not name.startswith("random."):
                continue
            func = name[len("random.") :]
            if func in _MODULE_RANDOM_FUNCS:
                yield context.finding(
                    self,
                    call,
                    f"module-level {name}() uses the shared global RNG — "
                    "use a named RngRegistry stream",
                )
            elif func == "Random" and self._literal_seeded(call):
                yield context.finding(
                    self,
                    call,
                    "random.Random with a hard-coded literal seed aliases "
                    "streams across call sites — derive a named RngRegistry "
                    "stream instead",
                )

    @staticmethod
    def _literal_seeded(call: ast.Call) -> bool:
        if call.keywords:
            return False
        if not call.args:
            return True  # unseeded: seeds from the OS entropy pool
        return len(call.args) == 1 and isinstance(call.args[0], ast.Constant)


# ----------------------------------------------------------------------
# DET003 — iteration over sets
# ----------------------------------------------------------------------


@register
class SetIterationRule(Rule):
    """Iterating a set yields PYTHONHASHSEED-dependent order."""

    id = "DET003"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation; anything that feeds scheduling, digests, or "
        "exported output must iterate a sorted() or otherwise ordered view."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iters.append(node.iter)
            for target in iters:
                if self._is_set_expression(context, target):
                    yield context.finding(
                        self,
                        target,
                        "iteration over a set has nondeterministic order — "
                        "wrap it in sorted()",
                    )

    @staticmethod
    def _is_set_expression(context: FileContext, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return context.qualified_name(node.func) in ("set", "frozenset")
        return False


# ----------------------------------------------------------------------
# DET004 — hash()/id() as ordering keys
# ----------------------------------------------------------------------

_ORDERING_FUNCS = frozenset({"sorted", "min", "max", "sort"})


@register
class HashOrderingRule(Rule):
    """``hash()``/``id()`` values vary across processes and runs."""

    id = "DET004"
    title = "hash()/id() used as an ordering or mapping key"
    rationale = (
        "hash() depends on PYTHONHASHSEED and id() on allocation order; "
        "using either to order or key output makes it run-dependent."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_sort_key(context, node)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and self._uses_hash_or_id(key):
                        yield context.finding(
                            self, key, "hash()/id() used as a dict key"
                        )
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                if self._uses_hash_or_id(node.slice):
                    yield context.finding(
                        self, node, "hash()/id() used as a mapping key"
                    )

    def _check_sort_key(
        self, context: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        func_name = context.qualified_name(call.func)
        if isinstance(call.func, ast.Attribute):
            func_name = call.func.attr  # method calls like list.sort
        if func_name not in _ORDERING_FUNCS:
            return
        for keyword in call.keywords:
            if keyword.arg == "key" and self._uses_hash_or_id(keyword.value):
                yield context.finding(
                    self,
                    keyword.value,
                    f"hash()/id() as the sort key of {func_name}()",
                )

    @staticmethod
    def _uses_hash_or_id(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in ("hash", "id"):
            return True
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("hash", "id")
            ):
                return True
        return False


# ----------------------------------------------------------------------
# DET005 — float equality on simulated time
# ----------------------------------------------------------------------


@register
class TimeEqualityRule(Rule):
    """Exact equality on simulated-time floats is fragile."""

    id = "DET005"
    title = "==/!= comparison of simulated-time floats"
    rationale = (
        "Simulated instants are floats accumulated through arithmetic; "
        "exact equality silently depends on rounding and breaks under "
        "refactors — compare with a tolerance or restructure."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_nan_check(left, right):
                    continue
                if self._is_exempt_operand(left) or self._is_exempt_operand(right):
                    continue
                if self._is_time_operand(left) or self._is_time_operand(right):
                    yield context.finding(
                        self,
                        node,
                        "exact ==/!= on a simulated-time float — use a "
                        "tolerance (abs(a - b) <= eps)",
                    )
                    break

    @staticmethod
    def _is_time_operand(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in TIME_NAMES
        if isinstance(node, ast.Name):
            return node.id in TIME_NAMES
        return False

    @staticmethod
    def _is_nan_check(left: ast.expr, right: ast.expr) -> bool:
        """``x != x`` is the standard NaN test, not an ordering hazard."""
        return ast.dump(left) == ast.dump(right)

    @staticmethod
    def _is_exempt_operand(node: ast.expr) -> bool:
        """Comparisons against None or strings are identity/tag checks."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, str)
        )


# ----------------------------------------------------------------------
# DET006 — re-entrant engine runs from callbacks
# ----------------------------------------------------------------------

_ENGINE_RUN_METHODS = frozenset({"run", "run_until_idle", "step"})
_ENGINE_RECEIVERS = frozenset({"engine", "_engine"})


@register
class ReentrantRunRule(Rule):
    """Event callbacks must not drive the engine that is driving them."""

    id = "DET006"
    title = "re-entrant Engine.run from an event callback"
    rationale = (
        "A callback calling Engine.run/step re-enters the dispatch loop; "
        "the engine raises at runtime, but the hazard should be caught "
        "before a simulation ever executes."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _ENGINE_RUN_METHODS:
                continue
            if not self._is_engine_receiver(func.value):
                continue
            if self._inside_nested_function(context, call):
                yield context.finding(
                    self,
                    call,
                    f"engine.{func.attr}() inside a closure/event callback "
                    "re-enters the dispatch loop",
                )

    @staticmethod
    def _is_engine_receiver(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _ENGINE_RECEIVERS
        if isinstance(node, ast.Attribute):  # self.engine / self._engine
            return node.attr in _ENGINE_RECEIVERS
        return False

    @staticmethod
    def _inside_nested_function(context: FileContext, node: ast.AST) -> bool:
        """True inside a lambda or a def nested in another def — the shapes
        that get scheduled as event callbacks. Plain methods and
        module-level functions drive the engine legitimately."""
        seen_function = False
        current: Optional[ast.AST] = context.parent(node)
        while current is not None:
            if isinstance(current, ast.Lambda):
                return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if seen_function:
                    return True
                seen_function = True
            current = context.parent(current)
        return False


# ----------------------------------------------------------------------
# DET007 — ambient environment access in protected packages
# ----------------------------------------------------------------------

_ENV_CALLS = frozenset(
    {"os.getenv", "os.putenv", "os.system", "os.popen", "os.listdir", "io.open"}
)
_FS_METHODS = frozenset({"read_text", "read_bytes", "write_text", "write_bytes"})


@register
class AmbientEnvironmentRule(Rule):
    """The deterministic core must not read ambient process state."""

    id = "DET007"
    title = "environment/filesystem access in the deterministic core"
    rationale = (
        "repro.core / repro.sim / repro.bgp results must be a pure "
        "function of (config, seed); environment variables and file "
        "contents are inputs the seed does not capture."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.config.is_protected_module(context.module):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                if context.qualified_name(node) == "os.environ":
                    yield context.finding(
                        self, node, "os.environ read in the deterministic core"
                    )
            elif isinstance(node, ast.Call):
                name = context.qualified_name(node.func)
                if name in _ENV_CALLS or name == "open":
                    yield context.finding(
                        self,
                        node,
                        f"{name}() in the deterministic core — inject the "
                        "data through configuration instead",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_METHODS
                ):
                    yield context.finding(
                        self,
                        node,
                        f".{node.func.attr}() filesystem access in the "
                        "deterministic core",
                    )


# ----------------------------------------------------------------------
# DET008 — mutable defaults in public APIs
# ----------------------------------------------------------------------


@register
class MutableDefaultRule(Rule):
    """Mutable defaults leak state between otherwise independent runs."""

    id = "DET008"
    title = "mutable default argument in a public API"
    rationale = (
        "A list/dict/set default is created once and shared by every "
        "call, so one simulation's state bleeds into the next; default "
        "to None and construct inside the function."
    )

    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield context.finding(
                        self,
                        default,
                        f"mutable default argument in public API "
                        f"{node.name}() — use None and construct inside",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CONSTRUCTORS
        return False


# ----------------------------------------------------------------------
# DET009 — unsorted filesystem iteration
# ----------------------------------------------------------------------

#: Fully qualified calls whose result order is filesystem-dependent.
_FS_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
#: Path-object methods with filesystem-dependent order. ``glob`` is
#: matched as a method (``some_path.glob(...)``) — the module-level
#: ``glob.glob`` resolves through the alias map above instead.
_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


@register
class UnsortedFsIterationRule(Rule):
    """Directory listing order is an OS detail, not a guarantee."""

    id = "DET009"
    title = "unsorted filesystem iteration"
    rationale = (
        "os.listdir()/glob.glob()/Path.iterdir() return entries in "
        "filesystem order, which differs across platforms and even "
        "across runs on some filesystems; wrap the listing in sorted() "
        "before iterating or emitting it."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            name = self._listing_name(context, call)
            if name is None:
                continue
            if self._inside_sorted(context, call):
                continue
            yield context.finding(
                self,
                call,
                f"{name}() yields entries in filesystem order — wrap the "
                "listing in sorted()",
            )

    @staticmethod
    def _listing_name(context: FileContext, call: ast.Call) -> Optional[str]:
        qualified = context.qualified_name(call.func)
        if qualified in _FS_LISTING_CALLS:
            return qualified
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_LISTING_METHODS
            and qualified not in _FS_LISTING_CALLS
            and not (qualified or "").startswith("glob.")
        ):
            return f".{call.func.attr}"
        return None

    @staticmethod
    def _inside_sorted(context: FileContext, node: ast.AST) -> bool:
        """True when the listing feeds a ``sorted(...)`` call, possibly
        through a comprehension or generator expression."""
        current: Optional[ast.AST] = context.parent(node)
        while current is not None:
            if isinstance(current, ast.Call):
                func = current.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    return True
                current = context.parent(current)
                continue
            if isinstance(
                current,
                (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.comprehension),
            ):
                current = context.parent(current)
                continue
            return False
        return False


# ----------------------------------------------------------------------
# DET010 — process fan-out outside the sweep executor
# ----------------------------------------------------------------------

#: Top-level packages whose import anywhere outside the executor module
#: signals ad-hoc process fan-out.
_PARALLELISM_PACKAGES = frozenset({"multiprocessing", "concurrent"})
#: Process-creating calls caught even without an offending import
#: (``os`` is imported for many legitimate reasons).
_PROCESS_SPAWN_CALLS = frozenset({"os.fork", "os.forkpty"})


@register
class AdHocParallelismRule(Rule):
    """All process fan-out must go through the deterministic executor."""

    id = "DET010"
    title = "process fan-out outside the sweep executor"
    rationale = (
        "Worker pools built outside repro.experiments.parallel bypass "
        "the spawn-safe, seed-derived, order-preserving executor that "
        "guarantees parallel sweeps stay digest-identical to sequential "
        "ones; forked workers inherit RNG streams and module caches, and "
        "ad-hoc result collection depends on completion order."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.config.is_executor_module(context.module):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    package = alias.name.split(".")[0]
                    if package in _PARALLELISM_PACKAGES:
                        yield context.finding(
                            self,
                            node,
                            f"import of {alias.name} outside the sweep "
                            "executor — route fan-out through "
                            "repro.experiments.parallel",
                        )
            elif isinstance(node, ast.ImportFrom):
                package = (node.module or "").split(".")[0]
                if node.level == 0 and package in _PARALLELISM_PACKAGES:
                    yield context.finding(
                        self,
                        node,
                        f"import from {node.module} outside the sweep "
                        "executor — route fan-out through "
                        "repro.experiments.parallel",
                    )
        for call in iter_calls(context):
            qualified = context.qualified_name(call.func)
            if qualified in _PROCESS_SPAWN_CALLS:
                yield context.finding(
                    self,
                    call,
                    f"{qualified}() outside the sweep executor — route "
                    "fan-out through repro.experiments.parallel",
                )


# ----------------------------------------------------------------------
# catalogue
# ----------------------------------------------------------------------

# Importing the semantics, timers and perf modules registers the SEM,
# TIM and PERF passes; they live in their own files but share this
# registry, so RULE_IDS spells all four catalogues.
import repro.lint.perf  # noqa: E402,F401  (registers PERF rules)
import repro.lint.semantics  # noqa: E402,F401  (registers SEM rules)
import repro.lint.timers  # noqa: E402,F401  (registers TIM rules)

RULE_IDS: Tuple[str, ...] = tuple(sorted(all_rule_ids()))

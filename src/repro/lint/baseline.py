"""Baseline record/compare for the lint passes.

A baseline file freezes the currently known findings so a rule can be
introduced (or tightened) without forcing every legacy hit to be fixed
in the same change. Findings are identified by
:attr:`~repro.lint.findings.Finding.baseline_key` —
``path::rule::message``, deliberately line-independent so unrelated
edits that shift code do not invalidate the baseline — with a count per
key, so *new* occurrences of an already-baselined pattern still fail.

Policy (see ``docs/STATIC_ANALYSIS.md``): a baseline is a debt ledger,
not a licence — entries are expected to shrink over time, and
``--update-baseline`` must never be run to absorb a regression.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, LintReport

#: Schema marker so future format changes can migrate cleanly.
_BASELINE_VERSION = 1


def baseline_counts(findings: List[Finding]) -> Dict[str, int]:
    """Occurrence count per baseline key, sorted by key."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    return dict(sorted(counts.items()))


def render_baseline(report: LintReport) -> str:
    """Serialise the report's active findings as a baseline document."""
    document = {
        "version": _BASELINE_VERSION,
        "findings": baseline_counts(report.findings),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def parse_baseline(text: str) -> Dict[str, int]:
    """Parse a baseline document into its key -> count mapping."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline file is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or "findings" not in document:
        raise ConfigurationError(
            "baseline file must be an object with a 'findings' mapping"
        )
    version = document.get("version")
    if version != _BASELINE_VERSION:
        raise ConfigurationError(
            f"unsupported baseline version {version!r} "
            f"(expected {_BASELINE_VERSION})"
        )
    findings = document["findings"]
    if not isinstance(findings, dict):
        raise ConfigurationError("baseline 'findings' must be a mapping")
    counts: Dict[str, int] = {}
    for key, count in findings.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise ConfigurationError(
                f"baseline entry {key!r}: {count!r} is not a positive count"
            )
        counts[key] = count
    return counts


def apply_baseline(report: LintReport, counts: Dict[str, int]) -> LintReport:
    """Demote baselined findings; return the rewritten report.

    The first ``counts[key]`` findings sharing a baseline key are moved
    to ``report.baselined`` (they no longer fail the run); any excess
    stays active, so introducing *more* of a baselined pattern is still
    caught. Suppression lists and file counts carry over unchanged.
    """
    budget = dict(counts)
    active: List[Finding] = []
    baselined: List[Finding] = list(report.baselined)
    for finding in report.findings:
        key = finding.baseline_key
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(
                Finding(
                    rule_id=finding.rule_id,
                    message=finding.message,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    end_line=finding.end_line,
                    severity=finding.severity,
                    baselined=True,
                )
            )
        else:
            active.append(finding)
    return LintReport(
        findings=active,
        suppressed=report.suppressed,
        baselined=baselined,
        files_checked=report.files_checked,
        parse_errors=report.parse_errors,
    )


__all__ = [
    "apply_baseline",
    "baseline_counts",
    "parse_baseline",
    "render_baseline",
]

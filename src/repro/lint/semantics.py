"""The semlint (protocol-semantics) rule catalogue.

Where detlint polices *determinism* hazards, these rules police the
semantic contracts of the RFD/BGP layers themselves — the invariants the
runtime oracle (:mod:`repro.analysis.invariants`) checks dynamically,
caught here before a simulation ever runs:

========  ==========================================================
SEM001    decision-process functions must be effect-free
SEM002    timer scheduling only through Engine/Timer APIs
SEM003    penalty arithmetic only with named ``core.params`` constants
SEM004    no ``==``/``!=`` on time-valued expressions
SEM005    Loc-RIB mutation without metrics/stats notification
SEM006    RCN sequence numbers compared with equality, not ordering
SEM007    suppression state flipped outside the damping manager
========  ==========================================================

SEM001 rides on the effect-inference engine in :mod:`repro.lint.effects`
(see ``docs/STATIC_ANALYSIS.md`` for the model); the rest are targeted
syntactic checks scoped by the module knobs on
:class:`~repro.lint.config.LintConfig`.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.effects import TIME_NAMES
from repro.lint.findings import Finding
from repro.lint.framework import FileContext, Rule, iter_calls, register

__all__ = [
    "DecisionPurityRule",
    "HandRolledTimerRule",
    "MagicPenaltyConstantRule",
    "TimeExpressionEqualityRule",
    "UnobservedRibMutationRule",
    "SequenceEqualityRule",
    "ForeignSuppressionWriteRule",
]


def _collect_defs(tree: ast.AST) -> Dict[str, ast.AST]:
    """Qualname -> def node, mirroring the effect engine's naming."""
    defs: Dict[str, ast.AST] = {}

    def visit(node: ast.AST, scope: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, scope + (child.name,))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(scope + (child.name,))
                defs[qualname] = child
                visit(child, scope + (child.name,))
            else:
                visit(child, scope)

    visit(tree, ())
    return defs


# ----------------------------------------------------------------------
# SEM001 — decision process must be effect-free
# ----------------------------------------------------------------------


@register
class DecisionPurityRule(Rule):
    """The BGP decision process is a pure total order over candidates."""

    id = "SEM001"
    title = "effectful function in a decision-process module"
    rationale = (
        "The decision process must be a pure function of its candidate "
        "set: scheduling timers, reading the clock, mutating RIBs, or "
        "sending updates from inside it makes best-path selection "
        "history-dependent and breaks the decision-consistency invariant "
        "the runtime oracle checks."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.config.is_decision_module(context.module):
            return
        analysis = context.effect_analysis()
        defs = _collect_defs(context.tree)
        for effects in analysis.iter_functions():
            if effects.is_pure:
                continue
            node = defs.get(effects.qualname)
            if node is None:
                continue
            yield context.finding(
                self,
                node,
                f"decision-process function {effects.qualname}() must be "
                f"effect-free, but is classified {effects.classification}",
            )


# ----------------------------------------------------------------------
# SEM002 — timer scheduling only through Engine/Timer APIs
# ----------------------------------------------------------------------

#: Attribute slots that belong to the engine/timer substrate; a Store to
#: one of these outside ``repro.sim`` is hand-rolled timer bookkeeping.
_TIMER_INTERNAL_SLOTS: FrozenSet[str] = frozenset(
    {"_queue", "_expiry", "expiry", "_now"}
)


@register
class HandRolledTimerRule(Rule):
    """Future work is scheduled through the engine, never by hand."""

    id = "SEM002"
    title = "hand-rolled timer bookkeeping outside the timer substrate"
    rationale = (
        "Only repro.sim may touch the event heap, expiry slots, or the "
        "simulation clock directly; everyone else schedules through "
        "Engine.schedule/schedule_at/call_soon or the Timer API so that "
        "cancellation, tie detection, and determinism auditing see every "
        "event."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.config.is_timer_module(context.module):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = context.qualified_name(node.func)
                if name is not None and name.startswith("heapq."):
                    yield context.finding(
                        self,
                        node,
                        f"{name}() manipulates an event heap by hand — "
                        "schedule through the Engine/Timer APIs",
                    )
                elif name is not None and name.split(".")[-1] == "ScheduledEvent":
                    yield context.finding(
                        self,
                        node,
                        "direct ScheduledEvent construction bypasses "
                        "Engine.schedule_at and its sequence numbering",
                    )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                if node.attr in _TIMER_INTERNAL_SLOTS:
                    yield context.finding(
                        self,
                        node,
                        f"write to .{node.attr} arms/advances a timer by "
                        "hand — use the Engine/Timer APIs",
                    )


# ----------------------------------------------------------------------
# SEM003 — penalty arithmetic uses named constants
# ----------------------------------------------------------------------

#: Names that carry RFC 2439 figure-of-merit quantities.
_PENALTY_TOKENS: FrozenSet[str] = frozenset(
    {
        "penalty",
        "figure_of_merit",
        "cutoff",
        "cutoff_threshold",
        "suppress_threshold",
        "reuse_threshold",
        "half_life",
        "max_penalty",
        "penalty_ceiling",
        "ceiling",
    }
)

#: Structural values that appear in any arithmetic (identity, doubling
#: for half-life decay, sign flips) — not damping parameters.
_EXEMPT_VALUES: FrozenSet[float] = frozenset({0.0, 1.0, 2.0, -1.0, 0.5})


def _is_penalty_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _PENALTY_TOKENS
    if isinstance(node, ast.Attribute):
        return node.attr in _PENALTY_TOKENS
    return False


def _magic_number(node: ast.expr) -> Optional[float]:
    """The numeric value of a non-exempt literal constant, else None."""
    inner = node
    negate = False
    if isinstance(inner, ast.UnaryOp) and isinstance(inner.op, ast.USub):
        negate = True
        inner = inner.operand
    if not isinstance(inner, ast.Constant):
        return None
    value = inner.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    number = -float(value) if negate else float(value)
    if number in _EXEMPT_VALUES:
        return None
    return number


@register
class MagicPenaltyConstantRule(Rule):
    """Damping parameters live in ``core.params``, not inline literals."""

    id = "SEM003"
    title = "magic numeric literal in penalty arithmetic"
    rationale = (
        "Cutoff, reuse, half-life, and ceiling values are vendor-profile "
        "parameters (core.params.DampingParams); a literal next to a "
        "penalty quantity silently forks the profile and invalidates "
        "sweeps that think they control it."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.config.is_penalty_module(context.module):
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp):
                pairs = [(node.left, node.right), (node.right, node.left)]
                for operand, other in pairs:
                    number = _magic_number(other)
                    if number is not None and _is_penalty_operand(operand):
                        yield context.finding(
                            self,
                            node,
                            f"literal {number:g} combined with a penalty "
                            "quantity — name it in core.params instead",
                        )
                        break
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    flagged = False
                    for operand, other in ((left, right), (right, left)):
                        number = _magic_number(other)
                        if number is not None and _is_penalty_operand(operand):
                            yield context.finding(
                                self,
                                node,
                                f"penalty quantity compared against literal "
                                f"{number:g} — use a core.params threshold",
                            )
                            flagged = True
                            break
                    if flagged:
                        break


# ----------------------------------------------------------------------
# SEM004 — no equality on time-valued expressions
# ----------------------------------------------------------------------

#: APIs that return simulated instants or durations.
_TIME_RETURNING_CALLS: FrozenSet[str] = frozenset(
    {
        "peek_next_time",
        "reuse_timer_expiry",
        "reuse_delay",
        "time_to_reach",
        "time_until_reuse",
    }
)


def _is_time_expression(node: ast.expr) -> bool:
    """True for *computed* time values: arithmetic over a time name, or a
    call into a time-returning API. Bare names are DET005's territory."""
    if isinstance(node, ast.BinOp):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in TIME_NAMES:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in TIME_NAMES:
                return True
        return False
    if isinstance(node, ast.Call):
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _TIME_RETURNING_CALLS
    return False


@register
class TimeExpressionEqualityRule(Rule):
    """Computed instants must be compared with a tolerance or ordering."""

    id = "SEM004"
    title = "==/!= on a computed time expression"
    rationale = (
        "Derived instants (now + delay, decay horizons, reuse-timer "
        "expiries) accumulate float error; exact equality encodes a "
        "coincidence, not a contract — compare with a tolerance or an "
        "ordering. Complements DET005, which covers bare time operands."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_time_expression(left) or _is_time_expression(right):
                    yield context.finding(
                        self,
                        node,
                        "exact ==/!= on a computed time expression — use a "
                        "tolerance or an ordering comparison",
                    )
                    break


# ----------------------------------------------------------------------
# SEM005 — Loc-RIB mutations must notify metrics
# ----------------------------------------------------------------------

#: Receivers that denote the local RIB.
_LOC_RIB_RECEIVERS: FrozenSet[str] = frozenset({"loc_rib", "_loc_rib"})

#: Names whose presence in the same function witnesses a notification
#: (router stats, the metrics collector, or the best-change timestamp
#: the collector reads).
_NOTIFY_WITNESSES: FrozenSet[str] = frozenset(
    {"stats", "metrics", "collector", "observer", "last_best_change"}
)


@register
class UnobservedRibMutationRule(Rule):
    """Every Loc-RIB change must be visible to the metrics layer."""

    id = "SEM005"
    title = "Loc-RIB mutation without a metrics/stats notification"
    rationale = (
        "The convergence metrics and the drain invariant are computed "
        "from collector observations; a handler that rewrites the "
        "Loc-RIB without touching its stats/collector makes the run "
        "look quieter than it was."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for qualname, node in sorted(_collect_defs(context.tree).items()):
            del qualname
            yield from self._check_function(context, node)

    def _check_function(
        self, context: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        mutations: List[ast.Call] = []
        notified = False
        for sub in self._walk_own_body(func):
            if isinstance(sub, ast.Call) and self._is_loc_rib_mutation(sub):
                mutations.append(sub)
            elif isinstance(sub, ast.Attribute) and sub.attr in _NOTIFY_WITNESSES:
                notified = True
            elif isinstance(sub, ast.Name) and sub.id in _NOTIFY_WITNESSES:
                notified = True
        if notified:
            return
        for call in mutations:
            yield context.finding(
                self,
                call,
                "Loc-RIB mutated without notifying stats/MetricsCollector "
                "in the same handler",
            )

    @staticmethod
    def _walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
        """The function's subtree minus nested named defs, which get their
        own independent check. Lambdas stay included — they are anonymous
        callbacks and belong to whoever defines them."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_loc_rib_mutation(call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != "set_route":
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in _LOC_RIB_RECEIVERS
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in _LOC_RIB_RECEIVERS
        return False


# ----------------------------------------------------------------------
# SEM006 — RCN sequence numbers compared monotonically
# ----------------------------------------------------------------------

#: Names that carry root-cause-notification sequence numbers.
_SEQ_NAMES: FrozenSet[str] = frozenset(
    {"seq", "seq_num", "seqno", "sequence", "last_seq", "highest_seq"}
)


@register
class SequenceEqualityRule(Rule):
    """Staleness is an ordering question, not an equality question."""

    id = "SEM006"
    title = "equality-only comparison of RCN sequence numbers"
    rationale = (
        "Root-cause notifications supersede each other by sequence "
        "order; an ==/!= freshness test treats a *newer* RCN as a "
        "mismatch and reprocesses stale state — compare with >/>= "
        "against the highest sequence seen."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_none(left) or self._is_none(right):
                    continue
                if self._is_seq_operand(left) or self._is_seq_operand(right):
                    yield context.finding(
                        self,
                        node,
                        "RCN sequence compared with ==/!= — staleness must "
                        "be an ordering test (newer means strictly greater)",
                    )
                    break

    @staticmethod
    def _is_seq_operand(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _SEQ_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in _SEQ_NAMES
        return False

    @staticmethod
    def _is_none(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and node.value is None


# ----------------------------------------------------------------------
# SEM007 — suppression state owned by the damping manager
# ----------------------------------------------------------------------


@register
class ForeignSuppressionWriteRule(Rule):
    """Only the damping manager flips routes in and out of suppression."""

    id = "SEM007"
    title = "suppression state written outside the damping manager"
    rationale = (
        "Suppression transitions must stay coupled to penalty decay and "
        "reuse-timer bookkeeping in DampingManager; a direct .suppressed "
        "write elsewhere desynchronises them and breaks the drain "
        "invariant (suppressed entries that no timer will ever release)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.config.is_damping_module(context.module):
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and node.attr == "suppressed"
            ):
                yield context.finding(
                    self,
                    node,
                    ".suppressed written outside the damping manager — "
                    "route suppression state through DampingManager",
                )

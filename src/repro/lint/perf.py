"""The perflint (profile-guided hot-path performance) rule catalogue.

The paper's regime — small per-event costs compounding across timer
interactions at scale — makes allocation and lookup churn on the engine
hot path a first-order correctness-of-scale concern. These rules flag
the hazard *patterns* everywhere but scope their *severity* by a
computed hot set: a :class:`HotSetResolver` loads the committed
``benchmarks/results/profile.json`` (schema v2 with labelled sub-phases),
selects the phases at or above ``hot_threshold`` of total wall time,
maps each to its root functions (:data:`PHASE_ROOTS`), adds every
function registered as an engine/timer callback anywhere in the project,
and closes the set transitively over the cross-file call graph
(:mod:`repro.lint.callgraph`). Findings inside the hot set are
``warning`` (blocking in CI); outside it they downgrade to ``info``.

The catalogue (see ``docs/STATIC_ANALYSIS.md`` for examples):

========  ==========================================================
PERF001   closure/lambda allocated per call on the hot path
PERF002   container display built per hot call / inside a hot loop
PERF003   repeated deep attribute chain in a loop (bind a local)
PERF004   eager string formatting (f-string/format/%) on the hot path
PERF005   module-level default container copied per call
PERF006   non-``__slots__`` class instantiated on the hot path
PERF007   list growth via ``+= [...]`` / ``x = x + [...]``
PERF008   membership test against ``.keys()``/``.items()``/``list(d)``
PERF009   logging call formatting its message eagerly
PERF010   constant tuple/set rebuilt per call (hoist to module level)
========  ==========================================================
"""

from __future__ import annotations

import ast
import os
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.lint.callgraph import FileSummary, ProjectGraph, summarize_file
from repro.lint.config import DEFAULT_HOT_PROFILE, LintConfig
from repro.lint.findings import Finding
from repro.lint.framework import FileContext, Rule, register

#: Root functions of each profiled sub-phase (schema v2 labels). The hot
#: set is the transitive callee closure of the roots of every hot phase.
PHASE_ROOTS: Dict[str, Tuple[str, ...]] = {
    "decision_process": (
        "repro.bgp.decision.preference_key",
        "repro.bgp.decision.select_best",
        "repro.bgp.decision.rank_candidates",
        "repro.bgp.router.BgpRouter.handle_message",
        "repro.bgp.router.BgpRouter.process_update",
        "repro.bgp.router.BgpRouter._reselect",
        "repro.bgp.router.BgpRouter._candidates",
    ),
    "penalty_decay": (
        "repro.core.damping.DampingManager.record_update",
        "repro.core.damping.DampingManager._reuse_fired",
        "repro.core.penalty.PenaltyState.value_at",
        "repro.core.penalty.PenaltyState.charge",
        "repro.core.penalty.PenaltyState.add",
        "repro.core.penalty.PenaltyState.touch",
        "repro.core.params.DampingParams.decay",
        "repro.core.params.DampingParams.penalty_increment",
        "repro.core.params.DampingParams.reuse_delay",
        "repro.core.params.DampingParams.time_to_reach",
    ),
    "rib_scan": (
        "repro.bgp.rib.AdjRibIn.apply",
        "repro.bgp.rib.AdjRibIn.classify",
        "repro.bgp.rib.LocRib.set_route",
        "repro.bgp.router.BgpRouter._sync_peer",
        "repro.bgp.router.BgpRouter._export",
    ),
    "mrai_flush": (
        "repro.bgp.mrai.MraiLimiter.may_send_now",
        "repro.bgp.mrai.MraiLimiter.note_sent",
        "repro.bgp.mrai.MraiLimiter.defer",
        "repro.bgp.mrai.MraiLimiter._expired",
        "repro.bgp.router.BgpRouter._mrai_flush",
        "repro.bgp.router.BgpRouter._send_announcement",
        "repro.bgp.router.BgpRouter._send_withdrawal",
    ),
    "timer_dispatch": (
        "repro.sim.engine.Engine.step",
        "repro.sim.engine.Engine.run",
        "repro.sim.engine.Engine.run_until_idle",
        "repro.sim.engine.Engine._execute",
        "repro.sim.engine.Engine.schedule",
        "repro.sim.engine.Engine.schedule_at",
        "repro.sim.engine.call_soon",
        "repro.sim.timers.Timer.start",
        "repro.sim.timers.Timer.reschedule",
        "repro.sim.timers.Timer.restart_if_idle",
        "repro.sim.timers.Timer.cancel",
        "repro.sim.timers.Timer._arm",
        "repro.sim.timers.Timer._fire",
    ),
}

#: Profile labels that do not map to protocol hot paths (setup/teardown).
_COLD_PHASE_LABELS: FrozenSet[str] = frozenset(
    {"build", "analysis", "workload"}
)

#: Schema-v1 profiles label everything ``episode``; the shim treats that
#: as "all sub-phases hot".
_V1_EPISODE_LABELS: FrozenSet[str] = frozenset({"episode", "warm_up"})


class HotSetResolver:
    """Computes the hot function set from a profile and a project graph."""

    def __init__(
        self,
        project: ProjectGraph,
        phase_fractions: Optional[Mapping[str, float]] = None,
        threshold: float = 0.05,
    ) -> None:
        self._project = project
        self._fractions = dict(phase_fractions) if phase_fractions else None
        self._threshold = threshold
        self._hot: Optional[FrozenSet[str]] = None

    @staticmethod
    def from_config(config: LintConfig, project: ProjectGraph) -> "HotSetResolver":
        """Load the profile named by the config (or the committed
        default); with no profile available every phase counts as hot,
        which errs toward stricter linting rather than silent downgrades."""
        path = config.hot_profile or DEFAULT_HOT_PROFILE
        fractions: Optional[Mapping[str, float]] = None
        if os.path.isfile(path):
            try:
                from repro.trace.profile import load_profile, phase_fractions

                fractions = phase_fractions(load_profile(path))
            except (OSError, ValueError):
                fractions = None
        return HotSetResolver(project, fractions, config.hot_threshold)

    def hot_phases(self) -> List[str]:
        """Profiled sub-phase labels at or above the threshold."""
        if self._fractions is None:
            return sorted(PHASE_ROOTS)
        hot: Set[str] = set()
        for label, fraction in self._fractions.items():
            if fraction < self._threshold:
                continue
            if label in _V1_EPISODE_LABELS:
                hot.update(PHASE_ROOTS)
            elif label in PHASE_ROOTS:
                hot.add(label)
        return sorted(hot)

    def roots(self) -> FrozenSet[str]:
        """Hot phase roots present in the graph plus callback roots."""
        roots: Set[str] = set(self._project.callback_roots)
        for label in self.hot_phases():
            for name in PHASE_ROOTS[label]:
                if self._project.has_function(name):
                    roots.add(name)
        return frozenset(roots)

    def hot_set(self) -> FrozenSet[str]:
        if self._hot is None:
            self._hot = self._project.closure(self.roots())
        return self._hot


def resolve_hot_functions(
    config: LintConfig, project: ProjectGraph
) -> FrozenSet[str]:
    """Convenience wrapper used by the runner: profile -> hot closure."""
    return HotSetResolver.from_config(config, project).hot_set()


# ----------------------------------------------------------------------
# per-file analysis shared by the PERF rules
# ----------------------------------------------------------------------


class _FunctionScope:
    __slots__ = ("qualname", "node", "hot", "nodes")

    def __init__(
        self, qualname: str, node: ast.AST, hot: bool, nodes: List[ast.AST]
    ) -> None:
        self.qualname = qualname
        self.node = node
        self.hot = hot
        self.nodes = nodes


def _own_nodes(func: ast.AST) -> List[ast.AST]:
    """The nodes executed by ``func`` itself: its subtree minus the
    bodies of nested defs/lambdas (those are separate scopes). The
    nested ``def``/``lambda`` node itself *is* included — creating it is
    work the enclosing function does per call."""
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))
    return nodes


class PerfAnalysis:
    """Hot-set-annotated function scopes of one file."""

    def __init__(self, context: FileContext) -> None:
        project = context.project
        if project is None:
            summary = summarize_file(context.tree, context.path, context.module)
            project = ProjectGraph([summary])
        hot = getattr(project, "hot_functions", None)
        if hot is None:
            hot = resolve_hot_functions(context.config, project)
        namespace = context.module if context.module is not None else context.path
        self.functions: List[_FunctionScope] = []
        self._class_slots: Dict[str, bool] = {}
        self._module_names: Set[str] = set()

        def visit(node: ast.AST, scope: Tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    self._class_slots[child.name] = any(
                        isinstance(stmt, ast.Assign)
                        and any(
                            isinstance(t, ast.Name) and t.id == "__slots__"
                            for t in stmt.targets
                        )
                        for stmt in child.body
                    )
                    visit(child, scope + (child.name,))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = ".".join(scope + (child.name,))
                    self.functions.append(
                        _FunctionScope(
                            qualname=qualname,
                            node=child,
                            hot=f"{namespace}.{qualname}" in hot,
                            nodes=_own_nodes(child),
                        )
                    )
                    visit(child, scope + (child.name,))
                else:
                    visit(child, scope)

        visit(context.tree, ())
        for stmt in getattr(context.tree, "body", []):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._module_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._module_names.add(stmt.target.id)

    def class_lacks_slots(self, name: str) -> Optional[bool]:
        """True/False for same-file classes, None for unknown names."""
        if name not in self._class_slots:
            return None
        return not self._class_slots[name]

    def is_module_constant(self, name: str) -> bool:
        return name in self._module_names and name.isupper()


def perf_analysis(context: FileContext) -> PerfAnalysis:
    return context.perf_analysis()


def _hot_suffix(scope: _FunctionScope) -> str:
    if scope.hot:
        return f"in hot function '{scope.qualname}'"
    return f"in function '{scope.qualname}' (outside the profiled hot set)"


class PerfRule(Rule):
    """Base: iterate annotated function scopes, severity scoped by heat."""

    severity = "warning"

    def check(self, context: FileContext) -> Iterator[Finding]:
        analysis = perf_analysis(context)
        for scope in analysis.functions:
            for node, message in self.check_scope(scope, analysis, context):
                yield context.finding(
                    self,
                    node,
                    message,
                    severity="warning" if scope.hot else "info",
                )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError


def _loops_in(scope: _FunctionScope) -> List[ast.AST]:
    return [n for n in scope.nodes if isinstance(n, (ast.For, ast.While))]


def _loop_nodes(loop: ast.AST) -> List[ast.AST]:
    """Nodes executed per iteration (nested defs/lambdas excluded)."""
    nodes: List[ast.AST] = []
    stack: List[ast.AST] = []
    for field in ("body", "orelse"):
        stack.extend(getattr(loop, field, []))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))
    return nodes


def _nearest_statement(context: FileContext, node: ast.AST) -> Optional[ast.AST]:
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = context.parent(current)
    return current


# ----------------------------------------------------------------------
# PERF001 — closure/lambda allocation
# ----------------------------------------------------------------------


@register
class HotClosureAllocationRule(PerfRule):
    id = "PERF001"
    title = "closure/lambda allocated per call on the hot path"
    rationale = (
        "Defining a lambda or nested function allocates a fresh code "
        "closure every time the enclosing function runs; on a per-event "
        "callback that cost compounds across millions of events. Bind "
        "the callable once (module level, method, functools.partial at "
        "setup time) instead."
    )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if isinstance(node, ast.Lambda):
                yield node, f"lambda allocated per call {_hot_suffix(scope)}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, (
                    f"nested function '{node.name}' allocated per call "
                    f"{_hot_suffix(scope)}"
                )


# ----------------------------------------------------------------------
# PERF002 — container displays built per call / per iteration
# ----------------------------------------------------------------------


@register
class HotContainerDisplayRule(PerfRule):
    id = "PERF002"
    title = "container built per call / per loop iteration on the hot path"
    rationale = (
        "A dict/list/set display or comprehension allocates a fresh "
        "container each evaluation. Inside a hot loop, or as a >=3-entry "
        "display rebuilt on every hot call, the allocation dominates the "
        "work; hoist it to module/instance level or restructure."
    )

    _DISPLAYS = (ast.Dict, ast.List, ast.Set)
    _COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp)

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        in_loop: Set[int] = set()
        for loop in _loops_in(scope):
            for node in _loop_nodes(loop):
                if isinstance(node, self._DISPLAYS + self._COMPREHENSIONS):
                    if id(node) not in in_loop:
                        in_loop.add(id(node))
                        yield node, (
                            "container allocated every loop iteration "
                            f"{_hot_suffix(scope)}"
                        )
        for node in scope.nodes:
            if id(node) in in_loop:
                continue
            if isinstance(node, ast.Dict) and len(node.keys) >= 3:
                yield node, (
                    f"{len(node.keys)}-entry dict rebuilt per call "
                    f"{_hot_suffix(scope)}"
                )


# ----------------------------------------------------------------------
# PERF003 — repeated deep attribute chains in loops
# ----------------------------------------------------------------------


def _attribute_chain(node: ast.Attribute) -> Optional[str]:
    """Dotted string for a Name-rooted chain with >=2 attribute hops."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name) or len(parts) < 2:
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _loop_targets(loop: ast.AST) -> Set[str]:
    targets: Set[str] = set()
    if isinstance(loop, ast.For):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                targets.add(node.id)
    return targets


@register
class RepeatedAttributeChainRule(PerfRule):
    id = "PERF003"
    title = "repeated deep attribute chain in a loop"
    rationale = (
        "Each `a.b.c` lookup is two dict probes; re-evaluating the same "
        "chain on every iteration of a hot loop multiplies that cost for "
        "a value that has not changed. Bind it to a local before the "
        "loop (`params = self.params`)."
    )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for loop in _loops_in(scope):
            rebound = _loop_targets(loop)
            chains: Dict[str, List[ast.Attribute]] = {}
            for node in _loop_nodes(loop):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    chain = _attribute_chain(node)
                    if chain is None or chain.split(".")[0] in rebound:
                        continue
                    chains.setdefault(chain, []).append(node)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    rebound.add(node.id)
            for chain, sites in sorted(chains.items()):
                # Only the full chain counts: `self.params.cutoff` also
                # walks as its prefix `self.params`; drop prefixes of
                # longer recorded chains to avoid double-reporting.
                if any(
                    other != chain and other.startswith(chain + ".")
                    for other in chains
                ):
                    continue
                if len(sites) >= 2:
                    first = min(
                        sites, key=lambda n: (n.lineno, n.col_offset)
                    )
                    yield first, (
                        f"attribute chain '{chain}' evaluated "
                        f"{len(sites)}x per loop iteration "
                        f"{_hot_suffix(scope)}; bind it to a local "
                        "before the loop"
                    )


# ----------------------------------------------------------------------
# PERF004 — eager string formatting
# ----------------------------------------------------------------------


def _is_format_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
    )


def _is_percent_format(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    )


@register
class HotStringFormattingRule(PerfRule):
    id = "PERF004"
    title = "string formatting on the hot path"
    rationale = (
        "f-strings, str.format and %-formatting build a new string every "
        "call; on a per-event path the formatting usually feeds a debug "
        "artifact nobody reads. Format lazily (logger arguments, "
        "__repr__) or only on the error path. Raise/assert statements "
        "are exempt — they already left the hot path."
    )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            kind: Optional[str] = None
            if isinstance(node, ast.JoinedStr):
                kind = "f-string"
            elif _is_format_call(node):
                kind = "str.format call"
            elif _is_percent_format(node):
                kind = "%-format expression"
            if kind is None:
                continue
            stmt = _nearest_statement(context, node)
            if isinstance(stmt, (ast.Raise, ast.Assert)):
                continue
            yield node, f"{kind} built per call {_hot_suffix(scope)}"


# ----------------------------------------------------------------------
# PERF005 — module-level default containers copied per call
# ----------------------------------------------------------------------


@register
class DefaultContainerCopyRule(PerfRule):
    id = "PERF005"
    title = "module-level default container copied per call"
    rationale = (
        "`dict(DEFAULTS)` / `DEFAULTS.copy()` per call allocates and "
        "copies on every invocation to defend a constant that is never "
        "mutated on most paths. Copy-on-write (only clone when actually "
        "overriding) or pass the shared mapping through read-only."
    )

    _FACTORIES = frozenset({"dict", "list", "set"})

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if not isinstance(node, ast.Call):
                continue
            name: Optional[str] = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "copy"
                and isinstance(node.func.value, ast.Name)
                and not node.args
            ):
                name = node.func.value.id
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in self._FACTORIES
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Name)
            ):
                name = node.args[0].id
            if name is not None and analysis.is_module_constant(name):
                yield node, (
                    f"module-level constant '{name}' copied per call "
                    f"{_hot_suffix(scope)}"
                )


# ----------------------------------------------------------------------
# PERF006 — non-__slots__ classes instantiated on the hot path
# ----------------------------------------------------------------------


@register
class NonSlotsInstantiationRule(PerfRule):
    id = "PERF006"
    title = "non-__slots__ class instantiated on the hot path"
    rationale = (
        "Instances without __slots__ carry a per-instance __dict__ "
        "(~100+ bytes and an extra allocation). Per-event result objects "
        "(outcomes, reuse events) are created millions of times in a "
        "sweep; give them __slots__."
    )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            lacks = analysis.class_lacks_slots(node.func.id)
            if lacks:
                yield node, (
                    f"instantiating '{node.func.id}' (no __slots__) "
                    f"{_hot_suffix(scope)}"
                )


# ----------------------------------------------------------------------
# PERF007 — list growth by concatenation
# ----------------------------------------------------------------------


@register
class ListConcatGrowthRule(PerfRule):
    id = "PERF007"
    title = "list grown by concatenation on the hot path"
    rationale = (
        "`x += [item]` and `x = x + [item]` allocate a throwaway "
        "single-item list (and the latter recopies the whole list) on "
        "every execution; use append/extend with a generator, or "
        "preallocate."
    )

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.value, ast.List)
            ):
                yield node, (
                    "list grown via '+= [...]' "
                    f"{_hot_suffix(scope)}; use append/extend"
                )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Add)
                and isinstance(node.value.right, ast.List)
                and isinstance(node.value.left, ast.Name)
                and node.value.left.id == node.targets[0].id
            ):
                yield node, (
                    "list recopied via 'x = x + [...]' "
                    f"{_hot_suffix(scope)}; use append/extend"
                )


# ----------------------------------------------------------------------
# PERF008 — membership tests against materialized views
# ----------------------------------------------------------------------


@register
class MaterializedMembershipRule(PerfRule):
    id = "PERF008"
    title = "membership test against a materialized mapping view"
    rationale = (
        "`k in d.keys()` allocates a view object per test and `k in "
        "list(d)` / `k in d.items()` degrade O(1) hash probes to O(n) "
        "scans with a full materialization. Test against the mapping "
        "itself."
    )

    _VIEWS = frozenset({"keys", "items", "values"})
    _MATERIALIZERS = frozenset({"list", "tuple"})

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if not isinstance(comparator, ast.Call):
                    continue
                func = comparator.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._VIEWS
                    and not comparator.args
                ):
                    yield comparator, (
                        f"membership test against .{func.attr}() "
                        f"{_hot_suffix(scope)}; test the mapping directly"
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id in self._MATERIALIZERS
                    and len(comparator.args) == 1
                ):
                    yield comparator, (
                        f"membership test against {func.id}(...) "
                        f"{_hot_suffix(scope)}; test the container directly"
                    )


# ----------------------------------------------------------------------
# PERF009 — eagerly formatted logging calls
# ----------------------------------------------------------------------


@register
class EagerLoggingRule(PerfRule):
    id = "PERF009"
    title = "logging call formats its message eagerly"
    rationale = (
        "Passing an f-string (or .format/% result) to a logger builds "
        "the message even when the level is disabled; on the hot path "
        "that is pure waste. Use %-style lazy arguments "
        "(`log.debug(\"x=%s\", x)`) or guard with isEnabledFor."
    )

    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "error", "exception", "critical", "log"}
    )
    _LOG_RECEIVERS = frozenset({"logging", "logger", "log"})

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._LOG_METHODS
            ):
                continue
            receiver: Optional[str] = None
            if isinstance(node.func.value, ast.Name):
                receiver = node.func.value.id
            elif isinstance(node.func.value, ast.Attribute):
                receiver = node.func.value.attr
            if receiver is None:
                continue
            if receiver.lstrip("_") not in self._LOG_RECEIVERS:
                continue
            if any(
                isinstance(arg, ast.JoinedStr)
                or _is_format_call(arg)
                or _is_percent_format(arg)
                for arg in node.args
            ):
                yield node, (
                    f"logger.{node.func.attr}() message formatted "
                    f"eagerly {_hot_suffix(scope)}; pass lazy %-style "
                    "arguments"
                )


# ----------------------------------------------------------------------
# PERF010 — constant containers rebuilt per call
# ----------------------------------------------------------------------


def _constant_valued(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _constant_valued(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"float", "int", "str", "bool", "complex", "frozenset"}
        and not node.keywords
        and all(_constant_valued(arg) for arg in node.args)
    ):
        return True
    return False


@register
class ConstantRebuildRule(PerfRule):
    id = "PERF010"
    title = "constant container rebuilt per call"
    rationale = (
        "A tuple/set whose elements need runtime construction (e.g. "
        "`(float(\"inf\"), float(\"-inf\"))`) defeats CPython's constant "
        "folding and is reallocated on every call. Hoist it to a module "
        "constant; purely literal displays are exempt (the compiler "
        "already folds them)."
    )

    _DISPLAYS = (ast.Tuple, ast.List, ast.Set)

    def check_scope(
        self, scope: _FunctionScope, analysis: PerfAnalysis, context: FileContext
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in scope.nodes:
            if isinstance(node, self._DISPLAYS):
                elements = list(node.elts)
                if (
                    elements
                    and all(_constant_valued(el) for el in elements)
                    and any(isinstance(el, ast.Call) for el in elements)
                ):
                    yield node, (
                        "constant container rebuilt per call "
                        f"{_hot_suffix(scope)}; hoist to a module constant"
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "compile"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "re"
                and node.args
                and all(_constant_valued(arg) for arg in node.args)
            ):
                yield node, (
                    "re.compile of a constant pattern per call "
                    f"{_hot_suffix(scope)}; hoist to a module constant"
                )


PERF_RULE_IDS: Tuple[str, ...] = tuple(
    f"PERF{n:03d}" for n in range(1, 11)
)

__all__ = [
    "PERF_RULE_IDS",
    "PHASE_ROOTS",
    "HotSetResolver",
    "PerfAnalysis",
    "perf_analysis",
    "resolve_hot_functions",
]

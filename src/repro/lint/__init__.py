"""Static analysis for the reproduction: detlint + semlint + timerlint +
perflint.

The paper's headline effects (secondary charging, muffling, the ``Nh``
crossover) are timer-interaction effects, so the reproduction is only
trustworthy if a fixed seed yields bit-identical runs *and* the RFD/BGP
layers honour their semantic contracts. This package turns both
conventions into machine-checked invariants:

* **detlint** (``DET0xx``, :mod:`repro.lint.rules`) — determinism
  hazards: wall-clock reads, global RNG state, unordered iteration,
  float-equality on simulated time, unsorted filesystem listings.
* **semlint** (``SEM0xx``, :mod:`repro.lint.semantics`) — protocol
  semantics: decision-process purity (via the effect-inference engine
  in :mod:`repro.lint.effects`), timer scheduling through the Engine/
  Timer APIs, named penalty constants, monotonic RCN sequence checks,
  metrics-visible RIB mutations.
* **timerlint** (``TIM0xx``, :mod:`repro.lint.timers`) — timer
  lifecycle and timer interaction: an abstract interpreter over timer
  handles (leaks, double-arm, re-arm-after-cancel) plus discipline at
  arming/construction sites (charge-API bypass in callbacks, raw delay
  literals, engine-boundary bypass, race labels, unclamped delays).
* **perflint** (``PERF0xx``, :mod:`repro.lint.perf`) — profile-guided
  hot-path performance hazards: per-event allocation (closures,
  containers, f-strings, unslotted instances), repeated attribute
  chains, list-concat growth, materialized membership tests, eager
  logging, constant rebuilding. Findings keep warning severity only
  inside the hot set derived from the committed phase profile
  (:mod:`repro.lint.callgraph` + ``benchmarks/results/profile.json``);
  elsewhere they downgrade to advisory ``info``.

All passes share one rule framework (:mod:`repro.lint.framework`), a
driver with construct-scoped pass-prefixed ``# <pass>lint:
disable=...`` / generic ``# lint: disable=...`` suppressions,
``--baseline`` support, an incremental content-digest cache
(:mod:`repro.lint.cache`), and parallel file analysis
(:mod:`repro.lint.runner`); text/JSON reporters live in
:mod:`repro.lint.reporters`.

Run it as ``rfd-repro lint --pass all src/``; the tier-1 suite gates the
whole tree through :func:`lint_paths`. The complementary *runtime*
checks — the engine's schedule-race detector, the converged-state
invariant oracle, and the opt-in timer audit — live in
:mod:`repro.sim.engine`, :mod:`repro.analysis.invariants`, and
:mod:`repro.sim.timers`; see ``docs/STATIC_ANALYSIS.md`` for the full
catalogue.
"""

from repro.lint.baseline import (
    apply_baseline,
    baseline_counts,
    parse_baseline,
    render_baseline,
)
from repro.lint.cache import RULE_SET_VERSION, LintCache
from repro.lint.callgraph import FileSummary, ProjectGraph, summarize_file
from repro.lint.config import (
    DEFAULT_PROTECTED_PACKAGES,
    LintConfig,
    make_config,
    pass_for_rule,
)
from repro.lint.effects import EffectAnalysis, FunctionEffects, analyze_effects
from repro.lint.findings import Finding, LintReport
from repro.lint.framework import FileContext, Rule, all_rule_ids, iter_rules
from repro.lint.perf import HotSetResolver, PerfAnalysis, resolve_hot_functions
from repro.lint.reporters import render_json, render_rule_list, render_text
from repro.lint.rules import RULE_IDS
from repro.lint.runner import lint_paths, lint_source, parse_suppressions
from repro.lint.timers import TimerAnalysis, analyze_timers

__all__ = [
    "DEFAULT_PROTECTED_PACKAGES",
    "EffectAnalysis",
    "FileContext",
    "FileSummary",
    "Finding",
    "FunctionEffects",
    "HotSetResolver",
    "LintCache",
    "LintConfig",
    "LintReport",
    "PerfAnalysis",
    "ProjectGraph",
    "RULE_IDS",
    "RULE_SET_VERSION",
    "Rule",
    "TimerAnalysis",
    "all_rule_ids",
    "analyze_effects",
    "analyze_timers",
    "apply_baseline",
    "baseline_counts",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "make_config",
    "parse_baseline",
    "parse_suppressions",
    "pass_for_rule",
    "render_baseline",
    "render_json",
    "render_rule_list",
    "render_text",
    "resolve_hot_functions",
    "summarize_file",
]

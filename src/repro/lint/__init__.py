"""detlint — determinism & protocol-safety static analysis.

The paper's headline effects (secondary charging, muffling, the ``Nh``
crossover) are timer-interaction effects, so the reproduction is only
trustworthy if a fixed seed yields bit-identical runs. This package
turns that convention into a machine-checked invariant: an AST-based
rule framework (:mod:`repro.lint.rules`), a driver with line-scoped
``# detlint: disable=DET0xx`` suppressions (:mod:`repro.lint.runner`),
and text/JSON reporters (:mod:`repro.lint.reporters`).

Run it as ``rfd-repro lint src/``; the tier-1 suite gates the whole
tree through :func:`lint_paths`. The complementary *runtime* check —
the engine's schedule-race detector — lives in
:mod:`repro.sim.engine`; see ``docs/DETERMINISM.md`` for both.
"""

from repro.lint.config import DEFAULT_PROTECTED_PACKAGES, LintConfig, make_config
from repro.lint.findings import Finding, LintReport
from repro.lint.reporters import render_json, render_rule_list, render_text
from repro.lint.rules import (
    RULE_IDS,
    FileContext,
    Rule,
    all_rule_ids,
    iter_rules,
)
from repro.lint.runner import lint_paths, lint_source, parse_suppressions

__all__ = [
    "DEFAULT_PROTECTED_PACKAGES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULE_IDS",
    "Rule",
    "all_rule_ids",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "make_config",
    "parse_suppressions",
    "render_json",
    "render_rule_list",
    "render_text",
]

"""Cross-file call graph for the perflint hot-set resolver and the
incremental cache's transitive invalidation.

The intra-file effect inference in :mod:`repro.lint.effects` stops at
file boundaries; perflint needs to know whether a function is reachable
from a *profiled phase root* or an *engine callback registration*
anywhere in the project. :func:`summarize_file` distils one parsed file
into a JSON-round-trippable :class:`FileSummary` (functions, call
tokens, callback registrations); :class:`ProjectGraph` stitches the
summaries together, resolving edges through

- ``self.x()`` calls to methods of the enclosing class,
- bare-name calls to module-level functions, then through the file's
  import aliases to other modules,
- dotted calls whose leading name is an import alias
  (``decision.select_best`` -> ``repro.bgp.decision.select_best``), and
- attribute calls on conventionally named receivers
  (``engine.schedule`` -> ``Engine.schedule``) via
  :data:`RECEIVER_CLASS_HINTS`.

Resolution is deliberately sound-ish rather than complete — an
unresolvable callee is simply absent from the graph, which errs toward
*smaller* hot sets (findings downgrade to info, never spuriously
upgrade to warning).

Because summaries round-trip through JSON, the incremental cache stores
them per file keyed by source digest: a warm run rebuilds the whole
project graph without re-parsing a single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

#: Receiver spellings that conventionally denote instances of a class in
#: this codebase, letting ``receiver.method()`` calls resolve to that
#: class's method without type inference. Keys are the *last* name
#: segment of the receiver expression (``self._engine`` -> ``engine`` is
#: handled by stripping a leading underscore).
RECEIVER_CLASS_HINTS: Dict[str, str] = {
    "engine": "Engine",
    "timer": "Timer",
    "reuse_timer": "Timer",
    "mrai_timer": "Timer",
    "damping": "DampingManager",
    "manager": "DampingManager",
    "params": "DampingParams",
    "penalty": "PenaltyState",
    "router": "BgpRouter",
    "rib": "LocRib",
    "loc_rib": "LocRib",
    "adj_rib_in": "AdjRibIn",
    "adj_rib_out": "AdjRibOut",
    "mrai": "MraiLimiter",
    "limiter": "MraiLimiter",
    "link": "Link",
}

#: Methods whose callable arguments are scheduled for later execution on
#: the engine hot path (mirrors ``effects._SCHEDULING_METHODS`` plus the
#: Timer constructor, which takes ``callback=``).
_CALLBACK_SINKS: FrozenSet[str] = frozenset(
    {"schedule", "schedule_at", "call_soon", "reschedule", "restart_if_idle", "start"}
)
_CALLBACK_CONSTRUCTORS: FrozenSet[str] = frozenset({"Timer"})


@dataclass(frozen=True)
class FunctionInfo:
    """One function of one file, as seen by the project graph."""

    #: In-file qualified name (``DampingManager.record_update``).
    qualname: str
    line: int
    owner_class: Optional[str]
    #: Call tokens ``(kind, payload)`` with kind one of ``self`` (method
    #: name), ``bare`` (unqualified name), ``qual`` (alias-expanded
    #: dotted name), ``attr`` (``receiver.method``).
    callees: Tuple[Tuple[str, str], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "owner_class": self.owner_class,
            "callees": [list(token) for token in self.callees],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FunctionInfo":
        callees = tuple(
            (str(kind), str(payload))
            for kind, payload in data.get("callees", [])  # type: ignore[union-attr]
        )
        owner = data.get("owner_class")
        return FunctionInfo(
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            owner_class=str(owner) if owner is not None else None,
            callees=callees,
        )


@dataclass(frozen=True)
class FileSummary:
    """The call-graph-relevant distillation of one source file."""

    path: str
    module: Optional[str]
    functions: Tuple[FunctionInfo, ...]
    #: ``(registering_function_qualname, kind, payload)`` for every
    #: callable handed to a scheduling sink; kinds as in FunctionInfo.
    callback_targets: Tuple[Tuple[str, str, str], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "functions": [info.as_dict() for info in self.functions],
            "callback_targets": [list(entry) for entry in self.callback_targets],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FileSummary":
        module = data.get("module")
        return FileSummary(
            path=str(data["path"]),
            module=str(module) if module is not None else None,
            functions=tuple(
                FunctionInfo.from_dict(entry)
                for entry in data.get("functions", [])  # type: ignore[union-attr]
            ),
            callback_targets=tuple(
                (str(a), str(b), str(c))
                for a, b, c in data.get("callback_targets", [])  # type: ignore[union-attr]
            ),
        )


def _receiver_token(node: ast.expr) -> Optional[str]:
    """Last, underscore-stripped name segment of a receiver expression."""
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return None
    return name.lstrip("_") or name


def _dotted_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]`` when rooted at a plain Name."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def _call_token(
    func: ast.expr, aliases: Mapping[str, str]
) -> Optional[Tuple[str, str]]:
    """Classify one call expression into a resolvable token."""
    if isinstance(func, ast.Name):
        expanded = aliases.get(func.id)
        if expanded is not None:
            return ("qual", expanded)
        return ("bare", func.id)
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name) and func.value.id == "self":
        return ("self", func.attr)
    chain = _dotted_chain(func)
    if chain is not None and chain[0] in aliases:
        return ("qual", ".".join([aliases[chain[0]]] + chain[1:]))
    receiver = _receiver_token(func.value)
    if receiver is not None:
        return ("attr", f"{receiver}.{func.attr}")
    return None


def _callback_token(
    expr: ast.expr, aliases: Mapping[str, str]
) -> Optional[Tuple[str, str]]:
    """Token for a callable handed to a scheduling sink.

    Unwraps ``functools.partial(callable, ...)`` to its first argument so
    ``partial(self._reuse_fired, peer, prefix)`` resolves to the method.
    """
    if isinstance(expr, ast.Call):
        fname: Optional[str] = None
        if isinstance(expr.func, ast.Name):
            fname = expr.func.id
        elif isinstance(expr.func, ast.Attribute):
            fname = expr.func.attr
        if fname == "partial" and expr.args:
            return _callback_token(expr.args[0], aliases)
        return None
    return _call_token(expr, aliases)


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _is_callback_sink(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _CALLBACK_CONSTRUCTORS or func.id == "call_soon"
    if isinstance(func, ast.Attribute):
        return func.attr in _CALLBACK_SINKS
    return False


def summarize_file(
    tree: ast.AST, path: str, module: Optional[str] = None
) -> FileSummary:
    """Distil one parsed file into its :class:`FileSummary`."""
    aliases = _collect_aliases(tree)
    functions: List[FunctionInfo] = []
    callbacks: List[Tuple[str, str, str]] = []

    def scan_function(
        node: ast.AST, qualname: str, owner: Optional[str]
    ) -> None:
        callees: Set[Tuple[str, str]] = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            token = _call_token(sub.func, aliases)
            if token is not None:
                callees.add(token)
            if _is_callback_sink(sub):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    cb = _callback_token(arg, aliases)
                    if cb is not None:
                        callbacks.append((qualname, cb[0], cb[1]))
        functions.append(
            FunctionInfo(
                qualname=qualname,
                line=getattr(node, "lineno", 1),
                owner_class=owner,
                callees=tuple(sorted(callees)),
            )
        )

    def visit(node: ast.AST, scope: Tuple[str, ...], owner: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, scope + (child.name,), child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(scope + (child.name,))
                scan_function(child, qualname, owner)
                visit(child, scope + (child.name,), None)
            else:
                visit(child, scope, owner)

    visit(tree, (), None)
    # Module-level callback registrations (scripts, fixtures).
    for stmt in getattr(tree, "body", []):
        for sub in ast.walk(stmt):
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                break
            if isinstance(sub, ast.Call) and _is_callback_sink(sub):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    cb = _callback_token(arg, aliases)
                    if cb is not None:
                        callbacks.append(("<module>", cb[0], cb[1]))
    return FileSummary(
        path=path,
        module=module,
        functions=tuple(sorted(functions, key=lambda f: f.qualname)),
        callback_targets=tuple(sorted(set(callbacks))),
    )


class ProjectGraph:
    """All file summaries stitched into one resolvable call graph.

    Functions are keyed by their *full* dotted name — the module name
    (or, for files outside the package, the file path) joined with the
    in-file qualified name.
    """

    def __init__(self, summaries: Iterable[FileSummary]) -> None:
        self._summaries: List[FileSummary] = sorted(
            summaries, key=lambda s: s.path
        )
        self._functions: Dict[str, FunctionInfo] = {}
        self._path_of: Dict[str, str] = {}
        self._module_level: Dict[str, Dict[str, str]] = {}
        self._by_class: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._class_index: Dict[str, List[Tuple[str, str]]] = {}
        for summary in self._summaries:
            ns = self._namespace(summary)
            for info in summary.functions:
                full = f"{ns}.{info.qualname}"
                self._functions[full] = info
                self._path_of[full] = summary.path
                if "." not in info.qualname:
                    self._module_level.setdefault(ns, {})[info.qualname] = full
                if info.owner_class is not None:
                    key = (ns, info.owner_class)
                    method = info.qualname.rsplit(".", 1)[-1]
                    self._by_class.setdefault(key, {})[method] = full
                    index = self._class_index.setdefault(info.owner_class, [])
                    if key not in index:
                        index.append(key)
        self._edges: Dict[str, Tuple[str, ...]] = {}
        for summary in self._summaries:
            ns = self._namespace(summary)
            for info in summary.functions:
                full = f"{ns}.{info.qualname}"
                targets: Set[str] = set()
                for kind, payload in info.callees:
                    resolved = self._resolve(ns, info, kind, payload)
                    targets.update(resolved)
                targets.discard(full)
                self._edges[full] = tuple(sorted(targets))
        roots: Set[str] = set()
        for summary in self._summaries:
            ns = self._namespace(summary)
            owners = {
                info.qualname: info.owner_class for info in summary.functions
            }
            for registrar, kind, payload in summary.callback_targets:
                info = FunctionInfo(
                    qualname=registrar,
                    line=0,
                    owner_class=owners.get(registrar),
                    callees=(),
                )
                roots.update(self._resolve(ns, info, kind, payload))
        self._callback_roots: FrozenSet[str] = frozenset(roots)

    @staticmethod
    def _namespace(summary: FileSummary) -> str:
        return summary.module if summary.module is not None else summary.path

    def _resolve(
        self, ns: str, info: FunctionInfo, kind: str, payload: str
    ) -> Set[str]:
        resolved: Set[str] = set()
        if kind == "self" and info.owner_class is not None:
            full = self._by_class.get((ns, info.owner_class), {}).get(payload)
            if full is not None:
                resolved.add(full)
        elif kind == "bare":
            nested = f"{ns}.{info.qualname}.{payload}"
            if nested in self._functions:
                resolved.add(nested)
            else:
                full = self._module_level.get(ns, {}).get(payload)
                if full is not None:
                    resolved.add(full)
        elif kind == "qual":
            if payload in self._functions:
                resolved.add(payload)
            else:
                # ``repro.core.damping.DampingManager`` (a class import)
                # called as a constructor: resolve to its __init__.
                init = f"{payload}.__init__"
                head, _, tail = payload.rpartition(".")
                if init in self._functions:
                    resolved.add(init)
                elif head and tail in self._class_index:
                    for cls_ns, cls in self._class_index[tail]:
                        if cls_ns == head:
                            ctor = self._by_class[(cls_ns, cls)].get("__init__")
                            if ctor is not None:
                                resolved.add(ctor)
        elif kind == "attr":
            receiver, _, method = payload.partition(".")
            hint = RECEIVER_CLASS_HINTS.get(receiver)
            if hint is not None:
                for key in self._class_index.get(hint, []):
                    full = self._by_class[key].get(method)
                    if full is not None:
                        resolved.add(full)
        return resolved

    @property
    def callback_roots(self) -> FrozenSet[str]:
        """Functions registered (anywhere) as engine/timer callbacks."""
        return self._callback_roots

    def has_function(self, full_name: str) -> bool:
        return full_name in self._functions

    def path_of(self, full_name: str) -> Optional[str]:
        return self._path_of.get(full_name)

    def functions_in(self, path: str) -> List[str]:
        """Full names of every function defined in ``path``, sorted."""
        return sorted(
            full for full, p in self._path_of.items() if p == path
        )

    def closure(self, roots: Iterable[str]) -> FrozenSet[str]:
        """Transitive callee closure of ``roots`` over resolved edges."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self._functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                callee
                for callee in self._edges.get(current, ())
                if callee not in seen
            )
        return frozenset(seen)


__all__ = [
    "RECEIVER_CLASS_HINTS",
    "FileSummary",
    "FunctionInfo",
    "ProjectGraph",
    "summarize_file",
]

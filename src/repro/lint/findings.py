"""Finding and report types for the detlint static-analysis pass.

A :class:`Finding` pins one rule violation to a ``file:line`` location; a
:class:`LintReport` aggregates the findings of a whole run together with
bookkeeping the reporters and the CI gate need (files checked, findings
silenced by suppression comments, files that failed to parse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False

    @property
    def location(self) -> str:
        """``file:line`` rendering used by reporters and error output."""
        return f"{self.path}:{self.line}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
        }


@dataclass
class LintReport:
    """Aggregated outcome of linting one or more paths."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: ``(path, error message)`` for files that could not be parsed.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the tree is clean: no findings and no parse errors."""
        return not self.findings and not self.parse_errors

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def counts_by_rule(self) -> Dict[str, int]:
        """Active finding count per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: "LintReport") -> None:
        """Merge ``other`` (one file's report) into this run-level report."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked
        self.parse_errors.extend(other.parse_errors)

"""Finding and report types for the static-analysis passes.

A :class:`Finding` pins one rule violation to a ``file:line`` location; a
:class:`LintReport` aggregates the findings of a whole run together with
bookkeeping the reporters and the CI gate need (files checked, findings
silenced by suppression comments or a baseline, files that failed to
parse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


#: The severity vocabulary, in decreasing order of strictness. ``error``
#: findings always gate (unless ``--fail-on never``); ``warning``
#: findings gate only under the default ``--fail-on warning``; ``info``
#: findings never gate — perflint uses them for hazards that sit outside
#: the profiled hot set and are advisory rather than blocking.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int = 0
    #: Last physical line of the flagged construct; suppression comments
    #: anywhere in ``line..end_line`` (continuation lines) are honoured.
    end_line: int = 0
    #: ``error`` or ``warning`` — copied from the rule that produced the
    #: finding and consumed by the ``--fail-on`` exit-code contract.
    severity: str = "error"
    suppressed: bool = False
    #: True when the finding is silenced by a ``--baseline`` file rather
    #: than fixed; baselined findings do not fail the run.
    baselined: bool = False

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    @property
    def location(self) -> str:
        """``file:line`` rendering used by reporters and error output."""
        return f"{self.path}:{self.line}"

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used by baseline record/compare.

        Deliberately excludes the line number so findings survive
        unrelated edits that shift code up or down a file.
        """
        path = self.path.replace("\\", "/")
        return f"{path}::{self.rule_id}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by the JSON reporter)."""
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


@dataclass
class LintReport:
    """Aggregated outcome of linting one or more paths."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings matched (and silenced) by a ``--baseline`` file.
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: ``(path, error message)`` for files that could not be parsed.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Incremental-cache hit/miss counters, populated when the run used a
    #: cache directory (``local_hits``/``local_misses``/``perf_hits``/
    #: ``perf_misses``); None for uncached runs.
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True when the tree is clean: no findings and no parse errors."""
        return not self.findings and not self.parse_errors

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def info_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "info")

    def blocking_findings(self, fail_on: str = "warning") -> List[Finding]:
        """The findings that fail the run under a ``--fail-on`` threshold.

        ``warning`` (the default, and the historical behaviour): every
        error- and warning-severity finding blocks. ``error``: only
        error-severity findings block. ``never``: findings never block.
        ``info`` findings are advisory and never block under any
        threshold. Parse errors are not findings and always fail the run
        — an unparseable file cannot be certified clean — so callers
        must check :attr:`parse_errors` separately.
        """
        if fail_on == "never":
            return []
        if fail_on == "error":
            return [f for f in self.findings if f.severity == "error"]
        return [f for f in self.findings if f.severity != "info"]

    def counts_by_rule(self) -> Dict[str, int]:
        """Active finding count per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: "LintReport") -> None:
        """Merge ``other`` (one file's report) into this run-level report."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked
        self.parse_errors.extend(other.parse_errors)

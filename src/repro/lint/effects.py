"""Intra-file call-graph and effect inference for the semlint and
timerlint passes.

Protocol-semantics rules need to know *what a function does*, not just
what tokens it contains. This module classifies every function (and
method) of one file into a set of effects:

``reads-clock``
    Reads simulated time (``engine.now`` / ``self._engine.now``).
``schedules-timer``
    Schedules future work — ``Engine.schedule``/``schedule_at``,
    ``call_soon``, ``Timer`` arming methods, or an API known to arm
    timers internally (``DampingManager.record_update``).
``cancels-timer``
    Disarms scheduled work — ``Timer.cancel`` / ``ScheduledEvent.cancel``
    (or ``cancel_all_timers``). The timerlint abstract interpreter uses
    this label to keep its handle-state tracking sound across helper
    calls: a callee that may cancel invalidates what the caller knows
    about its pending timers.
``mutates-rib``
    Writes routing state — ``LocRib.set_route``, Adj-RIB ``apply``,
    ``record_announcement``/``record_withdrawal``.
``emits-update``
    Sends protocol messages (``Node.send``).

A function with none of these is *pure* — the contract the BGP decision
process must satisfy (rule SEM001). Inference is deliberately
lightweight and sound-ish rather than complete: effects are detected
syntactically (receiver and method names), then propagated transitively
over the intra-file call graph (bare-name calls resolve to module-level
functions, ``self.x()`` calls to methods of the enclosing class) until a
fixed point. Cross-file calls are covered by a small table of known
effectful APIs; unknown callees are assumed pure.

Nested functions and lambdas count toward the enclosing function's
effects: in an event-driven simulator a closure is created precisely to
be scheduled, so "defines an effectful callback" is treated as "has the
effect".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: Effect labels (the vocabulary of the classification).
READS_CLOCK = "reads-clock"
SCHEDULES_TIMER = "schedules-timer"
CANCELS_TIMER = "cancels-timer"
MUTATES_RIB = "mutates-rib"
EMITS_UPDATE = "emits-update"

ALL_EFFECTS: FrozenSet[str] = frozenset(
    {READS_CLOCK, SCHEDULES_TIMER, CANCELS_TIMER, MUTATES_RIB, EMITS_UPDATE}
)

#: Attribute names that denote simulated instants. Shared vocabulary of
#: DET005 (exact equality on bare time operands) and SEM004 (equality on
#: time-valued expressions).
TIME_NAMES: FrozenSet[str] = frozenset(
    {
        "now",
        "_now",
        "time",
        "expiry",
        "deadline",
        "sent_at",
        "delivered_at",
        "deliver_at",
        "attach_time",
        "start_time",
        "end_time",
        "fire_time",
    }
)

#: Receiver names that denote the simulation engine.
ENGINE_RECEIVERS: FrozenSet[str] = frozenset({"engine", "_engine"})

#: Method names that schedule future work regardless of receiver: the
#: engine's scheduling entry points plus the Timer life-cycle methods
#: (``reschedule``/``restart_if_idle`` are timer-specific names in this
#: codebase; plain ``start`` is too generic and needs a timer receiver).
_SCHEDULING_METHODS: FrozenSet[str] = frozenset(
    {"schedule", "schedule_at", "call_soon", "reschedule", "restart_if_idle"}
)

#: Method names that disarm scheduled work regardless of receiver —
#: ``cancel`` is timer/event vocabulary throughout this codebase.
_CANCELLING_METHODS: FrozenSet[str] = frozenset({"cancel", "cancel_all_timers"})

#: Method names that mutate routing state regardless of receiver.
_RIB_MUTATORS: FrozenSet[str] = frozenset(
    {"set_route", "record_announcement", "record_withdrawal"}
)

#: Cross-module APIs known to carry an effect even though their body is
#: not visible to an intra-file analysis.
KNOWN_API_EFFECTS: Dict[str, str] = {
    "record_update": SCHEDULES_TIMER,  # DampingManager arms reuse timers
    "send": EMITS_UPDATE,  # Node.send / BgpRouter.send
}


@dataclass(frozen=True)
class FunctionEffects:
    """Inferred effect classification of one function."""

    qualname: str
    name: str
    line: int
    #: Effects evident in this function's own body (including closures).
    direct: FrozenSet[str]
    #: ``direct`` closed over the intra-file call graph.
    transitive: FrozenSet[str]
    #: Intra-file callees this function's transitive effects flowed from.
    calls: Tuple[str, ...]

    @property
    def is_pure(self) -> bool:
        return not self.transitive

    @property
    def classification(self) -> str:
        """Human-readable label: ``pure`` or a ``+``-joined effect list."""
        if self.is_pure:
            return "pure"
        return "+".join(sorted(self.transitive))


class EffectAnalysis:
    """Effect classification of every function in one file."""

    def __init__(self, functions: Dict[str, FunctionEffects]) -> None:
        self._functions = functions

    def function(self, qualname: str) -> Optional[FunctionEffects]:
        return self._functions.get(qualname)

    def iter_functions(self) -> Iterator[FunctionEffects]:
        for qualname in sorted(self._functions):
            yield self._functions[qualname]

    def impure_functions(self) -> List[FunctionEffects]:
        return [f for f in self.iter_functions() if not f.is_pure]

    def __len__(self) -> int:
        return len(self._functions)


def _receiver_name(node: ast.expr) -> Optional[str]:
    """Last name segment of a receiver expression (``self.engine`` ->
    ``engine``, ``entry.timer`` -> ``timer``, ``engine`` -> ``engine``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_self_call(func: ast.expr) -> Optional[str]:
    """Method name when ``func`` is ``self.<method>``, else None."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


def _direct_effects_of_call(call: ast.Call) -> Set[str]:
    effects: Set[str] = set()
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "call_soon":
            effects.add(SCHEDULES_TIMER)
        return effects
    if not isinstance(func, ast.Attribute):
        return effects
    method = func.attr
    receiver = _receiver_name(func.value)
    if method in _SCHEDULING_METHODS:
        effects.add(SCHEDULES_TIMER)
    elif method == "start" and receiver is not None and "timer" in receiver.lower():
        effects.add(SCHEDULES_TIMER)
    if method in _CANCELLING_METHODS:
        effects.add(CANCELS_TIMER)
    if method in _RIB_MUTATORS:
        effects.add(MUTATES_RIB)
    elif method == "apply" and receiver is not None and (
        "rib" in receiver.lower() or "table" in receiver.lower()
    ):
        effects.add(MUTATES_RIB)
    if method in KNOWN_API_EFFECTS:
        effects.add(KNOWN_API_EFFECTS[method])
    return effects


def _scan_direct_effects(node: ast.AST) -> Set[str]:
    """Effects evident in one function's subtree (closures included)."""
    effects: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            if sub.attr == "now" and _receiver_name(sub.value) in ENGINE_RECEIVERS:
                effects.add(READS_CLOCK)
        elif isinstance(sub, ast.Call):
            effects.update(_direct_effects_of_call(sub))
    return effects


def _collect_callees(node: ast.AST) -> Set[Tuple[str, bool]]:
    """``(name, is_self_call)`` tokens for every call in the subtree."""
    callees: Set[Tuple[str, bool]] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        method = _is_self_call(sub.func)
        if method is not None:
            callees.add((method, True))
        elif isinstance(sub.func, ast.Name):
            callees.add((sub.func.id, False))
    return callees


class _FunctionRecord:
    __slots__ = ("qualname", "name", "line", "owner_class", "direct", "callees")

    def __init__(
        self,
        qualname: str,
        name: str,
        line: int,
        owner_class: Optional[str],
        direct: Set[str],
        callees: Set[Tuple[str, bool]],
    ) -> None:
        self.qualname = qualname
        self.name = name
        self.line = line
        self.owner_class = owner_class
        self.direct = direct
        self.callees = callees


def _collect_functions(tree: ast.AST) -> List[_FunctionRecord]:
    records: List[_FunctionRecord] = []

    def visit(node: ast.AST, scope: Tuple[str, ...], owner: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, scope + (child.name,), child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(scope + (child.name,))
                records.append(
                    _FunctionRecord(
                        qualname=qualname,
                        name=child.name,
                        line=child.lineno,
                        owner_class=owner,
                        direct=_scan_direct_effects(child),
                        callees=_collect_callees(child),
                    )
                )
                # Nested defs are also recorded individually; the owner
                # class no longer applies inside them.
                visit(child, scope + (child.name,), None)
            else:
                visit(child, scope, owner)

    visit(tree, (), None)
    return records


def analyze_effects(tree: ast.AST) -> EffectAnalysis:
    """Classify every function of one parsed file.

    Effects are first detected per function body, then propagated over
    the intra-file call graph (bare names -> module-level functions,
    ``self.x()`` -> same-class methods) to a fixed point.
    """
    records = _collect_functions(tree)
    by_qualname = {record.qualname: record for record in records}
    module_level = {
        record.name: record.qualname for record in records if "." not in record.qualname
    }
    by_class: Dict[str, Dict[str, str]] = {}
    for record in records:
        if record.owner_class is not None:
            by_class.setdefault(record.owner_class, {})[record.name] = record.qualname

    edges: Dict[str, Set[str]] = {record.qualname: set() for record in records}
    for record in records:
        for callee_name, is_self in record.callees:
            target: Optional[str] = None
            if is_self and record.owner_class is not None:
                target = by_class.get(record.owner_class, {}).get(callee_name)
            elif not is_self:
                target = module_level.get(callee_name)
            if target is not None and target != record.qualname:
                edges[record.qualname].add(target)

    transitive: Dict[str, Set[str]] = {
        record.qualname: set(record.direct) for record in records
    }
    changed = True
    while changed:
        changed = False
        for qualname, callees in edges.items():
            for callee in callees:
                missing = transitive[callee] - transitive[qualname]
                if missing:
                    transitive[qualname].update(missing)
                    changed = True

    functions: Dict[str, FunctionEffects] = {}
    for record in records:
        functions[record.qualname] = FunctionEffects(
            qualname=record.qualname,
            name=record.name,
            line=record.line,
            direct=frozenset(record.direct),
            transitive=frozenset(transitive[record.qualname]),
            calls=tuple(sorted(edges[record.qualname])),
        )
    return EffectAnalysis(functions)


__all__ = [
    "ALL_EFFECTS",
    "CANCELS_TIMER",
    "EMITS_UPDATE",
    "ENGINE_RECEIVERS",
    "EffectAnalysis",
    "FunctionEffects",
    "KNOWN_API_EFFECTS",
    "MUTATES_RIB",
    "READS_CLOCK",
    "SCHEDULES_TIMER",
    "TIME_NAMES",
    "analyze_effects",
]

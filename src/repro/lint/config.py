"""Configuration for a lint run (detlint + semlint + timerlint).

:class:`LintConfig` selects which passes and rules run and tells
path-scoped rules which packages they apply to: DET007's deterministic
core, SEM001's decision-process modules, SEM002's and the TIM rules'
timer substrate, SEM003's parameter module, and SEM007's/TIM004's
damping module. The defaults match this repository's layout; tests
construct narrower configs to exercise individual rules in isolation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError

#: Packages that must stay free of environment/filesystem access (DET007).
DEFAULT_PROTECTED_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.sim",
    "repro.bgp",
    # Trace records/tracer sit on the hot path and must stay as
    # deterministic as the protocol code they observe; the sinks and
    # profiler are deliberately excluded (file I/O, wall clock).
    "repro.trace.records",
    "repro.trace.tracer",
)

#: Modules whose functions must be effect-free (SEM001).
DEFAULT_DECISION_MODULES: Tuple[str, ...] = ("repro.bgp.decision",)

#: The timer/engine substrate allowed to do raw event bookkeeping (SEM002).
DEFAULT_TIMER_MODULES: Tuple[str, ...] = ("repro.sim",)

#: Modules in which penalty arithmetic must use named constants (SEM003).
DEFAULT_PENALTY_MODULES: Tuple[str, ...] = ("repro.core", "repro.bgp")

#: The module that *defines* the damping constants — exempt from SEM003.
DEFAULT_PARAMS_MODULES: Tuple[str, ...] = ("repro.core.params",)

#: The module allowed to flip suppression state directly (SEM007).
DEFAULT_DAMPING_MODULES: Tuple[str, ...] = ("repro.core.damping",)

#: Modules allowed to spawn worker processes (DET010): the deterministic
#: sweep executor, its content-addressed snapshot transport (which uses
#: ``multiprocessing.shared_memory``, not process fan-out), and the
#: parallel lint runner (which analyses static source text, not
#: simulation state).
DEFAULT_EXECUTOR_MODULES: Tuple[str, ...] = (
    "repro.experiments.parallel",
    "repro.experiments.snapstore",
    "repro.lint.runner",
)

#: Analysis passes by rule-id prefix; ``--pass all`` selects every one.
KNOWN_PASSES: FrozenSet[str] = frozenset({"det", "sem", "tim", "perf"})

#: Default committed profile consulted by the perflint hot-set resolver.
DEFAULT_HOT_PROFILE: str = "benchmarks/results/profile.json"

#: Phases whose wall-clock share is at or above this fraction of the
#: profiled total are "hot"; perflint findings inside their transitive
#: call closure keep warning severity, everything else downgrades to info.
DEFAULT_HOT_THRESHOLD: float = 0.05

_PASS_PREFIX = re.compile(r"^[A-Z]+")


def pass_for_rule(rule_id: str) -> str:
    """The analysis pass a rule id belongs to (``PERF003`` -> ``perf``)."""
    match = _PASS_PREFIX.match(rule_id)
    return match.group(0).lower() if match else rule_id[:3].lower()


def _module_in(module: Optional[str], packages: Tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(
        module == package or module.startswith(package + ".") for package in packages
    )


@dataclass(frozen=True)
class LintConfig:
    """Immutable options shared by every rule in one run.

    Parameters
    ----------
    select:
        If non-empty, only these rule ids run.
    ignore:
        Rule ids excluded from the run (applied after ``select``).
    passes:
        Which analysis passes run: ``det`` (determinism), ``sem``
        (protocol semantics), ``tim`` (timer lifecycle/interaction),
        ``perf`` (profile-guided hot-path performance), or any
        combination. A rule belongs to the pass its id prefix spells
        (``DET005`` -> ``det``, ``SEM003`` -> ``sem``, ``TIM001`` ->
        ``tim``, ``PERF004`` -> ``perf``).
    protected_packages:
        Dotted module prefixes in which DET007 forbids environment and
        filesystem access.
    decision_modules:
        Modules whose functions SEM001 requires to be effect-free.
    timer_modules:
        Modules exempt from SEM002 (they *are* the timer substrate).
    penalty_modules:
        Modules in which SEM003 polices magic damping constants.
    params_modules:
        Modules that define the damping constants (SEM003-exempt).
    damping_modules:
        Modules allowed to mutate suppression state directly (SEM007).
    executor_modules:
        Modules allowed to use ``multiprocessing``/``concurrent.futures``
        (DET010) — the deterministic sweep executor and the lint runner.
    hot_profile:
        Path to a :mod:`repro.trace.profile` export consulted by the
        perflint hot-set resolver; None falls back to the committed
        default when it exists.
    hot_threshold:
        Minimum wall-clock fraction for a profiled phase to count as hot.
    """

    select: FrozenSet[str] = frozenset()
    ignore: FrozenSet[str] = frozenset()
    passes: FrozenSet[str] = KNOWN_PASSES
    protected_packages: Tuple[str, ...] = DEFAULT_PROTECTED_PACKAGES
    decision_modules: Tuple[str, ...] = DEFAULT_DECISION_MODULES
    timer_modules: Tuple[str, ...] = DEFAULT_TIMER_MODULES
    penalty_modules: Tuple[str, ...] = DEFAULT_PENALTY_MODULES
    params_modules: Tuple[str, ...] = DEFAULT_PARAMS_MODULES
    damping_modules: Tuple[str, ...] = DEFAULT_DAMPING_MODULES
    executor_modules: Tuple[str, ...] = DEFAULT_EXECUTOR_MODULES
    hot_profile: Optional[str] = None
    hot_threshold: float = DEFAULT_HOT_THRESHOLD

    def validate(self, known_rule_ids: FrozenSet[str]) -> None:
        """Reject rule ids or pass names nothing provides."""
        unknown = (self.select | self.ignore) - known_rule_ids
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule id(s): {', '.join(sorted(unknown))}"
            )
        bad_passes = self.passes - KNOWN_PASSES
        if bad_passes:
            raise ConfigurationError(
                f"unknown lint pass(es): {', '.join(sorted(bad_passes))}"
            )
        if not self.passes:
            raise ConfigurationError("at least one lint pass must be enabled")

    def rule_enabled(self, rule_id: str) -> bool:
        if pass_for_rule(rule_id) not in self.passes:
            return False
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def is_protected_module(self, module: Optional[str]) -> bool:
        """True when ``module`` (dotted name) lies in a protected package."""
        return _module_in(module, self.protected_packages)

    def is_decision_module(self, module: Optional[str]) -> bool:
        return _module_in(module, self.decision_modules)

    def is_timer_module(self, module: Optional[str]) -> bool:
        return _module_in(module, self.timer_modules)

    def is_penalty_module(self, module: Optional[str]) -> bool:
        return _module_in(module, self.penalty_modules) and not _module_in(
            module, self.params_modules
        )

    def is_damping_module(self, module: Optional[str]) -> bool:
        return _module_in(module, self.damping_modules)

    def is_executor_module(self, module: Optional[str]) -> bool:
        return _module_in(module, self.executor_modules)


def make_config(
    select: Tuple[str, ...] = (),
    ignore: Tuple[str, ...] = (),
    passes: Tuple[str, ...] = ("det", "sem", "tim", "perf"),
    protected_packages: Tuple[str, ...] = DEFAULT_PROTECTED_PACKAGES,
    hot_profile: Optional[str] = None,
    hot_threshold: float = DEFAULT_HOT_THRESHOLD,
) -> LintConfig:
    """Convenience constructor used by the CLI (tuples in, frozensets out).

    ``passes`` accepts the CLI's ``--pass`` vocabulary: ``det``, ``sem``,
    ``tim``, ``perf``, or ``all`` (expanded to every known pass).
    """
    expanded = set()
    for name in passes:
        if name == "all":
            expanded.update(KNOWN_PASSES)
        else:
            expanded.add(name)
    return LintConfig(
        select=frozenset(select),
        ignore=frozenset(ignore),
        passes=frozenset(expanded),
        protected_packages=protected_packages,
        hot_profile=hot_profile,
        hot_threshold=hot_threshold,
    )

"""Configuration for a detlint run.

:class:`LintConfig` selects which rules run and tells path-scoped rules
(DET007) which packages count as the deterministic core. The defaults
match this repository's layout; tests construct narrower configs to
exercise individual rules in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError

#: Packages that must stay free of environment/filesystem access (DET007).
DEFAULT_PROTECTED_PACKAGES: Tuple[str, ...] = ("repro.core", "repro.sim", "repro.bgp")


@dataclass(frozen=True)
class LintConfig:
    """Immutable options shared by every rule in one run.

    Parameters
    ----------
    select:
        If non-empty, only these rule ids run.
    ignore:
        Rule ids excluded from the run (applied after ``select``).
    protected_packages:
        Dotted module prefixes in which DET007 forbids environment and
        filesystem access.
    """

    select: FrozenSet[str] = frozenset()
    ignore: FrozenSet[str] = frozenset()
    protected_packages: Tuple[str, ...] = DEFAULT_PROTECTED_PACKAGES

    def validate(self, known_rule_ids: FrozenSet[str]) -> None:
        """Reject rule ids that no registered rule provides."""
        unknown = (self.select | self.ignore) - known_rule_ids
        if unknown:
            raise ConfigurationError(
                f"unknown detlint rule id(s): {', '.join(sorted(unknown))}"
            )

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def is_protected_module(self, module: Optional[str]) -> bool:
        """True when ``module`` (dotted name) lies in a protected package."""
        if module is None:
            return False
        return any(
            module == package or module.startswith(package + ".")
            for package in self.protected_packages
        )


def make_config(
    select: Tuple[str, ...] = (),
    ignore: Tuple[str, ...] = (),
    protected_packages: Tuple[str, ...] = DEFAULT_PROTECTED_PACKAGES,
) -> LintConfig:
    """Convenience constructor used by the CLI (tuples in, frozensets out)."""
    return LintConfig(
        select=frozenset(select),
        ignore=frozenset(ignore),
        protected_packages=protected_packages,
    )

"""timerlint: timer-lifecycle and timer-interaction rules (TIM001..TIM010).

The paper's subject is what happens when damping's reuse/decay timers
interact with MRAI hold-offs, so the code arming those timers has to obey
a strict lifecycle and unit discipline. This pass enforces it statically:

``TIM001``  armed timer handle that never escapes and is never cancelled
``TIM002``  ``start()`` on a possibly-pending handle (double-arm)
``TIM003``  ``start()`` on a cancelled handle (re-arm after cancel)
``TIM004``  scheduled callback mutates damping state off the charge API
``TIM005``  raw numeric delay literal at an arming call site
``TIM006``  direct call of a timer-expiry internal (engine-boundary bypass)
``TIM007``  ``Timer`` constructed without ``actor``/``tag`` race labels
``TIM008``  arming delay computed by unclamped subtraction
``TIM009``  timer state compared to a string instead of ``TimerState``
``TIM010``  timer armed inside ``__init__`` (arming during construction)

TIM001..TIM003 come from a small abstract interpreter over timer handles
(:func:`analyze_timers`): each function body is executed abstractly,
tracking for every local ``Timer`` handle the set of lifecycle states it
may be in (idle / pending / fired / cancelled), joining at branches and
iterating loop bodies. The interpreter leans on the call-graph effect
inference (:mod:`repro.lint.effects`): a handle passed to an intra-file
helper whose transitive effects include ``cancels-timer`` (and not
``schedules-timer``) is treated as cancelled rather than escaped, so the
blessed "helper disarms it for me" idiom stays clean while a genuinely
dropped armed handle is flagged. TIM004 likewise propagates
"mutates damping state" transitively over the same call graph before
judging a scheduled callback.

The runtime counterpart is the opt-in timer audit
(:class:`repro.sim.timers.TimerAudit`, ``rfd-repro simulate
--audit-timers``): what this pass proves impossible statically, the audit
asserts dynamically — see ``tests/integration/test_timerlint_oracle.py``
for the cross-check and ``docs/STATIC_ANALYSIS.md`` for the catalogue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.effects import (
    CANCELS_TIMER,
    ENGINE_RECEIVERS,
    SCHEDULES_TIMER,
    EffectAnalysis,
)
from repro.lint.findings import Finding
from repro.lint.framework import FileContext, Rule, iter_calls, register

#: Timer methods that (re)arm the underlying event.
ARMING_METHODS: FrozenSet[str] = frozenset(
    {"start", "reschedule", "restart_if_idle"}
)

#: Timer-expiry internals that must only ever run as engine callbacks —
#: calling them synchronously flushes reuse/MRAI state outside the event
#: boundary (the paper's cross-timer hazard, in code form).
FIRE_INTERNALS: FrozenSet[str] = frozenset({"_fire", "_expired", "_reuse_fired"})

#: The abstract lifecycle lattice (mirrors repro.sim.timers.TimerState).
_ALL_STATES: FrozenSet[str] = frozenset({"idle", "pending", "fired", "cancelled"})

#: Attribute names whose mutation is "damping state" for TIM004.
_DAMPING_ATTRS: FrozenSet[str] = frozenset({"penalty", "suppressed"})

#: PenaltyState mutators (the charge API's own internals).
_PENALTY_MUTATORS: FrozenSet[str] = frozenset({"charge", "touch"})


def _is_timer_ctor(context: FileContext, call: ast.Call) -> bool:
    qualified = context.qualified_name(call.func)
    return qualified is not None and qualified.split(".")[-1] == "Timer"


def _receiver_last_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _timer_local_names(context: FileContext) -> FrozenSet[str]:
    """Every local name the file ever binds to a ``Timer(...)`` result —
    the receiver vocabulary for the syntactic arming-site rules."""
    names: Set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_timer_ctor(context, node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


def _is_timerish_receiver(
    receiver: ast.expr, timer_names: FrozenSet[str]
) -> bool:
    name = _receiver_last_name(receiver)
    if name is None:
        return False
    return "timer" in name.lower() or name in timer_names


def _delay_argument(call: ast.Call) -> Optional[ast.expr]:
    """The delay operand of an arming call (first positional or
    ``delay=``)."""
    if call.args:
        first = call.args[0]
        if not isinstance(first, ast.Starred):
            return first
        return None
    for keyword in call.keywords:
        if keyword.arg == "delay":
            return keyword.value
    return None


def _arming_delay_site(
    context: FileContext, call: ast.Call, timer_names: FrozenSet[str]
) -> Optional[ast.expr]:
    """The delay expression when ``call`` is a relative arming site:
    a Timer arming method, ``engine.schedule``, or ``call_soon``.
    ``schedule_at`` takes an absolute instant and is out of scope."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "call_soon" and len(call.args) >= 1:
            # call_soon(engine, cb) has no delay operand at all.
            return None
        return None
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method in {"reschedule", "restart_if_idle"}:
        return _delay_argument(call)
    if method == "start" and _is_timerish_receiver(func.value, timer_names):
        return _delay_argument(call)
    if method == "schedule":
        receiver = _receiver_last_name(func.value)
        if receiver in ENGINE_RECEIVERS:
            return _delay_argument(call)
    return None


def _numeric_constant(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal (including unary minus), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_constant(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


# ----------------------------------------------------------------------
# the abstract interpreter behind TIM001..TIM003
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimerViolation:
    """One lifecycle hazard found by the abstract interpreter."""

    kind: str  # "leak" | "double-arm" | "rearm-after-cancel"
    node: ast.AST
    handle: str
    function: str


class _HandleState:
    """What the interpreter knows about one local timer handle."""

    __slots__ = ("states", "escaped", "armed_node")

    def __init__(self) -> None:
        self.states: Set[str] = {"idle"}
        self.escaped = False
        #: The most recent arming call — the anchor for leak findings.
        self.armed_node: Optional[ast.AST] = None

    def copy(self) -> "_HandleState":
        dup = _HandleState()
        dup.states = set(self.states)
        dup.escaped = self.escaped
        dup.armed_node = self.armed_node
        return dup

    def join(self, other: "_HandleState") -> None:
        self.states |= other.states
        self.escaped = self.escaped or other.escaped
        if self.armed_node is None:
            self.armed_node = other.armed_node


_Env = Dict[str, _HandleState]


def _copy_env(env: _Env) -> _Env:
    return {name: state.copy() for name, state in env.items()}


def _join_envs(base: _Env, *others: _Env) -> _Env:
    joined = _copy_env(base)
    for env in others:
        for name, state in env.items():
            if name in joined:
                joined[name].join(state)
            else:
                joined[name] = state.copy()
    return joined


class _FunctionInterpreter:
    """Abstractly executes one function body over its timer handles."""

    def __init__(
        self,
        context: FileContext,
        qualname: str,
        owner_class: Optional[str],
        effects: EffectAnalysis,
    ) -> None:
        self._context = context
        self._qualname = qualname
        self._owner_class = owner_class
        self._effects = effects
        self.violations: List[TimerViolation] = []
        self._leak_keys: Set[Tuple[str, int, int]] = set()

    # -- reporting ------------------------------------------------------

    def _violate(self, kind: str, node: ast.AST, handle: str) -> None:
        self.violations.append(
            TimerViolation(
                kind=kind, node=node, handle=handle, function=self._qualname
            )
        )

    def _check_leaks(self, env: _Env) -> None:
        """Run at every return point: an armed, never-escaped, un-cancelled
        handle about to be dropped can never be disarmed again."""
        for name, state in env.items():
            if state.escaped or state.armed_node is None:
                continue
            if "pending" not in state.states:
                continue
            anchor = state.armed_node
            key = (
                name,
                getattr(anchor, "lineno", 0),
                getattr(anchor, "col_offset", 0),
            )
            if key in self._leak_keys:
                continue
            self._leak_keys.add(key)
            self._violate("leak", anchor, name)

    # -- callee resolution ---------------------------------------------

    def _callee_effects(self, func: ast.expr) -> Optional[FrozenSet[str]]:
        """Transitive effects of an intra-file callee, when resolvable."""
        qualname: Optional[str] = None
        if isinstance(func, ast.Name):
            qualname = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self._owner_class is not None
        ):
            qualname = f"{self._owner_class}.{func.attr}"
        if qualname is None:
            return None
        record = self._effects.function(qualname)
        return None if record is None else record.transitive

    # -- expression walking --------------------------------------------

    def _escape_handle(self, env: _Env, name: str) -> None:
        state = env.get(name)
        if state is not None:
            state.escaped = True
            state.states = set(_ALL_STATES)

    def _process_call(self, call: ast.Call, env: _Env) -> None:
        func = call.func
        receiver_name: Optional[str] = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in env
        ):
            receiver_name = func.value.id
        if receiver_name is not None:
            assert isinstance(func, ast.Attribute)
            self._transition(call, func.attr, env, receiver_name)
        else:
            self._process_expr(func, env)
        callee_effects = self._callee_effects(func)
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in env:
                state = env[arg.id]
                if (
                    callee_effects is not None
                    and CANCELS_TIMER in callee_effects
                    and SCHEDULES_TIMER not in callee_effects
                ):
                    # The helper's only timer effect is disarming: model
                    # the handle as cancelled instead of lost.
                    state.states = {"cancelled"}
                else:
                    self._escape_handle(env, arg.id)
            else:
                self._process_expr(arg, env)

    def _transition(
        self, call: ast.Call, method: str, env: _Env, name: str
    ) -> None:
        state = env[name]
        if method == "start":
            if "pending" in state.states:
                self._violate("double-arm", call, name)
            elif state.states == {"cancelled"}:
                self._violate("rearm-after-cancel", call, name)
            state.states = {"pending"}
            state.armed_node = call
        elif method == "reschedule" or method == "restart_if_idle":
            state.states = {"pending"}
            state.armed_node = call
        elif method == "cancel":
            state.states = {"cancelled"}
        else:
            # Unknown method on the handle: havoc its lifecycle state but
            # keep tracking (attribute queries do not reach here — only
            # calls do, and e.g. a fixture's helper method could do
            # anything to the timer). Arguments are processed by the
            # caller (_process_call), not here.
            state.states = set(_ALL_STATES)

    def _process_expr(self, node: Optional[ast.AST], env: _Env) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._process_call(node, env)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in env:
                # A bare use we do not model (container literal, compare,
                # return value, closure...) — assume the handle escapes.
                self._escape_handle(env, node.id)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in env:
                return  # benign query: t.is_pending, t.state, t.expiry...
            self._process_expr(node.value, env)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure may capture the handle; escape every captured one.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in env:
                    self._escape_handle(env, sub.id)
            return
        for child in ast.iter_child_nodes(node):
            self._process_expr(child, env)

    # -- statement walking ---------------------------------------------

    def _kill_target(self, target: ast.expr, env: _Env) -> None:
        if isinstance(target, ast.Name):
            env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._kill_target(element, env)

    def _exec_assign(
        self, targets: Sequence[ast.expr], value: Optional[ast.expr], env: _Env
    ) -> None:
        bound_ctor = (
            value is not None
            and isinstance(value, ast.Call)
            and _is_timer_ctor(self._context, value)
        )
        if not bound_ctor:
            self._process_expr(value, env)
        else:
            assert isinstance(value, ast.Call)
            for arg in list(value.args) + [kw.value for kw in value.keywords]:
                self._process_expr(arg, env)
        for target in targets:
            self._kill_target(target, env)
            self._process_expr(target if not isinstance(target, ast.Name) else None, env)
        if bound_ctor:
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = _HandleState()

    def _exec_block(self, stmts: Sequence[ast.stmt], env: _Env) -> Tuple[_Env, bool]:
        """Returns the post-env and whether the block terminated early."""
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._exec_assign(stmt.targets, stmt.value, env)
            elif isinstance(stmt, ast.AnnAssign):
                self._exec_assign([stmt.target], stmt.value, env)
            elif isinstance(stmt, ast.AugAssign):
                self._process_expr(stmt.value, env)
            elif isinstance(stmt, ast.Expr):
                self._process_expr(stmt.value, env)
            elif isinstance(stmt, ast.Return):
                if isinstance(stmt.value, ast.Name) and stmt.value.id in env:
                    self._escape_handle(env, stmt.value.id)
                else:
                    self._process_expr(stmt.value, env)
                self._check_leaks(env)
                return env, True
            elif isinstance(stmt, ast.If):
                self._process_expr(stmt.test, env)
                then_env, then_done = self._exec_block(stmt.body, _copy_env(env))
                else_env, else_done = self._exec_block(stmt.orelse, _copy_env(env))
                if then_done and else_done:
                    return _join_envs(then_env, else_env), True
                if then_done:
                    env = else_env
                elif else_done:
                    env = then_env
                else:
                    env = _join_envs(then_env, else_env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._process_expr(stmt.iter, env)
                self._kill_target(stmt.target, env)
                once, _ = self._exec_block(stmt.body, _copy_env(env))
                twice, _ = self._exec_block(stmt.body, _copy_env(once))
                env = _join_envs(env, once, twice)
                env, _ = self._exec_block(stmt.orelse, env)
            elif isinstance(stmt, ast.While):
                self._process_expr(stmt.test, env)
                once, _ = self._exec_block(stmt.body, _copy_env(env))
                twice, _ = self._exec_block(stmt.body, _copy_env(once))
                env = _join_envs(env, once, twice)
                env, _ = self._exec_block(stmt.orelse, env)
            elif isinstance(stmt, ast.Try):
                pre = _copy_env(env)
                body_env, body_done = self._exec_block(stmt.body, env)
                merged = body_env if not body_done else _copy_env(pre)
                for handler in stmt.handlers:
                    handler_env, _ = self._exec_block(
                        handler.body, _join_envs(pre, body_env)
                    )
                    merged = _join_envs(merged, handler_env)
                merged, _ = self._exec_block(stmt.orelse, merged)
                merged, _ = self._exec_block(stmt.finalbody, merged)
                env = merged
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._process_expr(item.context_expr, env)
                    if item.optional_vars is not None:
                        self._kill_target(item.optional_vars, env)
                env, done = self._exec_block(stmt.body, env)
                if done:
                    return env, True
            elif isinstance(stmt, ast.Raise):
                self._process_expr(stmt.exc, env)
                # Exception paths are excused from the leak check: the
                # error propagates and the run is over anyway.
                return env, True
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                return env, True
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._kill_target(target, env)
            elif isinstance(stmt, ast.Assert):
                self._process_expr(stmt.test, env)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._process_expr(stmt, env)
            # Import/Global/Nonlocal/Pass: nothing to do.
        return env, False

    def run(self, body: Sequence[ast.stmt]) -> None:
        env, terminated = self._exec_block(body, {})
        if not terminated:
            self._check_leaks(env)


class TimerAnalysis:
    """Lifecycle hazards of every function in one file."""

    def __init__(self, violations: List[TimerViolation]) -> None:
        self.violations = violations

    def by_kind(self, kind: str) -> List[TimerViolation]:
        return [v for v in self.violations if v.kind == kind]


def _iter_function_defs(
    tree: ast.AST,
) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
    """``(qualname, owner_class, def_node)`` for every function, matching
    the effect inference's qualname scheme."""

    def visit(
        node: ast.AST, scope: Tuple[str, ...], owner: Optional[str]
    ) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, scope + (child.name,), child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ".".join(scope + (child.name,)), owner, child
                yield from visit(child, scope + (child.name,), None)
            else:
                yield from visit(child, scope, owner)

    yield from visit(tree, (), None)


def analyze_timers(context: FileContext) -> TimerAnalysis:
    """Run the abstract interpreter over every function of the file."""
    effects = context.effect_analysis()
    violations: List[TimerViolation] = []
    for qualname, owner, def_node in _iter_function_defs(context.tree):
        assert isinstance(def_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        interpreter = _FunctionInterpreter(context, qualname, owner, effects)
        interpreter.run(def_node.body)
        violations.extend(interpreter.violations)
    violations.sort(
        key=lambda v: (
            getattr(v.node, "lineno", 0),
            getattr(v.node, "col_offset", 0),
            v.kind,
        )
    )
    return TimerAnalysis(violations)


# ----------------------------------------------------------------------
# TIM001..TIM003: interpreter-backed lifecycle rules
# ----------------------------------------------------------------------


@register
class TimerLeakRule(Rule):
    id = "TIM001"
    title = "armed timer handle is dropped without cancel or escape"
    rationale = (
        "A local Timer armed and then discarded can never be rescheduled "
        "or disarmed again: it will fire into stale state no matter what "
        "the protocol decides in between. Store the handle, cancel it, or "
        "use engine.schedule()/call_soon() for genuine fire-and-forget."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for violation in context.timer_analysis().by_kind("leak"):
            yield context.finding(
                self,
                violation.node,
                f"timer handle {violation.handle!r} is armed here but "
                f"{violation.function}() neither stores, cancels, nor "
                "returns it — the armed timer is unreachable and cannot "
                "be disarmed",
            )


@register
class TimerDoubleArmRule(Rule):
    id = "TIM002"
    title = "start() on a handle that may already be pending"
    rationale = (
        "Timer.start() raises TimerError on a pending handle at runtime; "
        "a path that can reach a second start() without an intervening "
        "cancel is a latent crash and usually means reschedule() was "
        "intended (which also preserves the paper's recharge semantics)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for violation in context.timer_analysis().by_kind("double-arm"):
            yield context.finding(
                self,
                violation.node,
                f"start() on timer handle {violation.handle!r} which may "
                "already be pending on this path — use reschedule() (or "
                "cancel first)",
            )


@register
class TimerRearmAfterCancelRule(Rule):
    id = "TIM003"
    title = "start() on a handle cancelled earlier on the same path"
    severity = "warning"
    rationale = (
        "cancel() followed by start() on the same handle silently resets "
        "the lifecycle history the audit and race detector rely on; "
        "reschedule() arms from any state and says what it means, or use "
        "a fresh Timer if the old arming truly is unrelated."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for violation in context.timer_analysis().by_kind("rearm-after-cancel"):
            yield context.finding(
                self,
                violation.node,
                f"timer handle {violation.handle!r} was cancelled on this "
                "path and is armed again with start() — prefer "
                "reschedule(), which arms from any state explicitly",
            )


# ----------------------------------------------------------------------
# TIM004: scheduled callbacks must go through the charge API
# ----------------------------------------------------------------------


def _function_nodes_by_qualname(tree: ast.AST) -> Dict[str, ast.AST]:
    return {
        qualname: node for qualname, _owner, node in _iter_function_defs(tree)
    }


def _mutates_damping_directly(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _DAMPING_ATTRS
                ):
                    return True
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            receiver = _receiver_last_name(sub.func.value)
            if (
                sub.func.attr in _PENALTY_MUTATORS
                and receiver is not None
                and "penalty" in receiver.lower()
            ):
                return True
    return False


def _damping_mutators(context: FileContext) -> FrozenSet[str]:
    """Qualnames of functions that (transitively) mutate damping state."""
    effects = context.effect_analysis()
    nodes = _function_nodes_by_qualname(context.tree)
    mutators: Set[str] = {
        qualname
        for qualname, node in nodes.items()
        if _mutates_damping_directly(node)
    }
    changed = True
    while changed:
        changed = False
        for record in effects.iter_functions():
            if record.qualname in mutators:
                continue
            if any(callee in mutators for callee in record.calls):
                mutators.add(record.qualname)
                changed = True
    return frozenset(mutators)


def _enclosing_class_name(context: FileContext, node: ast.AST) -> Optional[str]:
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current.name
        current = context.parent(current)
    return None


def _callback_argument(
    context: FileContext, call: ast.Call
) -> Optional[ast.expr]:
    """The callback operand of a callback-registering call site."""
    func = call.func
    if _is_timer_ctor(context, call):
        if len(call.args) >= 2:
            return call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "callback":
                return keyword.value
        return None
    if isinstance(func, ast.Name) and func.id == "call_soon":
        return call.args[1] if len(call.args) >= 2 else None
    if isinstance(func, ast.Attribute) and func.attr in {
        "schedule",
        "schedule_at",
    }:
        receiver = _receiver_last_name(func.value)
        if receiver in ENGINE_RECEIVERS:
            if len(call.args) >= 2:
                return call.args[1]
            for keyword in call.keywords:
                if keyword.arg == "callback":
                    return keyword.value
    return None


@register
class CallbackDampingMutationRule(Rule):
    id = "TIM004"
    title = "scheduled callback mutates damping state off the charge API"
    rationale = (
        "A timer callback that pokes .penalty/.suppressed (or calls the "
        "PenaltyState mutators) directly bypasses DampingManager's "
        "bookkeeping: no suppression record, no reuse timer, no trace "
        "causality. Only the damping module itself may do this; everyone "
        "else goes through record_update()."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.config.is_damping_module(context.module):
            return
        mutators = _damping_mutators(context)

        def resolves_to_mutator(expr: ast.expr, site: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Call):
                qualified = context.qualified_name(expr.func)
                if qualified is not None and qualified.split(".")[-1] == "partial":
                    if expr.args:
                        return resolves_to_mutator(expr.args[0], site)
                return None
            if isinstance(expr, ast.Lambda):
                if _mutates_damping_directly(expr.body):
                    return "<lambda>"
                for sub in ast.walk(expr.body):
                    if isinstance(sub, ast.Call):
                        inner = resolves_to_mutator(sub.func, site)
                        if inner is not None:
                            return inner
                return None
            if isinstance(expr, ast.Name):
                return expr.id if expr.id in mutators else None
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                owner = _enclosing_class_name(context, site)
                if owner is not None:
                    qualname = f"{owner}.{expr.attr}"
                    return qualname if qualname in mutators else None
            return None

        for call in iter_calls(context):
            callback = _callback_argument(context, call)
            if callback is None:
                continue
            culprit = resolves_to_mutator(callback, call)
            if culprit is not None:
                yield context.finding(
                    self,
                    call,
                    f"scheduled callback {culprit}() mutates damping state "
                    "directly — route penalty/suppression changes through "
                    "DampingManager.record_update() (the charge API)",
                )


# ----------------------------------------------------------------------
# TIM005..TIM010: syntactic discipline at arming/construction sites
# ----------------------------------------------------------------------


@register
class RawDelayLiteralRule(Rule):
    id = "TIM005"
    title = "raw numeric delay literal at an arming call site"
    rationale = (
        "A bare 30.0 at an arming site says nothing about units (seconds "
        "vs. half-lives vs. ticks) and drifts apart from the parameter it "
        "duplicates. Name the interval (module constant or params field); "
        "zero is exempt — it is the call_soon idiom, not an interval."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        timer_names = _timer_local_names(context)
        for call in iter_calls(context):
            delay = _arming_delay_site(context, call, timer_names)
            if delay is None:
                continue
            value = _numeric_constant(delay)
            if value is not None and value != 0.0:
                yield context.finding(
                    self,
                    delay,
                    f"raw delay literal {value!r} at an arming call — name "
                    "the interval (a module constant or a params field) so "
                    "its unit is auditable",
                )


@register
class ManualTimerFireRule(Rule):
    id = "TIM006"
    title = "direct call of a timer-expiry internal"
    rationale = (
        "Timer._fire / MraiLimiter._expired / DampingManager._reuse_fired "
        "exist to run as engine events. Calling one synchronously flushes "
        "reuse or MRAI state in the middle of whatever event is currently "
        "executing — the exact cross-timer interleaving the engine's "
        "(time, seq) ordering is there to prevent. Schedule it instead."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in FIRE_INTERNALS:
                yield context.finding(
                    self,
                    call,
                    f"direct call to timer-expiry internal {func.attr}() — "
                    "expiry handlers must run via the engine's event "
                    "boundary (schedule them; never invoke by hand)",
                )


@register
class UnlabeledTimerRule(Rule):
    id = "TIM007"
    title = "Timer constructed without actor/tag race labels"
    severity = "warning"
    rationale = (
        "The schedule-race detector can only see ties between events that "
        "carry an actor label, and the trace tooling groups by tag. An "
        "unlabeled Timer is invisible to both — every production timer "
        "names its owning router and its kind ('mrai', 'reuse', ...)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for call in iter_calls(context):
            if not _is_timer_ctor(context, call):
                continue
            keywords = {kw.arg for kw in call.keywords if kw.arg is not None}
            missing = [kw for kw in ("actor", "tag") if kw not in keywords]
            if missing:
                yield context.finding(
                    self,
                    call,
                    "Timer constructed without "
                    + " and ".join(f"{kw}=" for kw in missing)
                    + " — unlabeled timers are invisible to the "
                    "schedule-race detector",
                )


@register
class UnclampedDelaySubtractionRule(Rule):
    id = "TIM008"
    title = "arming delay computed by unclamped subtraction"
    rationale = (
        "start(deadline - now) goes negative the moment the deadline has "
        "passed and raises TimerError deep inside an event callback. "
        "Clamp with max(0.0, ...) or schedule the absolute instant with "
        "schedule_at()."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        timer_names = _timer_local_names(context)
        for call in iter_calls(context):
            delay = _arming_delay_site(context, call, timer_names)
            if (
                delay is not None
                and isinstance(delay, ast.BinOp)
                and isinstance(delay.op, ast.Sub)
            ):
                yield context.finding(
                    self,
                    delay,
                    "arming delay computed by bare subtraction — a past "
                    "deadline makes it negative and raises TimerError; "
                    "clamp with max(0.0, ...) or use schedule_at()",
                )


@register
class TimerStateStringCompareRule(Rule):
    id = "TIM009"
    title = "timer state compared to a string literal"
    rationale = (
        "Timer.state is a TimerState enum; comparing it to 'pending' is "
        "always False and silently disables whatever guard it was meant "
        "to be. Compare against TimerState members or use .is_pending."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        timer_names = _timer_local_names(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            has_state = any(
                isinstance(op, ast.Attribute)
                and op.attr == "state"
                and _is_timerish_receiver(op.value, timer_names)
                for op in operands
            )
            has_string = any(
                isinstance(op, ast.Constant) and isinstance(op.value, str)
                for op in operands
            )
            if has_state and has_string:
                yield context.finding(
                    self,
                    node,
                    "timer state compared to a string literal — TimerState "
                    "is an enum, so this comparison is always False; use "
                    "TimerState members or .is_pending",
                )


@register
class ArmInConstructorRule(Rule):
    id = "TIM010"
    title = "timer armed inside __init__"
    severity = "warning"
    rationale = (
        "Arming during construction schedules work before the owner is "
        "fully built and observable (race labels, observers, snapshots "
        "assume quiescent construction — warm-state pickling relies on "
        "it). Construct idle; arm from an explicit event or bring-up call."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        timer_names = _timer_local_names(context)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "__init__":
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                arming = False
                if isinstance(func, ast.Name) and func.id == "call_soon":
                    arming = True
                elif isinstance(func, ast.Attribute):
                    method = func.attr
                    if method in {"reschedule", "restart_if_idle"}:
                        arming = True
                    elif method == "start" and _is_timerish_receiver(
                        func.value, timer_names
                    ):
                        arming = True
                    elif method in {"schedule", "schedule_at"}:
                        arming = (
                            _receiver_last_name(func.value) in ENGINE_RECEIVERS
                        )
                if arming:
                    yield context.finding(
                        self,
                        sub,
                        "timer armed inside __init__ — construct idle and "
                        "arm from an explicit event/bring-up call so "
                        "snapshots and race labels see a quiescent object",
                    )


__all__ = [
    "ARMING_METHODS",
    "FIRE_INTERNALS",
    "TimerAnalysis",
    "TimerViolation",
    "analyze_timers",
]

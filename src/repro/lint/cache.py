"""Content-digest incremental cache for the lint engine.

One JSON file under ``.lint_cache/`` records, per source file, the
SHA-256 of the source it was computed from, the findings of the *local*
passes (det/sem/tim — pure functions of one file), the file's call-graph
summary, and the findings of the cross-file perf pass keyed additionally
by a *hot-slice digest* (the sorted hot functions of that file plus the
profile identity). The split makes invalidation exactly as transitive as
the analysis: editing one file re-lints that file's local passes, and
re-runs the perf pass only for files whose hot slice actually changed —
an edit that rewires the call graph in ``a.py`` re-analyses ``b.py``
if and only if ``b``'s hot functions differ, while a comment-only edit
elsewhere re-analyses nothing.

The whole cache is invalidated by a rule-set signature (rule ids +
:data:`RULE_SET_VERSION`, bumped whenever rule *logic* changes without
an id changing) and a config digest, so `--select`/`--ignore`/threshold
variations never alias each other's entries. A corrupt or
wrong-schema cache file is treated as empty, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding

#: Bump when any rule's logic changes in a way that alters findings
#: without changing the rule-id catalogue.
RULE_SET_VERSION = 1

#: On-disk schema of the cache file itself.
CACHE_SCHEMA = 1

#: File name inside the cache directory.
CACHE_FILENAME = "cache.json"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_signature(rule_ids: Tuple[str, ...]) -> str:
    """Identity of the rule catalogue (ids + logic version)."""
    payload = f"v{RULE_SET_VERSION}:" + ",".join(sorted(rule_ids))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config: LintConfig) -> str:
    """Stable digest over every config field that can change findings."""
    payload = json.dumps(
        {
            "select": sorted(config.select),
            "ignore": sorted(config.ignore),
            "passes": sorted(config.passes),
            "protected_packages": list(config.protected_packages),
            "decision_modules": list(config.decision_modules),
            "timer_modules": list(config.timer_modules),
            "penalty_modules": list(config.penalty_modules),
            "params_modules": list(config.params_modules),
            "damping_modules": list(config.damping_modules),
            "executor_modules": list(config.executor_modules),
            "hot_profile": config.hot_profile,
            "hot_threshold": config.hot_threshold,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def hot_slice_digest(hot_functions: List[str]) -> str:
    """Identity of one file's hot slice (the perf-pass cache key)."""
    return hashlib.sha256(
        "\n".join(sorted(hot_functions)).encode("utf-8")
    ).hexdigest()


def finding_from_dict(data: Mapping[str, object]) -> Finding:
    return Finding(
        rule_id=str(data["rule"]),
        message=str(data["message"]),
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data.get("col", 0)),  # type: ignore[arg-type]
        end_line=int(data.get("end_line", 0)),  # type: ignore[arg-type]
        severity=str(data.get("severity", "error")),
        suppressed=bool(data.get("suppressed", False)),
        baselined=bool(data.get("baselined", False)),
    )


def _findings_out(findings: List[Finding]) -> List[Dict[str, object]]:
    return [finding.as_dict() for finding in findings]


def _findings_in(data: object) -> Optional[List[Finding]]:
    if not isinstance(data, list):
        return None
    try:
        return [finding_from_dict(entry) for entry in data]
    except (KeyError, TypeError, ValueError):
        return None


class LintCache:
    """Per-file findings/summaries keyed by content digests.

    ``local_hits``/``local_misses``/``perf_hits``/``perf_misses`` are
    exposed so the benchmark and the CI self-check can assert the warm
    path actually short-circuits.
    """

    def __init__(
        self,
        directory: str,
        rules_sig: str,
        config_sig: str,
    ) -> None:
        self.directory = directory
        self.path = os.path.join(directory, CACHE_FILENAME)
        self._rules_sig = rules_sig
        self._config_sig = config_sig
        self._files: Dict[str, Dict[str, object]] = {}
        self.local_hits = 0
        self.local_misses = 0
        self.perf_hits = 0
        self.perf_misses = 0
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("schema") != CACHE_SCHEMA:
            return
        if data.get("rules") != self._rules_sig:
            return
        if data.get("config") != self._config_sig:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = {
                str(path): entry
                for path, entry in files.items()
                if isinstance(entry, dict)
            }

    def save(self, keep_paths: Optional[List[str]] = None) -> None:
        """Persist the cache (optionally pruned to ``keep_paths``)."""
        if keep_paths is not None:
            keep = set(keep_paths)
            self._files = {
                path: entry for path, entry in self._files.items() if path in keep
            }
        os.makedirs(self.directory, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "rules": self._rules_sig,
            "config": self._config_sig,
            "files": self._files,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, self.path)

    def _entry(self, path: str, sha: str) -> Optional[Dict[str, object]]:
        entry = self._files.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        return entry

    # -- local (det/sem/tim) pass -------------------------------------

    def local_result(
        self, path: str, sha: str
    ) -> Optional[
        Tuple[List[Finding], List[Finding], Optional[str], Optional[Dict[str, object]]]
    ]:
        """Cached ``(findings, suppressed, parse_error, summary)``."""
        entry = self._entry(path, sha)
        if entry is None:
            self.local_misses += 1
            return None
        local = entry.get("local")
        if not isinstance(local, dict):
            self.local_misses += 1
            return None
        findings = _findings_in(local.get("findings"))
        suppressed = _findings_in(local.get("suppressed"))
        if findings is None or suppressed is None:
            self.local_misses += 1
            return None
        parse_error = entry.get("parse_error")
        summary = entry.get("summary")
        self.local_hits += 1
        return (
            findings,
            suppressed,
            str(parse_error) if parse_error is not None else None,
            summary if isinstance(summary, dict) else None,
        )

    def store_local(
        self,
        path: str,
        sha: str,
        findings: List[Finding],
        suppressed: List[Finding],
        parse_error: Optional[str],
        summary: Optional[Dict[str, object]],
    ) -> None:
        self._files[path] = {
            "sha": sha,
            "parse_error": parse_error,
            "summary": summary,
            "local": {
                "findings": _findings_out(findings),
                "suppressed": _findings_out(suppressed),
            },
        }

    # -- perf pass -----------------------------------------------------

    def perf_result(
        self, path: str, sha: str, hot_digest: str
    ) -> Optional[Tuple[List[Finding], List[Finding]]]:
        """Cached perf ``(findings, suppressed)`` for one hot slice."""
        entry = self._entry(path, sha)
        if entry is None:
            self.perf_misses += 1
            return None
        perf = entry.get("perf")
        if not isinstance(perf, dict) or perf.get("hot_digest") != hot_digest:
            self.perf_misses += 1
            return None
        findings = _findings_in(perf.get("findings"))
        suppressed = _findings_in(perf.get("suppressed"))
        if findings is None or suppressed is None:
            self.perf_misses += 1
            return None
        self.perf_hits += 1
        return findings, suppressed

    def store_perf(
        self,
        path: str,
        sha: str,
        hot_digest: str,
        findings: List[Finding],
        suppressed: List[Finding],
    ) -> None:
        entry = self._entry(path, sha)
        if entry is None:
            return
        entry["perf"] = {
            "hot_digest": hot_digest,
            "findings": _findings_out(findings),
            "suppressed": _findings_out(suppressed),
        }


__all__ = [
    "CACHE_FILENAME",
    "CACHE_SCHEMA",
    "RULE_SET_VERSION",
    "LintCache",
    "config_digest",
    "finding_from_dict",
    "hot_slice_digest",
    "rules_signature",
    "source_digest",
]

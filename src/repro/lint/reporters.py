"""Render a :class:`~repro.lint.findings.LintReport` for humans or tools.

The text reporter is what ``rfd-repro lint`` prints; the JSON reporter
feeds editors and the CI findings artifact. Both are pure functions of
the report so they stay trivially testable.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import LintReport
from repro.lint.rules import iter_rules


def render_text(report: LintReport, show_info: bool = False) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary.

    Error- and warning-severity findings are always listed; info-severity
    findings (perflint hazards outside the hot set) are advisory, so by
    default only their count appears — ``show_info`` lists them too.
    """
    lines: List[str] = []
    for path, error in report.parse_errors:
        lines.append(f"{path}: error: {error}")
    blocking = [f for f in report.findings if f.severity != "info"]
    info = [f for f in report.findings if f.severity == "info"]
    shown = report.findings if show_info else blocking
    for finding in shown:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.message}"
        )
    summary = f"{len(blocking)} finding(s) in {report.files_checked} file(s)"
    if report.warning_count:
        summary += (
            f" ({report.error_count} error(s), "
            f"{report.warning_count} warning(s))"
        )
    if info:
        summary += f", {len(info)} info"
        if not show_info:
            summary += " (--show-info to list)"
    if report.suppressed:
        summary += f", {len(report.suppressed)} suppressed"
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    if report.parse_errors:
        summary += f", {len(report.parse_errors)} parse error(s)"
    by_rule: Dict[str, int] = {}
    for finding in shown:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    if by_rule:
        summary += " [" + ", ".join(
            f"{k}: {v}" for k, v in sorted(by_rule.items())
        ) + "]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable rendering of the whole report."""
    payload: Dict[str, object] = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "finding_count": report.finding_count,
        "counts_by_rule": report.counts_by_rule(),
        "findings": [f.as_dict() for f in report.findings],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "baselined": [f.as_dict() for f in report.baselined],
        "parse_errors": [
            {"path": path, "error": error} for path, error in report.parse_errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table: id, severity, title, rationale."""
    lines: List[str] = []
    for rule in iter_rules():
        marker = f" [{rule.severity}]" if rule.severity != "error" else ""
        lines.append(f"{rule.id}{marker}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)

"""The lint driver: file discovery, parsing, suppression handling.

:func:`lint_paths` is the entry point the CLI and the tier-1 hygiene gate
share; it runs whichever passes (detlint / semlint / timerlint) the
config enables.
Suppression comments are construct-scoped::

    t = time.time()  # detlint: disable=DET001
    u = time.time()  # detlint: disable=all

A directive silences a finding when it sits on any physical line of the
flagged construct (so continuation lines of a multi-line call work), or
on a decorator line of the flagged ``def``/``class``. A suppressed
finding is still recorded (reporters show the count) but does not fail
the run.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import FileContext, Rule, all_rule_ids, iter_rules

_DIRECTIVE = "detlint:"
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".pytest_cache"})


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids disabled on that line.

    The special token ``all`` disables every rule on its line. Comments
    are found with :mod:`tokenize`, so directive-looking text inside
    string literals is ignored.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(_DIRECTIVE):
                continue
            directive = text[len(_DIRECTIVE) :].strip()
            if not directive.startswith("disable="):
                continue
            rule_ids = {
                part.strip()
                for part in directive[len("disable=") :].split(",")
                if part.strip()
            }
            suppressions.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenError:
        pass  # the AST parse already succeeded; treat as no suppressions
    return suppressions


def _decorator_lines(tree: ast.AST) -> Dict[int, List[int]]:
    """Map a decorated def/class's ``lineno`` to its decorator lines, so a
    directive on ``@decorator`` also covers findings anchored at the
    ``def`` line below it."""
    mapping: Dict[int, List[int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.decorator_list:
                mapping[node.lineno] = [
                    line
                    for decorator in node.decorator_list
                    for line in range(
                        decorator.lineno,
                        (getattr(decorator, "end_lineno", None) or decorator.lineno)
                        + 1,
                    )
                ]
    return mapping


def _disabled_rules(
    finding: Finding,
    suppressions: Dict[int, Set[str]],
    decorators: Dict[int, List[int]],
) -> Set[str]:
    """Union of directives covering any line of the flagged construct."""
    lines = list(range(finding.line, finding.end_line + 1))
    lines.extend(decorators.get(finding.line, []))
    disabled: Set[str] = set()
    for line in lines:
        disabled |= suppressions.get(line, set())
    return disabled


def module_name_for(path: str) -> Optional[str]:
    """Derive a dotted module name from a file path, if the path visibly
    contains the ``repro`` package (e.g. ``src/repro/sim/engine.py`` ->
    ``repro.sim.engine``). Returns None for paths outside the package."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    module_parts = parts[start:]
    module_parts[-1] = module_parts[-1][: -len(".py")] if module_parts[-1].endswith(
        ".py"
    ) else module_parts[-1]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts)


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint one source string; the unit of work for files and tests."""
    config = config if config is not None else LintConfig()
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_errors.append((path, f"syntax error: {exc.msg} (line {exc.lineno})"))
        return report
    if module is None:
        module = module_name_for(path)
    context = FileContext(path=path, tree=tree, config=config, module=module)
    suppressions = parse_suppressions(source)
    decorators = _decorator_lines(tree)
    active_rules = rules if rules is not None else iter_rules(config)
    findings: List[Finding] = []
    for rule in active_rules:
        findings.extend(rule.check(context))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    for finding in findings:
        disabled = _disabled_rules(finding, suppressions, decorators)
        if "all" in disabled or finding.rule_id in disabled:
            report.suppressed.append(replace(finding, suppressed=True))
        else:
            report.findings.append(finding)
    return report


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files and directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintReport:
    """Lint every Python file under ``paths`` and merge the reports."""
    config = config if config is not None else LintConfig()
    config.validate(all_rule_ids())
    rules = iter_rules(config)
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.parse_errors.append((file_path, f"unreadable: {exc}"))
            continue
        report.extend(
            lint_source(source, path=file_path, config=config, rules=rules)
        )
    return report

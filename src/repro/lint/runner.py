"""The lint driver: file discovery, parsing, suppression handling, the
incremental cache, and parallel file analysis.

:func:`lint_paths` is the entry point the CLI and the tier-1 hygiene gate
share; it runs whichever passes (detlint / semlint / timerlint /
perflint) the config enables. The det/sem/tim passes are *local* (pure
functions of one file) and are analysed per file — in worker processes
when ``jobs > 1``, over the same spawn-context conventions as the sweep
executor. The perf pass is *cross-file*: after the local phase, the
per-file call-graph summaries are stitched into a
:class:`~repro.lint.callgraph.ProjectGraph`, the hot set is resolved
from the committed profile, and the PERF rules run with that project
context. With ``cache_dir`` set, both phases consult a content-digest
cache (:mod:`repro.lint.cache`); the findings of a warm run are
digest-identical to a cold sequential run by construction, because
cached entries are keyed on exactly the inputs the analysis reads.

Suppression comments are construct-scoped and pass-prefixed::

    t = time.time()  # detlint: disable=DET001
    u = time.time()  # detlint: disable=all
    d = self.params.rates  # perflint: disable=PERF003
    x = simulate()  # lint: disable=DET001,SEM003

A pass-scoped prefix (``semlint:`` / ``timerlint:`` / ``perflint:``)
only silences ids of its own pass (``disable=all`` means "all rules of
this pass"); the generic ``lint:`` prefix — and ``detlint:``, which
predates pass scoping and stays fully generic for compatibility —
silences any listed id (``disable=all`` silences everything). A directive
silences a finding when it sits on any physical line of the flagged
construct (so continuation lines of a multi-line call work), or on a
decorator line of the flagged ``def``/``class``. A suppressed finding is
still recorded (reporters show the count) but does not fail the run.
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.cache import (
    LintCache,
    config_digest,
    hot_slice_digest,
    rules_signature,
    source_digest,
)
from repro.lint.callgraph import FileSummary, ProjectGraph, summarize_file
from repro.lint.config import LintConfig, pass_for_rule
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import FileContext, Rule, all_rule_ids, iter_rules

#: Pass-scoped directive prefixes: ids listed after ``# semlint:`` only
#: silence SEM rules; ``disable=all`` becomes the pass-scoped token
#: ``sem:all``.
_PASS_DIRECTIVES: Dict[str, str] = {
    "semlint:": "sem",
    "timerlint:": "tim",
    "perflint:": "perf",
}
#: Generic prefixes: listed ids silence any pass; ``all`` everything.
#: ``detlint:`` predates the pass-scoped prefixes and has always accepted
#: ids of every catalogue, so it stays an alias of ``lint:`` — existing
#: suppressions keep working.
_GENERIC_DIRECTIVES = ("lint:", "detlint:")

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".pytest_cache"})


def _directive_tokens(text: str, pass_name: Optional[str]) -> Set[str]:
    """Parse one ``disable=...`` payload into suppression tokens."""
    if not text.startswith("disable="):
        return set()
    tokens: Set[str] = set()
    for part in text[len("disable=") :].split(","):
        rule_id = part.strip()
        if not rule_id:
            continue
        if pass_name is None:
            tokens.add(rule_id)
        elif rule_id == "all":
            tokens.add(f"{pass_name}:all")
        elif pass_for_rule(rule_id) == pass_name:
            tokens.add(rule_id)
        # An id of another pass under a pass-scoped prefix is ignored —
        # `# semlint: disable=DET001` must not silence detlint.
    return tokens


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppression tokens active on that line.

    Tokens are rule ids, the pass-scoped ``<pass>:all``, or the global
    ``all``. Comments are found with :mod:`tokenize`, so directive-
    looking text inside string literals is ignored.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            parsed: Set[str] = set()
            for prefix, pass_name in _PASS_DIRECTIVES.items():
                if text.startswith(prefix):
                    parsed = _directive_tokens(
                        text[len(prefix) :].strip(), pass_name
                    )
                    break
            else:
                for prefix in _GENERIC_DIRECTIVES:
                    if text.startswith(prefix):
                        parsed = _directive_tokens(
                            text[len(prefix) :].strip(), None
                        )
                        break
            if parsed:
                suppressions.setdefault(token.start[0], set()).update(parsed)
    except tokenize.TokenError:
        pass  # the AST parse already succeeded; treat as no suppressions
    return suppressions


def _decorator_lines(tree: ast.AST) -> Dict[int, List[int]]:
    """Map a decorated def/class's ``lineno`` to its decorator lines, so a
    directive on ``@decorator`` also covers findings anchored at the
    ``def`` line below it."""
    mapping: Dict[int, List[int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.decorator_list:
                mapping[node.lineno] = [
                    line
                    for decorator in node.decorator_list
                    for line in range(
                        decorator.lineno,
                        (getattr(decorator, "end_lineno", None) or decorator.lineno)
                        + 1,
                    )
                ]
    return mapping


def _disabled_rules(
    finding: Finding,
    suppressions: Dict[int, Set[str]],
    decorators: Dict[int, List[int]],
) -> Set[str]:
    """Union of directives covering any line of the flagged construct."""
    lines = list(range(finding.line, finding.end_line + 1))
    lines.extend(decorators.get(finding.line, []))
    disabled: Set[str] = set()
    for line in lines:
        disabled |= suppressions.get(line, set())
    return disabled


def _is_suppressed(finding: Finding, disabled: Set[str]) -> bool:
    if "all" in disabled or finding.rule_id in disabled:
        return True
    return f"{pass_for_rule(finding.rule_id)}:all" in disabled


def module_name_for(path: str) -> Optional[str]:
    """Derive a dotted module name from a file path, if the path visibly
    contains the ``repro`` package (e.g. ``src/repro/sim/engine.py`` ->
    ``repro.sim.engine``). Returns None for paths outside the package."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    module_parts = parts[start:]
    module_parts[-1] = module_parts[-1][: -len(".py")] if module_parts[-1].endswith(
        ".py"
    ) else module_parts[-1]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts)


def _apply_suppressions(
    findings: List[Finding],
    report: LintReport,
    suppressions: Dict[int, Set[str]],
    decorators: Dict[int, List[int]],
) -> None:
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    for finding in findings:
        disabled = _disabled_rules(finding, suppressions, decorators)
        if _is_suppressed(finding, disabled):
            report.suppressed.append(replace(finding, suppressed=True))
        else:
            report.findings.append(finding)


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectGraph] = None,
) -> LintReport:
    """Lint one source string; the unit of work for files and tests.

    Cross-file rules (the perf pass) see ``project`` when the caller
    linted a whole tree; a lone file gets a single-file project built on
    the fly inside the perf analysis.
    """
    config = config if config is not None else LintConfig()
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_errors.append((path, f"syntax error: {exc.msg} (line {exc.lineno})"))
        return report
    if module is None:
        module = module_name_for(path)
    context = FileContext(
        path=path, tree=tree, config=config, module=module, project=project
    )
    suppressions = parse_suppressions(source)
    decorators = _decorator_lines(tree)
    active_rules = rules if rules is not None else iter_rules(config)
    findings: List[Finding] = []
    for rule in active_rules:
        findings.extend(rule.check(context))
    _apply_suppressions(findings, report, suppressions, decorators)
    return report


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files and directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


# ----------------------------------------------------------------------
# per-file local analysis (det/sem/tim) + call-graph summary
# ----------------------------------------------------------------------

#: Picklable result of one file's local phase: ``(path, sha, findings,
#: suppressed, parse_error, summary_dict)`` with findings as dicts.
_LocalResult = Tuple[
    str,
    str,
    List[Dict[str, object]],
    List[Dict[str, object]],
    Optional[str],
    Optional[Dict[str, object]],
]


def _local_rules(config: LintConfig) -> List[Rule]:
    return [
        rule for rule in iter_rules(config) if pass_for_rule(rule.id) != "perf"
    ]


def _perf_rules(config: LintConfig) -> List[Rule]:
    return [
        rule for rule in iter_rules(config) if pass_for_rule(rule.id) == "perf"
    ]


def _analyze_local(
    path: str, config: LintConfig, rules: Sequence[Rule], want_summary: bool
) -> _LocalResult:
    """Read + parse one file, run the local rules, summarize for the
    call graph. Never raises for per-file problems; they come back as
    ``parse_error`` rows exactly as the sequential runner reports them."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return (path, "", [], [], f"unreadable: {exc}", None)
    sha = source_digest(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            path,
            sha,
            [],
            [],
            f"syntax error: {exc.msg} (line {exc.lineno})",
            None,
        )
    module = module_name_for(path)
    context = FileContext(path=path, tree=tree, config=config, module=module)
    suppressions = parse_suppressions(source)
    decorators = _decorator_lines(tree)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    file_report = LintReport()
    _apply_suppressions(findings, file_report, suppressions, decorators)
    summary = (
        summarize_file(tree, path, module).as_dict() if want_summary else None
    )
    return (
        path,
        sha,
        [f.as_dict() for f in file_report.findings],
        [f.as_dict() for f in file_report.suppressed],
        None,
        summary,
    )


# Worker-process state for the parallel local phase, following the
# spawn-context conventions of repro.experiments.parallel: the config is
# shipped once through the initializer, rules are instantiated once per
# worker, and tasks carry only file paths.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(config: LintConfig, want_summary: bool) -> None:
    _WORKER_STATE["config"] = config
    _WORKER_STATE["rules"] = _local_rules(config)
    _WORKER_STATE["want_summary"] = want_summary


def _worker_analyze(paths: List[str]) -> List[_LocalResult]:
    config = _WORKER_STATE["config"]
    rules = _WORKER_STATE["rules"]
    want_summary = _WORKER_STATE["want_summary"]
    assert isinstance(config, LintConfig) and isinstance(rules, list)
    return [
        _analyze_local(path, config, rules, bool(want_summary))
        for path in paths
    ]


def _run_local_phase(
    pending: List[str],
    config: LintConfig,
    want_summary: bool,
    jobs: int,
) -> List[_LocalResult]:
    """Analyse ``pending`` files, in-process or over a spawn pool."""
    if jobs <= 1 or len(pending) < 2:
        rules = _local_rules(config)
        return [
            _analyze_local(path, config, rules, want_summary)
            for path in pending
        ]
    import concurrent.futures
    import multiprocessing

    workers = min(jobs, len(pending))
    context = multiprocessing.get_context("spawn")
    chunks = [pending[i::workers] for i in range(workers)]
    results: List[_LocalResult] = []
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(config, want_summary),
    ) as pool:
        for batch in pool.map(_worker_analyze, chunks):
            results.extend(batch)
    # Deterministic merge regardless of chunking/completion order.
    results.sort(key=lambda item: item[0])
    return results


# ----------------------------------------------------------------------
# the cross-file perf phase
# ----------------------------------------------------------------------


def _run_perf_file(
    path: str,
    config: LintConfig,
    rules: Sequence[Rule],
    project: ProjectGraph,
) -> Tuple[List[Finding], List[Finding]]:
    """Run the perf rules for one file with full project context."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError):
        return [], []  # already reported by the local phase
    context = FileContext(
        path=path,
        tree=tree,
        config=config,
        module=module_name_for(path),
        project=project,
    )
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    file_report = LintReport()
    _apply_suppressions(
        findings, file_report, parse_suppressions(source), _decorator_lines(tree)
    )
    return file_report.findings, file_report.suppressed


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    *,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under ``paths`` and merge the reports.

    ``cache_dir`` enables the incremental cache (typically
    ``.lint_cache``); ``jobs > 1`` parallelises the per-file local phase
    over a spawn-context process pool. Both are pure accelerators: the
    merged report is digest-identical to a cold sequential run.
    """
    config = config if config is not None else LintConfig()
    config.validate(all_rule_ids())
    files = list(iter_python_files(paths))
    want_perf = "perf" in config.passes
    perf_rules = _perf_rules(config) if want_perf else []
    want_perf = bool(perf_rules)

    cache: Optional[LintCache] = None
    if cache_dir is not None:
        cache = LintCache(
            cache_dir,
            rules_signature(tuple(sorted(all_rule_ids()))),
            config_digest(config),
        )

    # Phase A — local passes + summaries, cache-aware, parallelisable.
    shas: Dict[str, str] = {}
    local_findings: Dict[str, List[Finding]] = {}
    local_suppressed: Dict[str, List[Finding]] = {}
    parse_errors: Dict[str, Optional[str]] = {}
    summaries: Dict[str, Optional[Dict[str, object]]] = {}
    pending: List[str] = []
    for path in files:
        cached = None
        if cache is not None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                shas[path] = ""
                local_findings[path] = []
                local_suppressed[path] = []
                parse_errors[path] = f"unreadable: {exc}"
                summaries[path] = None
                continue
            sha = source_digest(source)
            shas[path] = sha
            cached = cache.local_result(path, sha)
        if cached is not None:
            findings, suppressed, parse_error, summary = cached
            local_findings[path] = findings
            local_suppressed[path] = suppressed
            parse_errors[path] = parse_error
            summaries[path] = summary
        else:
            pending.append(path)

    from repro.lint.cache import finding_from_dict

    for result in _run_local_phase(pending, config, want_perf, jobs):
        path, sha, findings_out, suppressed_out, parse_error, summary = result
        shas[path] = sha
        local_findings[path] = [finding_from_dict(f) for f in findings_out]
        local_suppressed[path] = [finding_from_dict(f) for f in suppressed_out]
        parse_errors[path] = parse_error
        summaries[path] = summary
        if cache is not None and sha:
            cache.store_local(
                path,
                sha,
                local_findings[path],
                local_suppressed[path],
                parse_error,
                summary,
            )

    # Phase B — the cross-file perf pass over the project graph.
    perf_findings: Dict[str, List[Finding]] = {}
    perf_suppressed: Dict[str, List[Finding]] = {}
    if want_perf:
        project = ProjectGraph(
            FileSummary.from_dict(summary)
            for summary in summaries.values()
            if summary is not None
        )
        from repro.lint.perf import resolve_hot_functions

        hot = resolve_hot_functions(config, project)
        # The runner resolved the hot set once for the whole run; the
        # per-file analyses read it from here instead of recomputing.
        project.hot_functions = hot  # type: ignore[attr-defined]
        for path in files:
            if parse_errors.get(path):
                perf_findings[path] = []
                perf_suppressed[path] = []
                continue
            slice_digest = hot_slice_digest(
                [name for name in hot if project.path_of(name) == path]
            )
            cached_perf = None
            if cache is not None:
                cached_perf = cache.perf_result(path, shas[path], slice_digest)
            if cached_perf is not None:
                perf_findings[path], perf_suppressed[path] = cached_perf
            else:
                found, suppressed = _run_perf_file(
                    path, config, perf_rules, project
                )
                perf_findings[path] = found
                perf_suppressed[path] = suppressed
                if cache is not None and shas.get(path):
                    cache.store_perf(
                        path, shas[path], slice_digest, found, suppressed
                    )

    # Merge, in file order, findings re-sorted per file.
    report = LintReport()
    for path in files:
        report.files_checked += 1
        error = parse_errors.get(path)
        if error is not None:
            report.parse_errors.append((path, error))
            continue
        merged = list(local_findings.get(path, ()))
        merged.extend(perf_findings.get(path, ()))
        merged.sort(key=lambda f: (f.line, f.col, f.rule_id))
        report.findings.extend(merged)
        merged_suppressed = list(local_suppressed.get(path, ()))
        merged_suppressed.extend(perf_suppressed.get(path, ()))
        merged_suppressed.sort(key=lambda f: (f.line, f.col, f.rule_id))
        report.suppressed.extend(merged_suppressed)

    if cache is not None:
        cache.save(keep_paths=files)
        report.cache_stats = {
            "local_hits": cache.local_hits,
            "local_misses": cache.local_misses,
            "perf_hits": cache.perf_hits,
            "perf_misses": cache.perf_misses,
        }
    return report

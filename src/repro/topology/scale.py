"""Internet-scale topology pipeline: synthesis, ingest, and stats.

The paper's experiments top out at 208 nodes; the real AS graph is
~75k. This module provides the two ways to get a 10k+-node
:class:`~repro.topology.model.Topology` into the simulator:

- :func:`powerlaw_topology` — a seeded preferential-attachment
  generator with a tunable attachment exponent and a fully meshed
  clique core, implemented in pure Python on a *named* RNG stream so
  the emitted edge list is bit-stable across Python and networkx
  versions (``nx.barabasi_albert_graph`` keeps no such promise, which
  matters once a generated graph is committed as a CI fixture).
- :func:`ingest_as_relationships` — a reader for CAIDA-style
  AS-relationship files (``provider|customer|-1`` / ``peer|peer|0``)
  producing a Topology plus :class:`RelationshipMap`, with
  :func:`write_as_relationships` as its inverse so generated graphs
  round-trip through the interchange format.

:func:`topology_stats` summarises either kind (degree tail, estimated
power-law exponent, relationship mix) for the ``rfd-repro topo stats``
subcommand and for sanity-checking fixtures. See docs/SCALING.md.
"""

from __future__ import annotations

import math
import pathlib
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.bgp.policy import Relationship
from repro.errors import TopologyError
from repro.sim.rng import CompactStateRandom, RngRegistry
from repro.topology.model import Topology
from repro.topology.relationships import RelationshipMap, assign_relationships

PathLike = Union[str, pathlib.Path]

#: Stream name for the generator — one draw sequence per master seed,
#: isolated from every other named stream per the detlint DET002 rules.
POWERLAW_STREAM = "topology:powerlaw"

#: Give up rejection sampling after this many tries and accept the last
#: candidate. Keeps generation deterministic and O(nodes·m) even for
#: extreme exponents, at the cost of a slight bias toward the uniform
#: kernel when the acceptance rate collapses.
_MAX_REJECTIONS = 200


def scale_node_name(index: int, total: int) -> str:
    """Canonical node name for generated scale graphs.

    Zero-padded to the width of the largest index so lexicographic and
    numeric orderings agree regardless of graph size (``as0000`` …
    ``as9999`` at 10k nodes).
    """
    width = max(3, len(str(max(total - 1, 0))))
    return f"as{index:0{width}d}"


def powerlaw_topology(
    nodes: int,
    attachment: int = 2,
    exponent: float = 1.0,
    core: int = 4,
    seed: int = 0,
    with_relationships: bool = False,
    name: Optional[str] = None,
) -> Topology:
    """Build a seeded power-law AS graph with ``nodes`` ASes.

    Growth model: the first ``core`` nodes form a clique (the transit
    core); each later node attaches to ``attachment`` distinct existing
    nodes drawn with probability proportional to ``degree**exponent``.
    ``exponent=1`` is classic Barabási–Albert (degree tail ~ ``k**-3``);
    values below 1 flatten the tail toward uniform attachment, values
    above 1 sharpen it toward winner-takes-all hubs.

    All randomness comes from the ``topology:powerlaw`` stream of a
    registry seeded with ``seed``, so the edge list is a pure function
    of the arguments — stable enough to commit generated graphs as CI
    fixtures and to compare digests across hosts and worker counts.
    """
    if nodes < 3:
        raise TopologyError(f"powerlaw topology needs >= 3 nodes, got {nodes}")
    if attachment < 1:
        raise TopologyError(f"attachment must be >= 1, got {attachment}")
    if core < max(2, attachment) or core > nodes:
        raise TopologyError(
            f"core must be in [max(2, attachment), nodes]; "
            f"got core={core} attachment={attachment} nodes={nodes}"
        )
    if exponent < 0:
        raise TopologyError(f"exponent must be >= 0, got {exponent}")

    rng = RngRegistry(seed).stream(POWERLAW_STREAM)
    names = [scale_node_name(i, nodes) for i in range(nodes)]
    degrees = [0] * nodes
    # Degree-proportional urn: node i appears degrees[i] times. Appending
    # per edge endpoint keeps draws O(1); the urn length is 2*|E|.
    urn: List[int] = []
    edges: List[Tuple[int, int]] = []

    def add_edge(a: int, b: int) -> None:
        edges.append((a, b))
        degrees[a] += 1
        degrees[b] += 1
        urn.append(a)
        urn.append(b)

    for i in range(core):
        for j in range(i + 1, core):
            add_edge(i, j)

    uniform_kernel = exponent == 0.0
    linear_kernel = exponent == 1.0
    for new in range(core, nodes):
        chosen: List[int] = []
        want = min(attachment, new)
        max_degree = float(max(degrees[:new]))
        while len(chosen) < want:
            candidate = _draw_attachment_target(
                rng, urn, degrees, new, exponent, max_degree,
                uniform_kernel, linear_kernel,
            )
            if candidate not in chosen:
                chosen.append(candidate)
        for target in chosen:
            add_edge(new, target)

    graph = nx.Graph()
    graph.add_nodes_from(names)
    graph.add_edges_from((names[a], names[b]) for a, b in edges)

    relationships = assign_relationships(graph) if with_relationships else None
    return Topology(
        name=name or f"powerlaw-{nodes}",
        graph=graph,
        relationships=relationships,
        metadata={
            "generator": "powerlaw",
            "attachment": attachment,
            "exponent": exponent,
            "core": core,
            "seed": seed,
        },
    )


def _draw_attachment_target(
    rng: CompactStateRandom,
    urn: List[int],
    degrees: List[int],
    existing: int,
    exponent: float,
    max_degree: float,
    uniform_kernel: bool,
    linear_kernel: bool,
) -> int:
    """One attachment draw with kernel ∝ degree**exponent.

    ``exponent == 1`` samples the urn directly; other exponents reweight
    by rejection: propose from the urn (∝ degree) for exponents above 1
    and uniformly for exponents below 1, then accept with the ratio of
    the target kernel to the proposal kernel, normalised by the current
    maximum degree.
    """
    if uniform_kernel:
        return rng.randrange(existing)
    if linear_kernel:
        return urn[rng.randrange(len(urn))]
    candidate = 0
    for _ in range(_MAX_REJECTIONS):
        if exponent > 1.0:
            candidate = urn[rng.randrange(len(urn))]
            accept = (degrees[candidate] / max_degree) ** (exponent - 1.0)
        else:
            candidate = rng.randrange(existing)
            accept = (degrees[candidate] / max_degree) ** exponent
        if rng.random() < accept:
            return candidate
    return candidate


# ----------------------------------------------------------------------
# CAIDA-style AS-relationship interchange
# ----------------------------------------------------------------------


def ingest_as_relationships(
    path: PathLike,
    name: Optional[str] = None,
    largest_component: bool = True,
    with_relationships: bool = True,
) -> Topology:
    """Read a CAIDA-style AS-relationship file into a Topology.

    Format (one relationship per line, ``#`` comments ignored)::

        <provider-asn>|<customer-asn>|-1
        <peer-asn>|<peer-asn>|0

    ASNs become node names via ``as<asn>``. Real relationship inference
    is noisy, so by default the graph is restricted to its largest
    connected component (the simulator requires connectivity); pass
    ``largest_component=False`` to fail loudly on disconnected input
    instead. With ``with_relationships=False`` only the graph is kept —
    useful when the file's provider edges are known to contain cycles
    that :meth:`RelationshipMap.validate_acyclic` would reject.
    """
    source = pathlib.Path(path)
    graph = nx.Graph()
    provider_edges: List[Tuple[str, str]] = []
    peer_edges: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(source.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise TopologyError(f"{source}:{lineno}: malformed line {raw!r}")
        try:
            a_num, b_num, kind = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise TopologyError(f"{source}:{lineno}: malformed line {raw!r}") from exc
        a, b = f"as{a_num}", f"as{b_num}"
        if a == b:
            raise TopologyError(f"{source}:{lineno}: self-loop on {a}")
        if kind == -1:
            provider_edges.append((a, b))
        elif kind == 0:
            peer_edges.append((a, b))
        else:
            raise TopologyError(
                f"{source}:{lineno}: unknown relationship code {kind} "
                f"(expected -1 provider|customer or 0 peer|peer)"
            )
        graph.add_edge(a, b)

    if graph.number_of_nodes() == 0:
        raise TopologyError(f"{source}: no relationships found")
    if largest_component and not nx.is_connected(graph):
        keep = max(nx.connected_components(graph), key=lambda c: (len(c), sorted(c)))
        graph = graph.subgraph(keep).copy()

    relationships: Optional[RelationshipMap] = None
    if with_relationships:
        relationships = RelationshipMap()
        for provider, customer in provider_edges:
            if provider in graph and customer in graph:
                relationships.set_provider(provider, customer)
        for a, b in peer_edges:
            if a in graph and b in graph:
                relationships.set_peers(a, b)
        relationships.validate_acyclic(graph.nodes)

    return Topology(
        name=name or source.stem,
        graph=graph,
        relationships=relationships,
        metadata={"source": str(source), "format": "as-relationships"},
    )


def write_as_relationships(topology: Topology, path: PathLike) -> None:
    """Write ``topology`` in the CAIDA-style format read by
    :func:`ingest_as_relationships` (requires relationships)."""
    if topology.relationships is None:
        raise TopologyError(
            f"topology {topology.name!r} has no relationships to serialise"
        )
    lines = [f"# {topology.name}: AS relationships (provider|customer|-1, peer|peer|0)"]
    rels = topology.relationships
    for u, v in topology.edges:
        rel = rels.relationship(u, v)
        a, b = _as_number(u), _as_number(v)
        if rel is Relationship.PEER:
            lines.append(f"{a}|{b}|0")
        elif rel is Relationship.CUSTOMER:
            lines.append(f"{a}|{b}|-1")
        else:
            lines.append(f"{b}|{a}|-1")
    pathlib.Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def _as_number(node: str) -> str:
    """The numeric ASN of an ``as<digits>`` node name (zero-padding
    dropped so the interchange file round-trips through ``as<asn>``)."""
    if not node.startswith("as") or not node[2:].isdigit():
        raise TopologyError(
            f"node {node!r} has no numeric ASN; the AS-relationship format "
            f"requires as<digits> node names"
        )
    return str(int(node[2:]))


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------


def estimate_powerlaw_exponent(degrees: List[int], d_min: int = 2) -> Optional[float]:
    """Clauset–Shalizi–Newman MLE for the degree-tail exponent.

    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >=
    ``d_min``. Returns None when fewer than two nodes qualify.
    """
    tail = [d for d in degrees if d >= d_min]
    if len(tail) < 2:
        return None
    denom = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if denom <= 0:
        return None
    return 1.0 + len(tail) / denom


def topology_stats(topology: Topology) -> Dict[str, object]:
    """Summary statistics for ``topo stats`` and fixture sanity checks."""
    degrees = sorted((int(d) for _, d in topology.graph.degree), reverse=True)
    n = topology.node_count
    stats: Dict[str, object] = {
        "name": topology.name,
        "nodes": n,
        "edges": topology.edge_count,
        "avg_degree": round(2.0 * topology.edge_count / n, 3),
        "max_degree": degrees[0],
        "median_degree": degrees[n // 2],
        "top5_degrees": degrees[:5],
        "powerlaw_exponent_mle": estimate_powerlaw_exponent(degrees),
    }
    if topology.relationships is not None:
        stats["provider_edges"] = topology.relationships.provider_edge_count
        stats["peer_edges"] = topology.relationships.peer_edge_count
    return stats

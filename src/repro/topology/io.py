"""Topology serialization.

Experiments should be repeatable from an artefact, not just a seed:
:func:`save_topology` / :func:`load_topology` round-trip a
:class:`~repro.topology.model.Topology` — nodes, edges, relationships,
metadata — through a plain-JSON document, so a generated AS graph can be
checked into a paper artefact or shared between machines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import networkx as nx

from repro.bgp.policy import Relationship
from repro.errors import TopologyError
from repro.topology.model import Topology
from repro.topology.relationships import RelationshipMap

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def topology_to_dict(topology: Topology) -> Dict:
    """JSON-serialisable representation of ``topology``."""
    document: Dict = {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "nodes": topology.nodes,
        "edges": [list(edge) for edge in topology.edges],
        "metadata": dict(topology.metadata),
    }
    if topology.relationships is not None:
        relationships: List[Dict] = []
        for u, v in topology.edges:
            rel = topology.relationships.relationship(u, v)
            if rel is Relationship.PEER:
                relationships.append({"kind": "peer", "a": u, "b": v})
            elif rel is Relationship.CUSTOMER:
                relationships.append({"kind": "provider", "provider": u, "customer": v})
            else:
                relationships.append({"kind": "provider", "provider": v, "customer": u})
        document["relationships"] = relationships
    return document


def topology_from_dict(document: Dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format version {version!r}")
    graph = nx.Graph()
    graph.add_nodes_from(document["nodes"])
    for edge in document["edges"]:
        if len(edge) != 2:
            raise TopologyError(f"malformed edge {edge!r}")
        graph.add_edge(edge[0], edge[1])
    relationships = None
    if "relationships" in document:
        relationships = RelationshipMap()
        for item in document["relationships"]:
            if item["kind"] == "peer":
                relationships.set_peers(item["a"], item["b"])
            elif item["kind"] == "provider":
                relationships.set_provider(item["provider"], item["customer"])
            else:
                raise TopologyError(f"unknown relationship kind {item['kind']!r}")
        relationships.validate_acyclic(graph.nodes)
    return Topology(
        name=document["name"],
        graph=graph,
        relationships=relationships,
        metadata=dict(document.get("metadata", {})),
    )


def save_topology(topology: Topology, path: PathLike) -> None:
    """Write ``topology`` to ``path`` as JSON."""
    payload = json.dumps(topology_to_dict(topology), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(payload + "\n", encoding="utf-8")


def load_topology(path: PathLike) -> Topology:
    """Read a topology previously written by :func:`save_topology`."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"not a topology file: {path}") from exc
    return topology_from_dict(document)

"""The paper's mesh topology: a 2-D grid with wraparound.

"A mesh topology is a 2-dimensional grid in which nodes at opposite edges
are connected, so that all nodes are topologically equal" (Section 5.1) —
i.e. a torus. The paper's main runs use 100 nodes (10×10, 200 links).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.model import Topology


def mesh_node_name(row: int, col: int) -> str:
    """Canonical node name for grid position ``(row, col)``."""
    return f"m{row:02d}x{col:02d}"


def mesh_topology(rows: int, cols: int) -> Topology:
    """Build a ``rows × cols`` torus.

    Each node connects to its four grid neighbours with wraparound, so
    every node has degree 4 (degree 2 when a dimension has length 2,
    where the wraparound edge coincides with the grid edge).
    """
    if rows < 2 or cols < 2:
        raise TopologyError(f"mesh needs at least 2x2 nodes, got {rows}x{cols}")
    graph = nx.Graph()
    for row in range(rows):
        for col in range(cols):
            graph.add_node(mesh_node_name(row, col))
    for row in range(rows):
        for col in range(cols):
            here = mesh_node_name(row, col)
            right = mesh_node_name(row, (col + 1) % cols)
            down = mesh_node_name((row + 1) % rows, col)
            if here != right:
                graph.add_edge(here, right)
            if here != down:
                graph.add_edge(here, down)
    return Topology(
        name=f"mesh-{rows}x{cols}",
        graph=graph,
        metadata={"rows": rows, "cols": cols},
    )

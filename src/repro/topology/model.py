"""The topology value object shared by generators and scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.topology.relationships import RelationshipMap


@dataclass
class Topology:
    """An undirected AS-level graph with string node names.

    ``relationships`` is populated only when the topology carries
    commercial relationships (needed by the no-valley policy).
    """

    name: str
    graph: nx.Graph
    relationships: Optional[RelationshipMap] = None
    metadata: dict = field(default_factory=dict)
    # Lazily cached sorted views. The graph is treated as immutable once
    # the Topology is constructed (scenario builders add routers to the
    # Network, never nodes to the graph), so the caches never go stale;
    # call invalidate_caches() after any deliberate in-place mutation.
    _nodes_cache: Optional[List[str]] = field(
        default=None, repr=False, compare=False
    )
    _edges_cache: Optional[List[Tuple[str, str]]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise TopologyError(f"topology {self.name!r} has no nodes")
        if not nx.is_connected(self.graph):
            raise TopologyError(f"topology {self.name!r} must be connected")
        for node in self.graph.nodes:
            if not isinstance(node, str):
                raise TopologyError(
                    f"topology {self.name!r} has non-string node {node!r}"
                )

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    @property
    def nodes(self) -> List[str]:
        if self._nodes_cache is None:
            self._nodes_cache = sorted(self.graph.nodes)
        return self._nodes_cache

    @property
    def edges(self) -> List[Tuple[str, str]]:
        if self._edges_cache is None:
            self._edges_cache = sorted(tuple(sorted(e)) for e in self.graph.edges)
        return self._edges_cache

    def invalidate_caches(self) -> None:
        """Drop the sorted node/edge caches after in-place graph edits."""
        self._nodes_cache = None
        self._edges_cache = None

    def degree(self, node: str) -> int:
        return int(self.graph.degree[node])

    def neighbors(self, node: str) -> List[str]:
        return sorted(self.graph.neighbors(node))

    def hop_distance(self, a: str, b: str) -> int:
        """Shortest-path hop count between two nodes."""
        return int(nx.shortest_path_length(self.graph, a, b))

    def nodes_at_distance(self, source: str, distance: int) -> List[str]:
        """All nodes exactly ``distance`` hops from ``source``."""
        lengths = nx.single_source_shortest_path_length(self.graph, source)
        return sorted(n for n, d in lengths.items() if d == distance)

    def eccentricity(self, source: str) -> int:
        """Greatest hop distance from ``source`` to any node."""
        lengths = nx.single_source_shortest_path_length(self.graph, source)
        return max(lengths.values())

    def degree_histogram(self) -> dict:
        """``{degree: node count}`` — used to sanity-check long tails."""
        histogram: dict = {}
        for _, degree in self.graph.degree:
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

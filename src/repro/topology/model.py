"""The topology value object shared by generators and scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.topology.relationships import RelationshipMap


@dataclass
class Topology:
    """An undirected AS-level graph with string node names.

    ``relationships`` is populated only when the topology carries
    commercial relationships (needed by the no-valley policy).
    """

    name: str
    graph: nx.Graph
    relationships: Optional[RelationshipMap] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise TopologyError(f"topology {self.name!r} has no nodes")
        if not nx.is_connected(self.graph):
            raise TopologyError(f"topology {self.name!r} must be connected")
        for node in self.graph.nodes:
            if not isinstance(node, str):
                raise TopologyError(
                    f"topology {self.name!r} has non-string node {node!r}"
                )

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    @property
    def nodes(self) -> List[str]:
        return sorted(self.graph.nodes)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def degree(self, node: str) -> int:
        return int(self.graph.degree[node])

    def neighbors(self, node: str) -> List[str]:
        return sorted(self.graph.neighbors(node))

    def hop_distance(self, a: str, b: str) -> int:
        """Shortest-path hop count between two nodes."""
        return int(nx.shortest_path_length(self.graph, a, b))

    def nodes_at_distance(self, source: str, distance: int) -> List[str]:
        """All nodes exactly ``distance`` hops from ``source``."""
        lengths = nx.single_source_shortest_path_length(self.graph, source)
        return sorted(n for n, d in lengths.items() if d == distance)

    def eccentricity(self, source: str) -> int:
        """Greatest hop distance from ``source`` to any node."""
        lengths = nx.single_source_shortest_path_length(self.graph, source)
        return max(lengths.values())

    def degree_histogram(self) -> dict:
        """``{degree: node count}`` — used to sanity-check long tails."""
        histogram: dict = {}
        for _, degree in self.graph.degree:
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

"""Topology generation: the paper's mesh and Internet-derived graphs.

- :func:`mesh_topology` — a 2-D grid with opposite edges connected (a
  torus), "so that all nodes are topologically equal" (Section 5.1).
- :func:`internet_topology` — a synthetic AS graph with a long-tailed
  degree distribution, standing in for the paper's BGP-table-derived
  topologies (see DESIGN.md's substitution notes).
- :mod:`repro.topology.relationships` — customer-provider / peer-peer
  assignment used by the no-valley policy experiment (Figure 15).
- :mod:`repro.topology.scale` — the Internet-scale pipeline: seeded
  power-law synthesis, CAIDA-style AS-relationship ingest, and summary
  stats (see docs/SCALING.md).
"""

from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.topology.relationships import RelationshipMap, assign_relationships
from repro.topology.model import Topology
from repro.topology.scale import (
    ingest_as_relationships,
    powerlaw_topology,
    topology_stats,
    write_as_relationships,
)

__all__ = [
    "RelationshipMap",
    "Topology",
    "assign_relationships",
    "ingest_as_relationships",
    "internet_topology",
    "mesh_topology",
    "powerlaw_topology",
    "topology_stats",
    "write_as_relationships",
]

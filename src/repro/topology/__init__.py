"""Topology generation: the paper's mesh and Internet-derived graphs.

- :func:`mesh_topology` — a 2-D grid with opposite edges connected (a
  torus), "so that all nodes are topologically equal" (Section 5.1).
- :func:`internet_topology` — a synthetic AS graph with a long-tailed
  degree distribution, standing in for the paper's BGP-table-derived
  topologies (see DESIGN.md's substitution notes).
- :mod:`repro.topology.relationships` — customer-provider / peer-peer
  assignment used by the no-valley policy experiment (Figure 15).
"""

from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.topology.relationships import RelationshipMap, assign_relationships
from repro.topology.model import Topology

__all__ = [
    "RelationshipMap",
    "Topology",
    "assign_relationships",
    "internet_topology",
    "mesh_topology",
]

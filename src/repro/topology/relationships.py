"""Customer-provider / peer-peer relationship assignment.

The paper's Figure 15 runs on a 208-node Internet-derived topology "in
which every pair of connected nodes is assigned a relationship as
customer-provider or peer-peer". Real AS-relationship data is inferred
from BGP tables; for a synthetic graph we assign relationships by BFS
depth from the highest-degree node:

- tree and cross edges between different depths are oriented
  *shallower = provider* (the core provides transit to the edge),
- edges between nodes at the same depth become *peer-peer*.

Depth orientation makes the provider digraph acyclic (a provider is
always strictly closer to the core), and because every non-root node has
a BFS parent, every AS has at least one provider chain to the root.
Together these guarantee the two properties Figure 15 needs: the
no-valley route system is convergent (Gao–Rexford safety), and a prefix
originated anywhere is reachable everywhere (customer routes climb to the
root, then descend to all customers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.bgp.policy import Relationship
from repro.errors import TopologyError


class RelationshipMap:
    """Lookup of each router's relationship with each neighbour.

    Stored canonically as ``{(provider, customer)}`` pairs plus a set of
    peer edges; :meth:`relationship` answers from either endpoint's
    perspective.
    """

    def __init__(self) -> None:
        self._provider_of: Dict[Tuple[str, str], None] = {}
        self._peers: Dict[Tuple[str, str], None] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def set_provider(self, provider: str, customer: str) -> None:
        """Record that ``provider`` sells transit to ``customer``."""
        if provider == customer:
            raise TopologyError(f"{provider!r} cannot be its own provider")
        key = (provider, customer)
        reverse = (customer, provider)
        if reverse in self._provider_of:
            raise TopologyError(
                f"conflicting relationship: {customer!r} is already the "
                f"provider of {provider!r}"
            )
        if self._peer_key(provider, customer) in self._peers:
            raise TopologyError(
                f"conflicting relationship: {provider!r} and {customer!r} "
                f"are already peers"
            )
        self._provider_of[key] = None

    def set_peers(self, a: str, b: str) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise TopologyError(f"{a!r} cannot peer with itself")
        if (a, b) in self._provider_of or (b, a) in self._provider_of:
            raise TopologyError(
                f"conflicting relationship: {a!r} and {b!r} already have a "
                f"customer-provider relationship"
            )
        self._peers[self._peer_key(a, b)] = None

    @staticmethod
    def _peer_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def relationship(self, router: str, neighbor: str) -> Relationship:
        """``router``'s relationship with ``neighbor`` (router's view)."""
        if (router, neighbor) in self._provider_of:
            return Relationship.CUSTOMER  # I provide for them → they're my customer
        if (neighbor, router) in self._provider_of:
            return Relationship.PROVIDER
        if self._peer_key(router, neighbor) in self._peers:
            return Relationship.PEER
        raise TopologyError(f"no relationship between {router!r} and {neighbor!r}")

    def has_relationship(self, router: str, neighbor: str) -> bool:
        return (
            (router, neighbor) in self._provider_of
            or (neighbor, router) in self._provider_of
            or self._peer_key(router, neighbor) in self._peers
        )

    def providers_of(self, router: str) -> List[str]:
        return sorted(p for (p, c) in self._provider_of if c == router)

    def customers_of(self, router: str) -> List[str]:
        return sorted(c for (p, c) in self._provider_of if p == router)

    def peers_of(self, router: str) -> List[str]:
        result = []
        for a, b in self._peers:
            if a == router:
                result.append(b)
            elif b == router:
                result.append(a)
        return sorted(result)

    @property
    def provider_edge_count(self) -> int:
        return len(self._provider_of)

    @property
    def peer_edge_count(self) -> int:
        return len(self._peers)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate_acyclic(self, nodes: Iterable[str]) -> None:
        """Raise :class:`TopologyError` if the provider digraph has a cycle
        (which would break Gao–Rexford convergence guarantees)."""
        digraph = nx.DiGraph()
        digraph.add_nodes_from(nodes)
        digraph.add_edges_from((c, p) for (p, c) in self._provider_of)
        if not nx.is_directed_acyclic_graph(digraph):
            raise TopologyError("customer-provider relationships contain a cycle")


def assign_relationships(
    graph: nx.Graph, root: Optional[str] = None
) -> RelationshipMap:
    """Assign relationships to every edge of ``graph`` by BFS depth.

    ``root`` defaults to the highest-degree node (ties broken by name) —
    the synthetic "tier-1". See the module docstring for the guarantees
    this construction provides.
    """
    if graph.number_of_nodes() == 0:
        raise TopologyError("cannot assign relationships on an empty graph")
    if not nx.is_connected(graph):
        raise TopologyError("relationship assignment requires a connected graph")
    if root is None:
        root = max(sorted(graph.nodes), key=lambda n: graph.degree[n])
    elif root not in graph:
        raise TopologyError(f"root {root!r} is not in the graph")

    depth = nx.single_source_shortest_path_length(graph, root)
    relationships = RelationshipMap()
    for u, v in graph.edges:
        if depth[u] == depth[v]:
            relationships.set_peers(u, v)
        elif depth[u] < depth[v]:
            relationships.set_provider(u, v)
        else:
            relationships.set_provider(v, u)
    relationships.validate_acyclic(graph.nodes)
    return relationships

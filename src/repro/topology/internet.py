"""Synthetic Internet-derived topologies.

The paper uses AS graphs derived from BGP routing tables (Premore's
SSFNet gallery), whose load-bearing property for this study is the
long-tailed degree distribution: a few highly connected transit hubs and
many low-degree stubs, which shapes how much path exploration different
parts of the network see. We generate that shape with preferential
attachment (Barabási–Albert), optionally enriched with extra random
peering edges to raise path diversity toward measured AS-graph levels.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.sim.rng import RngRegistry
from repro.topology.model import Topology
from repro.topology.relationships import assign_relationships


def internet_node_name(index: int) -> str:
    """Canonical node name for AS number ``index``."""
    return f"as{index:03d}"


def internet_topology(
    nodes: int,
    attachment: int = 2,
    extra_peering_fraction: float = 0.0,
    seed: int = 0,
    with_relationships: bool = False,
) -> Topology:
    """Build a power-law AS graph with ``nodes`` ASes.

    Parameters
    ----------
    nodes:
        Number of ASes (the paper uses 100 and 208).
    attachment:
        Edges each new AS brings (Barabási–Albert ``m``); 2 gives an
        average degree near 4 and a long-tailed distribution.
    extra_peering_fraction:
        Additional random edges, as a fraction of the BA edge count,
        wired preferentially between similar-degree nodes to mimic
        peering links.
    seed:
        Topology RNG seed (independent of the simulation seed).
    with_relationships:
        Assign customer-provider / peer-peer relationships (needed by the
        no-valley policy, Figure 15).
    """
    if nodes < 3:
        raise TopologyError(f"internet topology needs >= 3 nodes, got {nodes}")
    if attachment < 1 or attachment >= nodes:
        raise TopologyError(
            f"attachment must be in [1, nodes), got {attachment} for {nodes} nodes"
        )
    if extra_peering_fraction < 0:
        raise TopologyError(
            f"extra_peering_fraction must be >= 0, got {extra_peering_fraction}"
        )

    base = nx.barabasi_albert_graph(nodes, attachment, seed=seed)
    graph = nx.relabel_nodes(base, {i: internet_node_name(i) for i in base.nodes})

    if extra_peering_fraction > 0:
        _add_peering_edges(graph, extra_peering_fraction, seed)

    relationships = assign_relationships(graph) if with_relationships else None
    return Topology(
        name=f"internet-{nodes}",
        graph=graph,
        relationships=relationships,
        metadata={
            "attachment": attachment,
            "extra_peering_fraction": extra_peering_fraction,
            "seed": seed,
        },
    )


def _add_peering_edges(graph: nx.Graph, fraction: float, seed: int) -> None:
    """Add ``fraction * |E|`` random edges between similar-degree nodes."""
    rng = random.Random(seed + 1)
    target = int(graph.number_of_edges() * fraction)
    names = sorted(graph.nodes)
    attempts = 0
    added = 0
    while added < target and attempts < target * 50 + 100:
        attempts += 1
        a, b = rng.sample(names, 2)
        if graph.has_edge(a, b):
            continue
        deg_a, deg_b = graph.degree[a], graph.degree[b]
        # Prefer similar-degree pairs (peering-like); always allow small
        # degrees so stubs can multihome.
        if max(deg_a, deg_b) > 2 * max(1, min(deg_a, deg_b)) and rng.random() < 0.7:
            continue
        graph.add_edge(a, b)
        added += 1


def pick_isp(
    topology: Topology,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[str]] = None,
) -> str:
    """Randomly select a node to play the ``ispAS`` role.

    The paper "randomly select[s] a node to be the ispAS"; a plain uniform
    choice over nodes reproduces that.

    When ``rng`` is omitted the draw comes from a fresh, *named*
    ``RngRegistry`` stream (``topology:pick-isp`` under master seed 0),
    so the default is reproducible per call yet can never alias the
    sequence of any other default-seeded call site — previously both
    this function and :func:`repro.workload.patterns.pattern_by_name`
    fell back to ``random.Random(0)`` and silently shared a stream
    (the hazard detlint rule DET002 exists to catch).

    ``topology.nodes`` is a lazily cached sorted list, so repeated calls
    are O(1) after the first; callers drawing many ISPs in a tight loop
    (sweep setup on 10k-node graphs) can also pass a precomputed
    ``nodes`` sequence to skip the property lookup entirely.
    """
    chooser = rng if rng is not None else RngRegistry(0).stream("topology:pick-isp")
    candidates = nodes if nodes is not None else topology.nodes
    return chooser.choice(candidates)

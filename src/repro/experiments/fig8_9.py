"""Figures 8 and 9 — convergence time and message count vs pulse count.

The paper's headline figures: four series over n = 0..10 pulses,

- *No Damping (simulation, mesh)* — short convergence, message count
  growing linearly with n,
- *Full Damping (simulation, mesh)* — convergence far above the intended
  curve for small n (path exploration + secondary charging), snapping
  onto the intended curve past the critical point ``Nh``,
- *Full Damping (simulation, Internet)* — same trend on the
  Internet-derived topology,
- *Full Damping (calculation)* — Section 3's intended behaviour.

One sweep produces both figures; :func:`fig8_experiment` renders the
convergence-time table, :func:`fig9_experiment` the message-count table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS
from repro.experiments.base import (
    DEFAULT_SEED,
    ExperimentResult,
    SweepSeries,
    default_pulse_counts,
    internet100_config,
    mesh100_config,
    run_sweep,
)


def run_fig8_9_sweeps(
    pulse_counts: Optional[Sequence[int]] = None,
    flap_interval: float = 60.0,
    seed: int = DEFAULT_SEED,
    include_internet: bool = True,
    jobs: Optional[int] = None,
) -> Dict[str, SweepSeries]:
    """Run the three simulated series; the calculation series is free."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    sweeps: Dict[str, SweepSeries] = {}
    sweeps["no_damping_mesh"] = run_sweep(
        "No Damping (simulation, mesh)",
        mesh100_config(damping=None, seed=seed),
        counts,
        flap_interval,
        jobs=jobs,
    )
    sweeps["full_damping_mesh"] = run_sweep(
        "Full Damping (simulation, mesh)",
        mesh100_config(seed=seed),
        counts,
        flap_interval,
        jobs=jobs,
    )
    if include_internet:
        sweeps["full_damping_internet"] = run_sweep(
            "Full Damping (simulation, Internet)",
            internet100_config(seed=seed),
            counts,
            flap_interval,
            jobs=jobs,
        )
    return sweeps


def calculation_series(
    pulse_counts: Sequence[int], tup: float, flap_interval: float = 60.0
) -> List[tuple]:
    """The 'Full Damping (calculation)' series of Figure 8."""
    model = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=flap_interval, tup=tup)
    return [(n, model.predict(n).convergence_time) for n in pulse_counts]


def _build_result(
    experiment_id: str,
    title: str,
    value_header: str,
    sweeps: Dict[str, SweepSeries],
    pulse_counts: Sequence[int],
    metric: str,
    include_calculation: bool,
    flap_interval: float,
) -> ExperimentResult:
    headers = ["pulses"] + [series.label for series in sweeps.values()]
    calc: Dict[int, float] = {}
    if include_calculation:
        tup = sweeps["no_damping_mesh"].mean_warmup
        calc = dict(calculation_series(pulse_counts, tup, flap_interval))
        headers.append("Full Damping (calculation)")
    rows: List[List[object]] = []
    for n in pulse_counts:
        row: List[object] = [n]
        for series in sweeps.values():
            point = series.point(n)
            row.append(getattr(point, metric))
        if include_calculation:
            row.append(round(calc[n], 1))
        rows.append(row)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        notes=[f"values are {value_header}"],
        data={"sweeps": sweeps, "calculation": calc, "pulse_counts": list(pulse_counts)},
    )


def fig8_experiment(
    pulse_counts: Optional[Sequence[int]] = None,
    sweeps: Optional[Dict[str, SweepSeries]] = None,
    flap_interval: float = 60.0,
    include_internet: bool = True,
) -> ExperimentResult:
    """Figure 8: convergence time vs number of pulses."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    if sweeps is None:
        sweeps = run_fig8_9_sweeps(counts, flap_interval, include_internet=include_internet)
    return _build_result(
        "F8",
        "Convergence Time vs Number of Pulses",
        "seconds from the origin's final announcement to the last update",
        sweeps,
        counts,
        "convergence_time",
        include_calculation=True,
        flap_interval=flap_interval,
    )


def fig9_experiment(
    pulse_counts: Optional[Sequence[int]] = None,
    sweeps: Optional[Dict[str, SweepSeries]] = None,
    flap_interval: float = 60.0,
    include_internet: bool = True,
) -> ExperimentResult:
    """Figure 9: message count vs number of pulses."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    if sweeps is None:
        sweeps = run_fig8_9_sweeps(counts, flap_interval, include_internet=include_internet)
    return _build_result(
        "F9",
        "Message Count vs Number of Pulses",
        "total updates observed in the network from the first flap",
        sweeps,
        counts,
        "message_count",
        include_calculation=False,
        flap_interval=flap_interval,
    )


def critical_pulse_count(sweeps: Dict[str, SweepSeries], tolerance: float = 0.15) -> Optional[int]:
    """The measured ``Nh``: smallest n from which the full-damping mesh
    convergence stays within ``tolerance`` (relative) of the calculation."""
    mesh = sweeps["full_damping_mesh"]
    counts = [p.pulses for p in mesh.points]
    tup = sweeps["no_damping_mesh"].mean_warmup
    calc = dict(calculation_series(counts, tup))
    for start_index, n_start in enumerate(counts):
        if n_start == 0:
            continue
        ok = True
        for n in counts[start_index:]:
            expected = calc[n]
            measured = mesh.point(n).convergence_time
            if expected <= 0:
                continue
            if abs(measured - expected) / expected > tolerance:
                ok = False
                break
        if ok:
            return n_start
    return None

"""Figure 3 — the penalty value's evolution under a few route flaps.

The paper's Figure 3 plots, with Cisco default parameters, the penalty
at one router responding to a handful of flaps over ~2640 seconds: each
withdrawal jumps the penalty by 1000, re-announcements add nothing, the
value decays exponentially between events, the route is suppressed when
the penalty crosses 2000 and reused when it falls below 750.

This driver reproduces the curve analytically from :class:`PenaltyState`
(no network needed — Figure 3 illustrates the single-router mechanism).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.intended import IntendedBehaviorModel, pulse_events
from repro.core.params import CISCO_DEFAULTS, DampingParams
from repro.core.penalty import PenaltyState
from repro.experiments.base import ExperimentResult
from repro.metrics.report import render_series

#: Figure 3's x-axis runs 0..2640 s with ticks every 240 s.
FIG3_END = 2640.0
FIG3_SAMPLE_STEP = 240.0
FIG3_PULSES = 3
FIG3_FLAP_INTERVAL = 120.0


def fig3_experiment(
    params: DampingParams = CISCO_DEFAULTS,
    pulses: int = FIG3_PULSES,
    flap_interval: float = FIG3_FLAP_INTERVAL,
) -> ExperimentResult:
    """Drive a :class:`PenaltyState` with a flap train and sample it."""
    state = PenaltyState(params)
    events = pulse_events(pulses, flap_interval)
    for event in events:
        state.charge(event.time, event.kind)
    samples = state.sample_curve(0.0, FIG3_END, FIG3_SAMPLE_STEP)

    model = IntendedBehaviorModel(params, flap_interval=flap_interval, tup=0.0)
    trajectory = model.penalty_trajectory(events)
    peak = max(p for _, p, _ in trajectory)
    suppressed_at = next((t for t, _, s in trajectory if s), None)
    final_time, final_penalty, suppressed = trajectory[-1]
    reuse_at = (
        final_time + params.reuse_delay(final_penalty) if suppressed else None
    )

    rows: List[List[object]] = [[t, round(v, 1)] for t, v in samples]
    chart = render_series(
        [(t, v) for t, v in samples],
        title=(
            f"penalty over time (cutoff={params.cutoff_threshold:.0f}, "
            f"reuse={params.reuse_threshold:.0f})"
        ),
    )
    notes = [f"peak penalty {peak:.0f} after {pulses} pulses"]
    if suppressed_at is not None:
        notes.append(f"suppression triggered at t={suppressed_at:.0f}s")
    if reuse_at is not None:
        notes.append(f"route reused at t={reuse_at:.0f}s (penalty decayed to reuse threshold)")
    return ExperimentResult(
        experiment_id="F3",
        title="Damping Penalty vs Time (Cisco defaults)",
        headers=["time_s", "penalty"],
        rows=rows,
        extra_sections=[chart],
        notes=notes,
        data={
            "samples": samples,
            "trajectory": trajectory,
            "suppressed_at": suppressed_at,
            "reuse_at": reuse_at,
        },
    )


def penalty_samples(
    params: DampingParams,
    events: List[Tuple[float, str]],
    end: float,
    step: float,
) -> List[Tuple[float, float]]:
    """Sample the penalty curve for an explicit (time, 'down'/'up') train —
    exposed for tests and the example scripts."""
    from repro.core.params import UpdateKind

    state = PenaltyState(params)
    withdrawn = False
    for time, status in events:
        if status == "down":
            state.charge(time, UpdateKind.WITHDRAWAL)
            withdrawn = True
        else:
            kind = UpdateKind.REANNOUNCEMENT if withdrawn else UpdateKind.ATTRIBUTE_CHANGE
            state.charge(time, kind)
            withdrawn = False
    return state.sample_curve(0.0, end, step)

"""FX1: does graceful restart suppress or amplify secondary charging?

A mid-episode router crash is a burst of withdrawals that damping
charges against every affected (peer, prefix) — on top of whatever the
origin's own flapping already charged. RFC 4724's graceful restart was
designed to avoid exactly this: helpers retain the crashed peer's routes
as *stale* under a restart timer, and if the router comes back and
re-announces the same paths before the timer expires, nothing was ever
withdrawn — and nothing is charged.

This experiment runs the same crash schedule twice on the small mesh —
once with hard session resets, once with graceful restart — with the
causal tracer attached, and compares exact charge attribution
(:mod:`repro.analysis.causality`): ``fault-induced`` charges are the
crash's direct footprint, ``secondary-charging`` the reuse-wave echo.
A third no-fault baseline pins what the origin's flapping alone costs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.causality import analyze_trace
from repro.bgp.graceful_restart import GracefulRestartConfig
from repro.experiments.base import ExperimentResult, small_mesh_config
from repro.faults.plan import FaultPlan, RouterCrash
from repro.trace.tracer import Tracer
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig

#: The measured episode: a handful of origin pulses plus one crash.
FX1_PULSES = 3
FX1_FLAP_INTERVAL = 60.0
#: Crash lands inside the episode's live-route window.  MRAI (30 s)
#: delays the first re-announcement's second hop until ~t=60, and the
#: reuse wave clears second hops again after ~t=120 — so only in
#: (60, 120) do the victim's neighbours actually hold live routes from
#: it.  Crashing there means a hard reset withdraws something real,
#: and its charges land on top of the flap penalty the episode is
#: already accumulating; outside the window a crash withdraws nothing
#: and the modes are indistinguishable.
FX1_CRASH_AT = 75.0
FX1_DOWN_FOR = 30.0
#: Restart timer comfortably longer than the outage, so GR retention
#: actually covers the crash (the interesting regime).
FX1_RESTART_TIME = 120.0


def _fx1_config(graceful: bool, crash: bool) -> ScenarioConfig:
    """The shared small-mesh setup; the ISP is pinned so the crashed
    router (an ISP neighbour) is deterministic across modes."""
    base = small_mesh_config()
    isp = base.topology.nodes[0]
    plan: Optional[FaultPlan] = None
    if crash:
        victim = base.topology.neighbors(isp)[0]
        plan = FaultPlan(
            name="fx1-crash",
            crashes=(RouterCrash(router=victim, at=FX1_CRASH_AT, down_for=FX1_DOWN_FOR),),
        )
    return replace(
        base,
        isp=isp,
        faults=plan,
        graceful_restart=GracefulRestartConfig(restart_time=FX1_RESTART_TIME)
        if graceful
        else None,
        # The question under test is whether GR avoids *charging*, so
        # session-loss withdrawals must charge in the first place.
        charge_on_session_reset=True,
    )


def _run_mode(config: ScenarioConfig) -> Dict[str, object]:
    scenario = Scenario(config)
    scenario.warm_up()
    tracer = Tracer()
    result = scenario.run(
        PulseSchedule.regular(FX1_PULSES, FX1_FLAP_INTERVAL), tracer=tracer
    )
    tracer.close()
    causal = analyze_trace(tracer.records)
    stale_flushed = sum(
        router.stats.stale_routes_flushed for router in scenario.routers.values()
    )
    return {
        "causal": causal,
        "charges": dict(causal.charges_by_class),
        "messages": result.message_count,
        "drops": result.collector.drop_count,
        "suppressions": result.summary.total_suppressions,
        "secondary": causal.charges_by_class["secondary-charging"],
        "fault_induced": causal.charges_by_class["fault-induced"],
        "stale_flushed": stale_flushed,
        "convergence": result.convergence_time,
    }


def gr_faults_experiment() -> ExperimentResult:
    """FX1: charge attribution under a router crash, GR on vs off."""
    modes = [
        ("no crash (baseline)", _fx1_config(graceful=False, crash=False)),
        ("hard reset", _fx1_config(graceful=False, crash=True)),
        ("graceful restart", _fx1_config(graceful=True, crash=True)),
    ]
    rows: List[List[object]] = []
    data: Dict[str, object] = {}
    for label, config in modes:
        outcome = _run_mode(config)
        data[label] = outcome
        rows.append(
            [
                label,
                outcome["messages"],
                outcome["drops"],
                outcome["suppressions"],
                outcome["fault_induced"],
                outcome["secondary"],
                outcome["stale_flushed"],
                round(float(outcome["convergence"]), 1),  # type: ignore[arg-type]
            ]
        )
    hard = data["hard reset"]
    gr = data["graceful restart"]
    notes = [
        (
            "fault-induced charges: hard reset "
            f"{hard['fault_induced']} vs graceful restart {gr['fault_induced']} "
            "— GR retains the crashed peer's routes as stale, so a clean "
            "return re-announces the same paths as DUPLICATEs and nothing "
            "is charged"
        ),
        (
            "secondary charges: hard reset "
            f"{hard['secondary']} vs graceful restart {gr['secondary']} "
            "— fewer crash-time charges also means fewer reuse waves to echo"
        ),
    ]
    return ExperimentResult(
        experiment_id="FX1",
        title=(
            "router crash mid-episode: graceful restart vs hard reset "
            f"(5x5 mesh, crash at t={FX1_CRASH_AT:.0f}s for {FX1_DOWN_FOR:.0f}s)"
        ),
        headers=[
            "mode",
            "messages",
            "drops",
            "suppressions",
            "fault-induced charges",
            "secondary charges",
            "stale routes flushed",
            "convergence (s)",
        ],
        rows=rows,
        notes=notes,
        data=data,
    )

"""Ablations from the companion technical report (reference [15]) and the
comparisons DESIGN.md calls out:

- X1 flapping-interval sweep — how the spacing of pulses moves the
  suppression onset and the intended curve,
- X2 partial damping deployment — damping at a fraction of the nodes,
- X3 vendor parameters — Cisco vs Juniper defaults (Juniper's
  re-announcement penalty and higher cut-off shift the onset),
- X4 selective damping (Mao et al.) vs RCN — the comparator filters
  path-exploration updates but not reuse-triggered ones, so secondary
  charging survives.

Each ablation uses a reduced pulse grid to keep the full benchmark suite
fast while preserving the pre/at/post-critical-point structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import dataclasses
import random

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS
from repro.bgp.mrai import MraiConfig
from repro.experiments.base import (
    DEFAULT_SEED,
    ExperimentResult,
    SweepSeries,
    mesh100_config,
    run_sweep,
)
from repro.workload.patterns import describe_pattern, pattern_by_name
from repro.workload.scenarios import Scenario

ABLATION_PULSES = (1, 3, 5, 8)


def flap_interval_experiment(
    intervals: Sequence[float] = (30.0, 60.0, 120.0, 240.0),
    pulse_counts: Sequence[int] = ABLATION_PULSES,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X1: sweep the flapping interval on the standard mesh."""
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    for interval in intervals:
        series = run_sweep(
            f"interval={interval:.0f}s",
            mesh100_config(seed=seed),
            pulse_counts,
            flap_interval=interval,
            jobs=jobs,
        )
        data[f"interval_{interval:.0f}"] = series
        model = IntendedBehaviorModel(
            CISCO_DEFAULTS, flap_interval=interval, tup=series.mean_warmup
        )
        for point in series.points:
            rows.append(
                [
                    interval,
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                    round(model.predict(point.pulses).convergence_time, 1),
                ]
            )
    return ExperimentResult(
        experiment_id="X1",
        title="Ablation: Flapping Interval",
        headers=["interval_s", "pulses", "conv_time_s", "messages", "suppressions", "intended_s"],
        rows=rows,
        notes=[
            "longer intervals let the penalty decay between flaps, delaying "
            "(or preventing) suppression onset at the ISP",
        ],
        data=data,
    )


def partial_deployment_experiment(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    pulse_counts: Sequence[int] = ABLATION_PULSES,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X2: damping deployed at a fraction of the mesh's routers."""
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    for fraction in fractions:
        series = run_sweep(
            f"deployment={fraction:.0%}",
            mesh100_config(seed=seed, damping_fraction=fraction),
            pulse_counts,
            jobs=jobs,
        )
        data[f"fraction_{fraction}"] = series
        for point in series.points:
            rows.append(
                [
                    f"{fraction:.0%}",
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                ]
            )
    return ExperimentResult(
        experiment_id="X2",
        title="Ablation: Partial Damping Deployment",
        headers=["deployment", "pulses", "conv_time_s", "messages", "suppressions"],
        rows=rows,
        notes=[
            "the ISP always damps; fewer damping routers means fewer false "
            "suppressions but less update containment",
        ],
        data=data,
    )


def vendor_params_experiment(
    pulse_counts: Sequence[int] = ABLATION_PULSES,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X3: Cisco vs Juniper default parameters on the standard mesh."""
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    for label, params in (("cisco", CISCO_DEFAULTS), ("juniper", JUNIPER_DEFAULTS)):
        series = run_sweep(
            label, mesh100_config(damping=params, seed=seed), pulse_counts, jobs=jobs
        )
        data[label] = series
        model = IntendedBehaviorModel(params, tup=series.mean_warmup)
        for point in series.points:
            rows.append(
                [
                    label,
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                    round(model.predict(point.pulses).convergence_time, 1),
                ]
            )
    return ExperimentResult(
        experiment_id="X3",
        title="Ablation: Vendor Damping Parameters",
        headers=["vendor", "pulses", "conv_time_s", "messages", "suppressions", "intended_s"],
        rows=rows,
        notes=[
            "Juniper penalises re-announcements (P_A=1000) but cuts off at "
            "3000, shifting both the suppression onset and the reuse delay",
        ],
        data=data,
    )


def flap_pattern_experiment(
    patterns: Sequence[str] = ("regular", "poisson", "jittered", "burst"),
    pulses: int = 5,
    flap_interval: float = 60.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """X5: flap *pattern* sweep — regular vs Poisson vs jittered vs bursty.

    The paper notes "unstable destinations exhibit different flapping
    patterns"; this ablation drives the standard mesh with the same
    nominal instability under four temporal shapes.
    """
    rows: List[List[object]] = []
    data: Dict[str, object] = {}
    for name in patterns:
        schedule = pattern_by_name(
            name, pulses, flap_interval, random.Random(seed)
        )
        scenario = Scenario(mesh100_config(seed=seed))
        scenario.warm_up()
        result = scenario.run(schedule)
        stats = describe_pattern(schedule)
        rows.append(
            [
                name,
                schedule.pulse_count,
                round(stats["mean_gap"] or 0.0, 1),
                round(result.convergence_time, 1),
                result.message_count,
                result.summary.total_suppressions,
                result.summary.secondary_charges,
            ]
        )
        data[name] = {"schedule": schedule, "result": result}
    return ExperimentResult(
        experiment_id="X5",
        title="Ablation: Flap Patterns (regular / poisson / jittered / burst)",
        headers=[
            "pattern",
            "pulses",
            "mean_gap_s",
            "conv_time_s",
            "messages",
            "suppressions",
            "secondary_charges",
        ],
        rows=rows,
        notes=[
            "temporal shape matters: bursty flapping concentrates charges "
            "(fast suppression onset), long Poisson gaps let penalties decay",
        ],
        data=data,
    )


def mrai_withdrawal_experiment(
    pulse_counts: Sequence[int] = (1, 3),
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X6: rate-limiting withdrawals under MRAI (WRATE) vs not.

    Cisco-era BGP sent withdrawals immediately; applying MRAI to them too
    slows the bad news down, changing how much exploration (and hence
    false suppression) a flap causes.
    """
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    for label, apply_to_withdrawals in (("immediate", False), ("rate-limited", True)):
        config = dataclasses.replace(
            mesh100_config(seed=seed),
            mrai=MraiConfig(base=30.0, apply_to_withdrawals=apply_to_withdrawals),
        )
        series = run_sweep(label, config, pulse_counts, jobs=jobs)
        data[label] = series
        for point in series.points:
            rows.append(
                [
                    label,
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                ]
            )
    return ExperimentResult(
        experiment_id="X6",
        title="Ablation: MRAI Applied to Withdrawals (WRATE)",
        headers=["withdrawals", "pulses", "conv_time_s", "messages", "suppressions"],
        rows=rows,
        notes=["both variants must converge; dynamics differ in degree"],
        data=data,
    )


def sensitivity_experiment(
    cutoffs: Sequence[float] = (2000.0, 3000.0, 4000.0, 6000.0),
    half_lives_min: Sequence[float] = (10.0, 15.0, 30.0),
    flap_interval: float = 60.0,
) -> ExperimentResult:
    """X7: the Section 3 tuning trade-off, mapped with the intended model.

    For cut-off and half-life sweeps, report how many flaps the ISP
    tolerates before suppressing and the delay paid once it does.
    """
    from repro.analysis.sensitivity import evaluate_params, sweep_parameter

    rows: List[List[object]] = []
    points = sweep_parameter(
        CISCO_DEFAULTS, "cutoff_threshold", list(cutoffs), flap_interval
    )
    points += sweep_parameter(
        CISCO_DEFAULTS,
        "half_life",
        [m * 60.0 for m in half_lives_min],
        flap_interval,
    )
    points.append(evaluate_params("juniper-defaults", JUNIPER_DEFAULTS, flap_interval))
    for point in points:
        rows.append(
            [
                point.label,
                point.suppression_onset if point.suppression_onset else "never",
                round(point.delay_at_onset, 1),
                round(point.delay_sustained, 1),
            ]
        )
    return ExperimentResult(
        experiment_id="X7",
        title="Ablation: Damping Parameter Sensitivity (intended model)",
        headers=["configuration", "suppression_onset", "delay_at_onset_s", "delay_sustained_s"],
        rows=rows,
        notes=[
            "raising the cut-off tolerates more flaps; the sustained delay "
            "is capped by the max hold-down regardless",
        ],
        data={"points": points},
    )


def distance_profile_experiment(
    pulses: int = 1,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """X8: convergence vs hop distance from the ISP (mesh, single pulse).

    Quantifies the paper's framing that routers far from the origin see
    the most false suppression and the longest settling times.
    """
    from repro.analysis.distance import convergence_by_distance
    from repro.workload.pulses import PulseSchedule

    scenario = Scenario(mesh100_config(seed=seed))
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(pulses, 60.0))
    buckets = convergence_by_distance(scenario, result)
    rows = [
        [
            bucket.hops,
            bucket.router_count,
            round(bucket.mean_settle, 1),
            round(bucket.max_settle, 1),
            bucket.routers_with_suppression,
        ]
        for bucket in buckets
    ]
    return ExperimentResult(
        experiment_id="X8",
        title=f"Ablation: Convergence vs Distance from ISP ({pulses} pulse)",
        headers=["hops", "routers", "mean_settle_s", "max_settle_s", "with_suppression"],
        rows=rows,
        notes=[
            "settling time of a router = its last Loc-RIB change minus the "
            "origin's final announcement",
        ],
        data={"buckets": buckets, "result": result},
    )


def heterogeneous_params_experiment(
    pulse_counts: Sequence[int] = (1, 3, 5),
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X9: inconsistent damping parameters across routers.

    Section 7 of the paper: routers with more aggressive parameters
    suppress longer; when a less aggressive neighbour reuses its route
    first, the resulting announcement re-charges the aggressive router's
    timer — secondary charging *without* path exploration. We deploy
    Cisco defaults on half the mesh (checkerboard) and Juniper defaults
    on the other half, with and without RCN.
    """
    base_config = mesh100_config(seed=seed)
    nodes = base_config.topology.nodes
    overrides = {name: JUNIPER_DEFAULTS for index, name in enumerate(nodes) if index % 2}
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    variants = (
        ("uniform-cisco", None, False),
        ("mixed", overrides, False),
        ("mixed+rcn", overrides, True),
    )
    for label, override_map, rcn in variants:
        config = dataclasses.replace(
            mesh100_config(rcn=rcn, seed=seed), damping_overrides=override_map
        )
        series = run_sweep(label, config, pulse_counts, jobs=jobs)
        data[label] = series
        for point in series.points:
            rows.append(
                [
                    label,
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                    point.secondary_charges,
                ]
            )
    return ExperimentResult(
        experiment_id="X9",
        title="Ablation: Heterogeneous Damping Parameters (Cisco/Juniper mix)",
        headers=[
            "deployment",
            "pulses",
            "conv_time_s",
            "messages",
            "suppressions",
            "secondary_charges",
        ],
        rows=rows,
        notes=[
            "parameter diversity is an independent source of reuse-timer "
            "interaction; RCN filters the reuse-triggered charges either way",
        ],
        data=data,
    )


def isp_placement_experiment(
    pulse_counts: Sequence[int] = (1, 3, 5),
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X10: where the unstable customer attaches matters.

    The paper attaches the origin to a *randomly* selected ISP. On a
    long-tailed AS graph the choice is consequential: a hub ISP has many
    peers (wide blast radius, much exploration), a stub ISP funnels
    everything through one upstream. We pin the ISP to the
    highest-degree and a lowest-degree node of the Internet-derived
    topology and compare.
    """
    from repro.experiments.base import internet100_config

    base = internet100_config(seed=seed)
    nodes = base.topology.nodes
    hub = max(nodes, key=lambda n: base.topology.degree(n))
    stub = min(nodes, key=lambda n: base.topology.degree(n))
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    for label, isp in (("hub", hub), ("stub", stub)):
        config = dataclasses.replace(internet100_config(seed=seed), isp=isp)
        series = run_sweep(f"{label} ({isp}, deg {base.topology.degree(isp)})",
                           config, pulse_counts, jobs=jobs)
        data[label] = series
        for point in series.points:
            rows.append(
                [
                    label,
                    base.topology.degree(isp),
                    point.pulses,
                    round(point.convergence_time, 1),
                    point.message_count,
                    point.suppressions,
                ]
            )
    return ExperimentResult(
        experiment_id="X10",
        title="Ablation: ISP Placement (hub vs stub attachment)",
        headers=["placement", "isp_degree", "pulses", "conv_time_s", "messages", "suppressions"],
        rows=rows,
        notes=[
            "a hub attachment floods updates through many peers at once; "
            "a stub attachment serialises them through one upstream",
        ],
        data=data,
    )


def selective_damping_experiment(
    pulse_counts: Sequence[int] = ABLATION_PULSES,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """X4: selective damping (Mao et al.) vs plain damping vs RCN."""
    rows: List[List[object]] = []
    data: Dict[str, SweepSeries] = {}
    series_by_label = {
        "plain": run_sweep("plain", mesh100_config(seed=seed), pulse_counts, jobs=jobs),
        "selective": run_sweep(
            "selective", mesh100_config(selective=True, seed=seed), pulse_counts, jobs=jobs
        ),
        "rcn": run_sweep("rcn", mesh100_config(rcn=True, seed=seed), pulse_counts, jobs=jobs),
    }
    data.update(series_by_label)
    for n in pulse_counts:
        rows.append(
            [
                n,
                round(series_by_label["plain"].point(n).convergence_time, 1),
                round(series_by_label["selective"].point(n).convergence_time, 1),
                round(series_by_label["rcn"].point(n).convergence_time, 1),
                series_by_label["plain"].point(n).secondary_charges,
                series_by_label["selective"].point(n).secondary_charges,
                series_by_label["rcn"].point(n).secondary_charges,
            ]
        )
    return ExperimentResult(
        experiment_id="X4",
        title="Comparator: Selective Damping vs RCN",
        headers=[
            "pulses",
            "plain_conv_s",
            "selective_conv_s",
            "rcn_conv_s",
            "plain_sec_chg",
            "selective_sec_chg",
            "rcn_sec_chg",
        ],
        rows=rows,
        notes=[
            "selective damping filters some path-exploration penalties but "
            "(as the paper observes) does not address secondary charging; "
            "RCN removes both",
        ],
        data=data,
    )

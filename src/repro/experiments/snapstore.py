"""Content-addressed snapshot transport for the sweep executor.

A warm-state snapshot blob is identical for every point of a sweep (and
for every sweep over the same config), so it should cross the process
boundary **zero** times per point. This module gives the executor a
content-addressed store: the parent publishes a blob once under its
SHA-256 digest, ships workers only a tiny :class:`SnapshotHandle`
(kind + key + digest, ~100 bytes), and each worker fetches the bytes at
most once per digest — every later point of every later chunk reuses
the worker-local cache.

Three transports, selected by ``--snapshot-transport``:

``shm``
    ``multiprocessing.shared_memory``: the parent writes the blob into
    a named segment; workers attach by name and copy it out. Zero
    filesystem traffic; the parent owns the segment's lifetime and
    unlinks it at interpreter exit. Spawn workers share the parent's
    resource-tracker process, so attaching never double-registers and
    workers must never unregister — the publisher's unlink is the only
    lifecycle event.
``spill``
    A file ``<tmpdir>/<digest>.snap`` written once (atomically) by the
    parent; workers read it. Repeated reads are served from the OS page
    cache. The fallback wherever shared memory is unavailable.
``inline``
    The blob rides inside the handle itself — one pickle per pool, the
    pre-transport behaviour. Kept as the degenerate fallback and for
    the hardening tests' in-process fake pools.

``auto`` resolves to ``shm`` when the platform supports it, else
``spill``. Publishing is idempotent per (transport, digest) and the
published registry is module-level, so multi-sweep runs (e.g. ablation
grids replaying one config through ``WarmStateCache``) publish once
across executor instances.

Workers verify the fetched bytes against the handle's digest (one
re-read on mismatch) before caching, so a trashed segment or truncated
spill file surfaces as a loud error instead of a corrupt episode.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError

try:  # pragma: no cover - import probe, platform-dependent
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - very old / exotic platforms
    _shared_memory = None  # type: ignore[assignment]

#: Accepted ``--snapshot-transport`` values.
TRANSPORTS = ("auto", "shm", "spill", "inline")

#: Blobs a worker keeps decoded-source bytes for; sweeps touch one
#: snapshot at a time, so a small LRU covers interleaved multi-config
#: grids without letting a long-lived worker accumulate every blob ever.
_FETCH_CACHE_MAX = 4


def blob_digest(blob: bytes) -> str:
    """The content address of a snapshot blob (SHA-256 hex)."""
    return hashlib.sha256(blob).hexdigest()


def resolve_transport(requested: str) -> str:
    """Normalise a transport name, resolving ``auto`` for this host."""
    if requested not in TRANSPORTS:
        raise ConfigurationError(
            f"snapshot_transport must be one of {TRANSPORTS}, got {requested!r}"
        )
    if requested != "auto":
        return requested
    return "shm" if _shared_memory is not None else "spill"


@dataclass(frozen=True)
class SnapshotHandle:
    """A picklable reference to a published blob — what crosses the
    process boundary instead of the blob itself.

    ``key`` is the shared-memory segment name or the spill file path;
    ``payload`` carries the bytes only for the ``inline`` kind.
    """

    kind: str
    key: str
    size: int
    digest: str
    payload: Optional[bytes] = None


# ----------------------------------------------------------------------
# parent side: publish
# ----------------------------------------------------------------------


class SnapshotPublisher:
    """Owns published segments/spill files for one parent process."""

    def __init__(self) -> None:
        self._handles: Dict[Tuple[str, str], SnapshotHandle] = {}
        self._segments: Dict[str, object] = {}
        self._spill_dir: Optional[str] = None

    def publish(self, blob: bytes, transport: str) -> SnapshotHandle:
        """Make ``blob`` fetchable and return its handle (idempotent)."""
        kind = resolve_transport(transport)
        digest = blob_digest(blob)
        cached = self._handles.get((kind, digest))
        if cached is not None:
            return cached
        if kind == "shm":
            handle = self._publish_shm(blob, digest)
        elif kind == "spill":
            handle = self._publish_spill(blob, digest)
        else:
            handle = SnapshotHandle("inline", "", len(blob), digest, payload=blob)
        self._handles[(handle.kind, digest)] = handle
        return handle

    def _publish_shm(self, blob: bytes, digest: str) -> SnapshotHandle:
        if _shared_memory is None:
            return self._publish_spill(blob, digest)
        name = f"rfdsnap_{os.getpid()}_{digest[:16]}"
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=len(blob)
            )
        except (OSError, ValueError):
            # No /dev/shm, size limits, name clash from a dead run —
            # degrade to the spill directory rather than failing a sweep.
            return self._publish_spill(blob, digest)
        segment.buf[: len(blob)] = blob
        self._segments[name] = segment
        return SnapshotHandle("shm", name, len(blob), digest)

    def _publish_spill(self, blob: bytes, digest: str) -> SnapshotHandle:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="rfd-snapshots-")
        path = os.path.join(self._spill_dir, f"{digest}.snap")
        if not os.path.exists(path):
            # Atomic publish: a worker never observes a half-written blob.
            scratch = path + ".tmp"
            with open(scratch, "wb") as handle:
                handle.write(blob)
            os.replace(scratch, path)
        return SnapshotHandle("spill", path, len(blob), digest)

    def close(self) -> None:
        """Unlink every published segment and spill file."""
        for name, segment in self._segments.items():
            try:
                segment.close()  # type: ignore[attr-defined]
                segment.unlink()  # type: ignore[attr-defined]
            except (OSError, FileNotFoundError):  # pragma: no cover - defensive
                pass
        self._segments.clear()
        if self._spill_dir is not None:
            for entry in sorted(os.listdir(self._spill_dir)):
                try:
                    os.remove(os.path.join(self._spill_dir, entry))
                except OSError:  # pragma: no cover - defensive
                    pass
            try:
                os.rmdir(self._spill_dir)
            except OSError:  # pragma: no cover - defensive
                pass
            self._spill_dir = None
        self._handles.clear()


_PUBLISHER = SnapshotPublisher()
atexit.register(_PUBLISHER.close)


def publish_snapshot(blob: bytes, transport: str = "auto") -> SnapshotHandle:
    """Publish through the process-wide registry (once per digest)."""
    return _PUBLISHER.publish(blob, transport)


# ----------------------------------------------------------------------
# worker side: fetch
# ----------------------------------------------------------------------

#: Worker-local blob cache keyed by digest. With persistent workers this
#: is what makes the blob cross the boundary zero times per point: the
#: first chunk touching a digest pays one fetch, every later one hits.
_FETCH_CACHE: "OrderedDict[str, bytes]" = OrderedDict()


def _read_once(handle: SnapshotHandle) -> bytes:
    if handle.kind == "inline":
        if handle.payload is None:
            raise SimulationError("inline snapshot handle carries no payload")
        return handle.payload
    if handle.kind == "spill":
        with open(handle.key, "rb") as stream:
            return stream.read()
    if handle.kind == "shm":
        if _shared_memory is None:  # pragma: no cover - publisher gates this
            raise SimulationError("shared memory unavailable in this worker")
        segment = _shared_memory.SharedMemory(name=handle.key, create=False)
        try:
            data = bytes(segment.buf[: handle.size])
        finally:
            segment.close()
            # Deliberately no resource-tracker unregister here: spawn
            # workers share the parent's tracker process, whose cache is
            # a *set* of names — the attach-side register is a no-op and
            # an unregister would clobber the publisher's registration,
            # making its unlink at close double-unregister (KeyError in
            # the tracker). The publisher owns the segment's lifetime.
        return data
    raise SimulationError(f"unknown snapshot transport kind {handle.kind!r}")


def fetch_blob(handle: SnapshotHandle) -> bytes:
    """The blob for ``handle``, digest-verified and cached per process."""
    cached = _FETCH_CACHE.get(handle.digest)
    if cached is not None:
        _FETCH_CACHE.move_to_end(handle.digest)
        return cached
    blob = _read_once(handle)
    if blob_digest(blob) != handle.digest:
        # One retry covers a racing first read; a second mismatch means
        # the published bytes really are corrupt.
        blob = _read_once(handle)
        if blob_digest(blob) != handle.digest:
            raise SimulationError(
                f"snapshot transport corrupted: {handle.kind} key "
                f"{handle.key!r} does not hash to {handle.digest[:16]}…"
            )
    _FETCH_CACHE[handle.digest] = blob
    while len(_FETCH_CACHE) > _FETCH_CACHE_MAX:
        _FETCH_CACHE.popitem(last=False)
    return blob


def reset_transport_state() -> None:
    """Drop every published blob and cached fetch (tests, reloads)."""
    _PUBLISHER.close()
    _FETCH_CACHE.clear()


__all__ = [
    "SnapshotHandle",
    "SnapshotPublisher",
    "TRANSPORTS",
    "blob_digest",
    "fetch_blob",
    "publish_snapshot",
    "reset_transport_state",
    "resolve_transport",
]

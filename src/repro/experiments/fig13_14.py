"""Figures 13 and 14 — RCN-enhanced damping vs plain damping.

With RCN attached to every update and the per-peer root-cause history in
front of the damping algorithm, the paper shows:

- Figure 13: convergence time with RCN closely matches the calculated
  (intended) curve for *every* pulse count — no more path-exploration
  false suppression, no more secondary charging;
- Figure 14: RCN damping still limits the message count at large n, and
  produces slightly *more* messages than plain damping, because
  suppression now happens exactly at the configured flap count instead
  of earlier false suppression cutting exploration short.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import (
    DEFAULT_SEED,
    ExperimentResult,
    SweepSeries,
    default_pulse_counts,
    mesh100_config,
    run_sweep,
)
from repro.experiments.fig8_9 import calculation_series, run_fig8_9_sweeps


def run_fig13_14_sweeps(
    pulse_counts: Optional[Sequence[int]] = None,
    flap_interval: float = 60.0,
    seed: int = DEFAULT_SEED,
    include_internet: bool = True,
    base_sweeps: Optional[Dict[str, SweepSeries]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, SweepSeries]:
    """Figure 8/9's series plus the 'Damping and RCN' series."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    sweeps = dict(base_sweeps) if base_sweeps is not None else run_fig8_9_sweeps(
        counts, flap_interval, seed=seed, include_internet=include_internet, jobs=jobs
    )
    sweeps["damping_rcn"] = run_sweep(
        "Damping and RCN",
        mesh100_config(rcn=True, seed=seed),
        counts,
        flap_interval,
        jobs=jobs,
    )
    return sweeps


def _result(
    experiment_id: str,
    title: str,
    sweeps: Dict[str, SweepSeries],
    pulse_counts: Sequence[int],
    metric: str,
    include_calculation: bool,
    flap_interval: float,
    notes: List[str],
) -> ExperimentResult:
    headers = ["pulses"] + [series.label for series in sweeps.values()]
    calc: Dict[int, float] = {}
    if include_calculation:
        tup = sweeps["no_damping_mesh"].mean_warmup
        calc = dict(calculation_series(pulse_counts, tup, flap_interval))
        headers.append("Full Damping (calculation)")
    rows: List[List[object]] = []
    for n in pulse_counts:
        row: List[object] = [n]
        for series in sweeps.values():
            row.append(getattr(series.point(n), metric))
        if include_calculation:
            row.append(round(calc[n], 1))
        rows.append(row)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        notes=notes,
        data={"sweeps": sweeps, "calculation": calc, "pulse_counts": list(pulse_counts)},
    )


def fig13_experiment(
    pulse_counts: Optional[Sequence[int]] = None,
    sweeps: Optional[Dict[str, SweepSeries]] = None,
    flap_interval: float = 60.0,
    include_internet: bool = True,
) -> ExperimentResult:
    """Figure 13: convergence time with RCN-enhanced damping."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    if sweeps is None:
        sweeps = run_fig13_14_sweeps(counts, flap_interval, include_internet=include_internet)
    return _result(
        "F13",
        "Convergence Time with RCN-Enhanced Damping",
        sweeps,
        counts,
        "convergence_time",
        include_calculation=True,
        flap_interval=flap_interval,
        notes=["RCN series should closely match the calculation at every n"],
    )


def fig14_experiment(
    pulse_counts: Optional[Sequence[int]] = None,
    sweeps: Optional[Dict[str, SweepSeries]] = None,
    flap_interval: float = 60.0,
    include_internet: bool = True,
) -> ExperimentResult:
    """Figure 14: message count with RCN-enhanced damping."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    if sweeps is None:
        sweeps = run_fig13_14_sweeps(counts, flap_interval, include_internet=include_internet)
    return _result(
        "F14",
        "Message Count with RCN-Enhanced Damping",
        sweeps,
        counts,
        "message_count",
        include_calculation=False,
        flap_interval=flap_interval,
        notes=[
            "RCN caps the message count at large n (suppression at the ISP)",
            "RCN produces somewhat more messages than plain damping at large n "
            "because suppression happens exactly at the configured flap count "
            "instead of earlier false suppression",
        ],
    )

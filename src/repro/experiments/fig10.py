"""Figure 10 — update series and damped-link count for n = 1, 3, 5.

Six panels in the paper: for each pulse count, the number of update
messages observed in 5-second bins (top row) and the number of links
being suppressed over time (bottom row), annotated with the phases —
charging (C), suppression (S), releasing (R), muffling (M), and strong
secondary charging (SC).

The driver runs the three episodes on the standard mesh, produces both
series for each, and classifies the phases with
:func:`repro.core.states.classify_phases`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.states import (
    DampingPhase,
    PhaseInterval,
    classify_phases,
    phase_durations,
    releasing_fraction,
    suppressed_count_function,
)
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, mesh100_config
from repro.metrics.report import render_series
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import FlapRunResult, Scenario

FIG10_PULSE_COUNTS = (1, 3, 5)


def run_fig10_episode(pulses: int, seed: int = DEFAULT_SEED) -> FlapRunResult:
    """One standard mesh-100 episode at the given pulse count."""
    scenario = Scenario(mesh100_config(seed=seed))
    scenario.warm_up()
    return scenario.run(PulseSchedule.regular(pulses, 60.0))


def classify_run(result: FlapRunResult, gap: float = 60.0) -> List[PhaseInterval]:
    """Phase classification of one finished episode."""
    suppressed_at = suppressed_count_function(result.collector.damped_link_deltas())
    return classify_phases(
        update_times=result.collector.update_times,
        flap_times=result.flap_times,
        end_time=result.end_time,
        suppressed_count_at=suppressed_at,
        gap=gap,
    )


def fig10_experiment(
    pulse_counts: Sequence[int] = FIG10_PULSE_COUNTS,
    seed: int = DEFAULT_SEED,
    bin_width: float = 5.0,
    results: Optional[Dict[int, FlapRunResult]] = None,
) -> ExperimentResult:
    """Reproduce all panels of Figure 10."""
    if results is None:
        results = {n: run_fig10_episode(n, seed) for n in pulse_counts}

    rows: List[List[object]] = []
    sections: List[str] = []
    data: Dict[str, object] = {}
    for n in pulse_counts:
        result = results[n]
        update_series = result.collector.update_series(
            bin_width=bin_width, start=0.0, end=result.end_time
        )
        damped_series = result.collector.damped_link_series()
        phases = classify_run(result)
        durations = phase_durations(phases)
        rows.append(
            [
                n,
                round(result.convergence_time, 1),
                result.message_count,
                result.summary.peak_damped_links,
                result.summary.silent_reuses,
                result.summary.noisy_reuses,
                round(durations[DampingPhase.CHARGING], 1),
                round(releasing_fraction(phases), 2),
            ]
        )
        sections.append(
            render_series(
                [(t, float(c)) for t, c in update_series if c > 0] or [(0.0, 0.0)],
                title=f"n={n}: updates per {bin_width:.0f}s bin (non-empty bins)",
            )
        )
        sections.append(
            render_series(
                [(t, float(c)) for t, c in damped_series] or [(0.0, 0.0)],
                title=f"n={n}: damped link count",
            )
        )
        phase_text = ", ".join(
            f"{p.phase.value}[{p.start:.0f}-{p.end:.0f}]" for p in phases
        )
        sections.append(f"n={n} phases: {phase_text}")
        data[f"n{n}"] = {
            "update_series": update_series,
            "damped_series": damped_series,
            "phases": phases,
            "result": result,
        }

    return ExperimentResult(
        experiment_id="F10",
        title="Update Series and Damped Link Count (mesh-100)",
        headers=[
            "pulses",
            "conv_time_s",
            "messages",
            "peak_damped",
            "silent_reuse",
            "noisy_reuse",
            "charging_s",
            "releasing_frac",
        ],
        rows=rows,
        extra_sections=sections,
        data=data,
    )

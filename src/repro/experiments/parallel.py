"""Deterministic process-pool sweep executor.

Every figure and ablation is a sweep of *independent* episodes: each
(config, pulse count) point builds its own scenario from its own seed, so
points can run in any process, in any order, without sharing state. This
module is the one place such fan-out is allowed (detlint rule DET010
flags ``multiprocessing``/``concurrent.futures`` anywhere else), and it
provides a hard guarantee: results are **digest-identical** to the
sequential path, whatever ``jobs`` is.

The guarantee holds by construction:

* Each point's scenario derives every random draw from the point's own
  :class:`~repro.sim.rng.RngRegistry` master seed — nothing is drawn
  from shared or process-global randomness.
* Workers receive a :class:`~repro.workload.scenarios.WarmStateSnapshot`
  (or the bare config) through the pool initializer and materialise an
  independent scenario per point; snapshot restoration preserves RNG
  stream states, the engine clock/sequence counter, and all protocol
  state exactly.
* The pool uses the ``spawn`` start method, so workers import a fresh
  interpreter instead of inheriting forked state, and results are
  collected in submission order regardless of completion order.

Episode outcomes cross the process boundary as compact picklable
:class:`PointOutcome` records (metrics plus the run digest), never as
full result objects with their collectors and traces.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.digest import run_digest
from repro.sim.rng import RngRegistry
from repro.trace.sinks import JsonlSink
from repro.trace.tracer import Tracer
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig, WarmStateSnapshot

#: What a worker (or the in-process fallback) builds scenarios from: a
#: warm-state snapshot when warm-up is shared, else the bare config.
SweepSource = Union[WarmStateSnapshot, ScenarioConfig]


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's metrics, compact and picklable.

    Mirrors :class:`repro.experiments.base.SweepPoint` plus the run
    digest, which is what the determinism tests compare byte-for-byte
    between sequential and parallel execution.
    """

    pulses: int
    convergence_time: float
    message_count: int
    suppressions: int
    peak_damped_links: int
    secondary_charges: int
    warmup_convergence: float
    digest: str
    #: SHA-256 of the point's canonical JSONL trace when tracing was
    #: requested (``trace_dir``); ``None`` otherwise. Identical whatever
    #: ``jobs`` is — the parallel determinism guarantee covers traces too.
    trace_digest: Optional[str] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` = sequential,
    ``0`` = one worker per CPU, ``N`` = that many workers."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def derive_seed(master_seed: int, label: str) -> int:
    """Stable per-point (or per-replicate) seed derived through
    :meth:`RngRegistry.fork`, so multi-seed sweeps stay reproducible
    without seed arithmetic scattered across experiments."""
    return RngRegistry(master_seed).fork(label).master_seed


def run_point_outcome(
    scenario: Scenario,
    pulses: int,
    flap_interval: float = 60.0,
    check_invariants: bool = False,
    trace_path: Optional[str] = None,
    audit_timers: bool = False,
) -> PointOutcome:
    """Run one regular-pulse episode on a warmed scenario and reduce it
    to a :class:`PointOutcome`.

    ``trace_path`` writes the episode's causal trace there as canonical
    JSONL and records its digest on the outcome. ``audit_timers``
    attaches the runtime timer audit for the episode and fails the point
    on any lifecycle violation.
    """
    tracer: Optional[Tracer] = None
    if trace_path is not None:
        tracer = Tracer(JsonlSink(trace_path))
    audit = scenario.engine.enable_timer_audit() if audit_timers else None
    result = scenario.run(PulseSchedule.regular(pulses, flap_interval), tracer=tracer)
    trace_digest = tracer.close() if tracer is not None else None
    if audit is not None:
        violations = audit.verify()
        if violations:
            details = "; ".join(
                f"{v.kind} @ {v.time:.1f}s timer {v.timer}" for v in violations[:5]
            )
            raise SimulationError(
                f"timer audit found {len(violations)} violation(s) at "
                f"pulses={pulses}: {details}"
            )
    if check_invariants:
        # Imported lazily: analysis.invariants imports workload.scenarios,
        # which sits below this module in the layering.
        from repro.analysis.invariants import check_converged_invariants

        check_converged_invariants(scenario).raise_on_violation()
    summary = result.summary
    return PointOutcome(
        pulses=pulses,
        convergence_time=result.convergence_time,
        message_count=result.message_count,
        suppressions=summary.total_suppressions,
        peak_damped_links=summary.peak_damped_links,
        secondary_charges=summary.secondary_charges,
        warmup_convergence=result.warmup_convergence,
        digest=run_digest(result.collector),
        trace_digest=trace_digest,
    )


def _materialise(source: SweepSource) -> Scenario:
    """An independent warmed-up scenario from a snapshot or bare config."""
    if isinstance(source, WarmStateSnapshot):
        return source.restore()
    scenario = Scenario(source)
    scenario.warm_up()
    return scenario


def _sweep_source(
    config: ScenarioConfig, point_count: int, use_snapshots: bool
) -> SweepSource:
    """Warm up once and snapshot when more than one point will reuse it;
    a single point is cheaper to warm directly."""
    if use_snapshots and point_count > 1:
        return WarmStateSnapshot.capture(config)
    return config


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------

#: Installed once per worker by the pool initializer; spawn-context
#: workers do not inherit parent module state, so everything a point
#: needs is shipped explicitly.
_WORKER_STATE: Optional[Tuple[SweepSource, float, bool, Optional[str], bool]] = None


def _init_worker(
    source: SweepSource,
    flap_interval: float,
    check_invariants: bool,
    trace_dir: Optional[str],
    audit_timers: bool = False,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (source, flap_interval, check_invariants, trace_dir, audit_timers)


def _point_trace_path(trace_dir: str, index: int, pulses: int) -> str:
    """Per-point trace file name: stable, index-ordered, pulse-labelled."""
    return os.path.join(trace_dir, f"point_{index:03d}_p{pulses}.jsonl")


def _worker_run_point(task: Tuple[int, int]) -> PointOutcome:
    if _WORKER_STATE is None:  # pragma: no cover - pool misuse guard
        raise SimulationError("sweep worker used before initialisation")
    source, flap_interval, check_invariants, trace_dir, audit_timers = _WORKER_STATE
    index, pulses = task
    return run_point_outcome(
        _materialise(source),
        pulses,
        flap_interval=flap_interval,
        check_invariants=check_invariants,
        trace_path=(
            _point_trace_path(trace_dir, index, pulses)
            if trace_dir is not None
            else None
        ),
        audit_timers=audit_timers,
    )


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------


def _salvage_completed(
    futures: Dict[int, "Future[PointOutcome]"],
    results: Dict[int, PointOutcome],
) -> None:
    """Harvest every future that finished successfully before the pool
    broke, without blocking on the ones that did not."""
    for index, future in futures.items():
        if index in results or not future.done():
            continue
        try:
            results[index] = future.result(timeout=0)
        except BaseException:
            # Broken-pool / cancelled / crashed futures are retried by
            # the caller; only clean outcomes are worth keeping.
            continue


def execute_sweep(
    config: ScenarioConfig,
    pulse_counts: Sequence[int],
    flap_interval: float = 60.0,
    jobs: Optional[int] = 1,
    use_snapshots: bool = True,
    check_invariants: bool = False,
    mp_start_method: str = "spawn",
    trace_dir: Optional[str] = None,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    audit_timers: bool = False,
) -> List[PointOutcome]:
    """Run one episode per pulse count, optionally across processes.

    ``jobs`` follows the CLI convention (``1`` sequential in-process,
    ``0`` one worker per CPU, ``N`` workers otherwise). Outcomes are
    returned in ``pulse_counts`` order and are digest-identical whatever
    ``jobs`` resolves to.

    ``trace_dir`` enables causal tracing: each point writes its canonical
    JSONL trace to ``<trace_dir>/point_<index>_p<pulses>.jsonl`` (the
    directory is created if needed), and each outcome carries the trace's
    digest. Every per-point file is written wholly by whichever process
    ran that point, so the files — like the outcomes — are byte-identical
    between sequential and parallel execution.

    The parallel path is hardened against *pool-level* failures — a
    worker process dying (OOM killer, segfault) breaks the whole
    executor, and a wedged worker would block forever:

    * ``point_timeout`` bounds the wall-clock wait for each point once
      the executor starts waiting on it (``None`` = wait forever);
    * when the pool breaks or a point times out, every already-completed
      outcome is salvaged and only the missing points are resubmitted to
      a fresh pool, up to ``max_retries`` extra attempts.

    Deterministic failures — an episode raising ``SimulationError``,
    an invariant or timer-audit violation — are *not* retried: rerunning
    the same seed reproduces them, so they propagate immediately.
    Because every point is a pure function of ``(source, task)``,
    salvage-and-retry cannot change results, only recover them.
    """
    counts = [int(p) for p in pulse_counts]
    worker_count = resolve_jobs(jobs)
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if point_timeout is not None and point_timeout <= 0:
        raise ConfigurationError(
            f"point_timeout must be > 0 seconds, got {point_timeout}"
        )
    if not counts:
        return []
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    source = _sweep_source(config, len(counts), use_snapshots)
    if worker_count == 1 or len(counts) == 1:
        return [
            run_point_outcome(
                _materialise(source),
                pulses,
                flap_interval=flap_interval,
                check_invariants=check_invariants,
                trace_path=(
                    _point_trace_path(trace_dir, index, pulses)
                    if trace_dir is not None
                    else None
                ),
                audit_timers=audit_timers,
            )
            for index, pulses in enumerate(counts)
        ]

    context = multiprocessing.get_context(mp_start_method)
    tasks = list(enumerate(counts))
    results: Dict[int, PointOutcome] = {}
    failures: List[str] = []
    for attempt in range(max_retries + 1):
        missing = [task for task in tasks if task[0] not in results]
        if not missing:
            break
        pool = ProcessPoolExecutor(
            max_workers=min(worker_count, len(missing)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(source, flap_interval, check_invariants, trace_dir, audit_timers),
        )
        futures: Dict[int, "Future[PointOutcome]"] = {}
        try:
            for task in missing:
                futures[task[0]] = pool.submit(_worker_run_point, task)
            # Collect in submission order so output ordering never depends
            # on completion order.
            for index, pulses in missing:
                try:
                    results[index] = futures[index].result(timeout=point_timeout)
                except BrokenExecutor as exc:
                    failures.append(
                        f"attempt {attempt + 1}: pool broke at point "
                        f"n={pulses} ({type(exc).__name__})"
                    )
                    break
                except FutureTimeoutError:
                    failures.append(
                        f"attempt {attempt + 1}: point n={pulses} exceeded "
                        f"{point_timeout}s"
                    )
                    break
            else:
                continue  # every missing point resolved; loop exits above
            _salvage_completed(futures, results)
        finally:
            # Never rely on a blocking shutdown: a wedged worker would
            # hang it forever. cancel_futures strands nothing we keep —
            # unfinished points are resubmitted to the next pool.
            pool.shutdown(wait=False, cancel_futures=True)

    still_missing = sorted(
        pulses for index, pulses in tasks if index not in results
    )
    if still_missing:
        raise SimulationError(
            f"sweep lost {len(still_missing)} point(s) "
            f"(pulses={still_missing}) after {max_retries + 1} attempt(s): "
            + "; ".join(failures[-3:])
        )
    return [results[index] for index, _ in tasks]


__all__ = [
    "PointOutcome",
    "SweepSource",
    "derive_seed",
    "execute_sweep",
    "resolve_jobs",
    "run_point_outcome",
]

"""Deterministic process-pool sweep executor.

Every figure and ablation is a sweep of *independent* episodes: each
(config, pulse count) point builds its own scenario from its own seed, so
points can run in any process, in any order, without sharing state. This
module is the one place such fan-out is allowed (detlint rule DET010
flags ``multiprocessing``/``concurrent.futures`` anywhere else), and it
provides a hard guarantee: results are **digest-identical** to the
sequential path, whatever ``jobs``, chunking, or snapshot transport is.

The guarantee holds by construction:

* Each point's scenario derives every random draw from the point's own
  :class:`~repro.sim.rng.RngRegistry` master seed — nothing is drawn
  from shared or process-global randomness.
* Workers materialise an independent scenario per point from a
  :class:`~repro.workload.scenarios.WarmStateSnapshot` (or the bare
  config); snapshot restoration preserves RNG stream states, the engine
  clock/sequence counter, and all protocol state exactly.
* The pool uses the ``spawn`` start method, so workers import a fresh
  interpreter instead of inheriting forked state, and results are
  collected in submission order regardless of completion order.

Three mechanisms make ``jobs=N`` actually buy ~N cores instead of
drowning in serialisation overhead:

* **Persistent warm pools** (:class:`_PoolManager`): spawn workers cost
  a full interpreter start + import each, so pools are kept alive and
  reused across ``execute_sweep`` calls instead of being rebuilt per
  sweep. A broken or timed-out pool is discarded; healthy pools return
  to the warm set.
* **Content-addressed snapshot transport** (:mod:`repro.experiments
  .snapstore`): the warm-state blob is published once under its SHA-256
  digest (shared memory or a spill file) and workers attach by key,
  caching the bytes per digest — the blob crosses the process boundary
  zero times per point, and multi-sweep runs over the same config reuse
  the published copy across executor instances.
* **Chunked scheduling** (:func:`resolve_chunk_size`): points are
  submitted in contiguous chunks so per-task IPC is amortised on
  many-small-point grids; collection stays in submission order, so
  chunking never reorders results.

Episode outcomes cross the process boundary as compact picklable
:class:`PointOutcome` records (metrics plus the run digest), never as
full result objects with their collectors and traces.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import pickle
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.snapstore import (
    SnapshotHandle,
    fetch_blob,
    publish_snapshot,
    resolve_transport,
)
from repro.metrics.digest import run_digest
from repro.sim.rng import RngRegistry
from repro.trace.sinks import JsonlSink
from repro.trace.tracer import Tracer
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import (
    Scenario,
    ScenarioConfig,
    WarmStateCache,
    WarmStateSnapshot,
)

#: What a worker (or the in-process fallback) builds scenarios from: a
#: warm-state snapshot when warm-up is shared, else the bare config.
SweepSource = Union[WarmStateSnapshot, ScenarioConfig]

#: Auto-chunking target: enough chunks per worker that completion skew
#: stays small, few enough that dispatch overhead is amortised.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's metrics, compact and picklable.

    Mirrors :class:`repro.experiments.base.SweepPoint` plus the run
    digest, which is what the determinism tests compare byte-for-byte
    between sequential and parallel execution.
    """

    pulses: int
    convergence_time: float
    message_count: int
    suppressions: int
    peak_damped_links: int
    secondary_charges: int
    warmup_convergence: float
    digest: str
    #: SHA-256 of the point's canonical JSONL trace when tracing was
    #: requested (``trace_dir``); ``None`` otherwise. Identical whatever
    #: ``jobs`` is — the parallel determinism guarantee covers traces too.
    trace_digest: Optional[str] = None


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores even inside a cgroup or
    affinity-restricted container; the scheduler affinity mask is the
    honest ceiling for how many workers can make progress, so ``jobs=0``
    and the perf benchmarks use this instead.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return len(affinity(0)) or 1
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` = sequential,
    ``0`` = one worker per *available* CPU (affinity-aware, so container
    CPU limits are respected), ``N`` = that many workers."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return available_cpus()
    return jobs


def resolve_chunk_size(
    chunk_size: Optional[int], point_count: int, worker_count: int
) -> int:
    """Points per submitted task. ``None`` auto-sizes to roughly
    :data:`_CHUNKS_PER_WORKER` chunks per worker — 1 for figure-sized
    sweeps (big points, negligible dispatch), larger for many-point
    ablation grids where per-task IPC would dominate."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    if worker_count <= 1:
        return max(1, point_count)
    return max(1, math.ceil(point_count / (worker_count * _CHUNKS_PER_WORKER)))


def derive_seed(master_seed: int, label: str) -> int:
    """Stable per-point (or per-replicate) seed derived through
    :meth:`RngRegistry.fork`, so multi-seed sweeps stay reproducible
    without seed arithmetic scattered across experiments."""
    return RngRegistry(master_seed).fork(label).master_seed


def run_point_outcome(
    scenario: Scenario,
    pulses: int,
    flap_interval: float = 60.0,
    check_invariants: bool = False,
    trace_path: Optional[str] = None,
    audit_timers: bool = False,
) -> PointOutcome:
    """Run one regular-pulse episode on a warmed scenario and reduce it
    to a :class:`PointOutcome`.

    ``trace_path`` writes the episode's causal trace there as canonical
    JSONL and records its digest on the outcome. ``audit_timers``
    attaches the runtime timer audit for the episode and fails the point
    on any lifecycle violation.
    """
    tracer: Optional[Tracer] = None
    if trace_path is not None:
        tracer = Tracer(JsonlSink(trace_path))
    audit = scenario.engine.enable_timer_audit() if audit_timers else None
    result = scenario.run(PulseSchedule.regular(pulses, flap_interval), tracer=tracer)
    trace_digest = tracer.close() if tracer is not None else None
    if audit is not None:
        violations = audit.verify()
        if violations:
            details = "; ".join(
                f"{v.kind} @ {v.time:.1f}s timer {v.timer}" for v in violations[:5]
            )
            raise SimulationError(
                f"timer audit found {len(violations)} violation(s) at "
                f"pulses={pulses}: {details}"
            )
    if check_invariants:
        # Imported lazily: analysis.invariants imports workload.scenarios,
        # which sits below this module in the layering.
        from repro.analysis.invariants import check_converged_invariants

        check_converged_invariants(scenario).raise_on_violation()
    summary = result.summary
    return PointOutcome(
        pulses=pulses,
        convergence_time=result.convergence_time,
        message_count=result.message_count,
        suppressions=summary.total_suppressions,
        peak_damped_links=summary.peak_damped_links,
        secondary_charges=summary.secondary_charges,
        warmup_convergence=result.warmup_convergence,
        digest=run_digest(result.collector),
        trace_digest=trace_digest,
    )


def _materialise(source: SweepSource) -> Scenario:
    """An independent warmed-up scenario from a snapshot or bare config."""
    if isinstance(source, WarmStateSnapshot):
        return source.restore()
    scenario = Scenario(source)
    scenario.warm_up()
    return scenario


def _sweep_source(
    config: ScenarioConfig,
    point_count: int,
    use_snapshots: bool,
    cache: Optional[WarmStateCache],
) -> SweepSource:
    """Warm up once and snapshot when more than one point will reuse it;
    a single point is cheaper to warm directly. A cache turns the
    capture into a digest-keyed lookup shared across sweeps."""
    if use_snapshots and point_count > 1:
        if cache is not None:
            return cache.get(config)
        return WarmStateSnapshot.capture(config)
    return config


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepSpec:
    """Everything a worker needs per chunk, kept deliberately tiny.

    Exactly one of ``handle`` (content-addressed transport) and
    ``source`` (inline snapshot or bare config) is set. Because the
    spec rides on every chunk instead of the pool initializer, one
    persistent pool serves sweeps over different configs back to back.
    """

    handle: Optional[SnapshotHandle]
    source: Optional[SweepSource]
    flap_interval: float
    check_invariants: bool
    trace_dir: Optional[str]
    audit_timers: bool


def _init_worker(warm_handle: Optional[SnapshotHandle] = None) -> None:
    """Pool initializer: prefetch (and digest-verify) the sweep's blob
    so the first chunk does not pay the transport read. Errors are left
    for the chunk path, where salvage/retry semantics apply."""
    if warm_handle is not None:
        try:
            fetch_blob(warm_handle)
        except (SimulationError, OSError):  # pragma: no cover - defensive
            pass


def _point_trace_path(trace_dir: str, index: int, pulses: int) -> str:
    """Per-point trace file name: stable, index-ordered, pulse-labelled."""
    return os.path.join(trace_dir, f"point_{index:03d}_p{pulses}.jsonl")


def _materialise_spec(spec: _SweepSpec) -> Scenario:
    """An independent warmed scenario inside a worker.

    The content-addressed path restores from the per-process cached
    blob (fetched at most once per digest), so per-point cost is one
    in-process ``pickle.loads`` of the compact blob — the snapshot
    never crosses the process boundary again.
    """
    if spec.handle is not None:
        blob = fetch_blob(spec.handle)
        try:
            scenario: Scenario = pickle.loads(blob)
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(
                f"warm-state snapshot failed to restore from "
                f"{spec.handle.kind} transport: {exc}"
            ) from exc
        return scenario
    if spec.source is None:  # pragma: no cover - spec construction guard
        raise SimulationError("sweep spec carries neither handle nor source")
    return _materialise(spec.source)


#: One chunk of work: contiguous ``(index, pulses)`` tasks.
_Chunk = Tuple[Tuple[int, int], ...]


def _worker_run_chunk(
    spec: _SweepSpec, tasks: _Chunk
) -> List[Tuple[int, PointOutcome]]:
    """Run every point of a chunk and return (index, outcome) pairs."""
    outcomes: List[Tuple[int, PointOutcome]] = []
    for index, pulses in tasks:
        outcomes.append(
            (
                index,
                run_point_outcome(
                    _materialise_spec(spec),
                    pulses,
                    flap_interval=spec.flap_interval,
                    check_invariants=spec.check_invariants,
                    trace_path=(
                        _point_trace_path(spec.trace_dir, index, pulses)
                        if spec.trace_dir is not None
                        else None
                    ),
                    audit_timers=spec.audit_timers,
                ),
            )
        )
    return outcomes


# ----------------------------------------------------------------------
# persistent pools
# ----------------------------------------------------------------------


class _PoolManager:
    """Keeps spawn pools warm across sweeps.

    A spawn worker pays a full interpreter start plus ``import repro``
    — comparable to several episodes — so tearing the pool down after
    every sweep forfeits most of the multi-core win for short sweeps
    and multi-sweep experiments. Healthy pools are parked here on sweep
    completion and handed back to the next sweep with the same shape;
    broken or timed-out pools are discarded (their wedged workers make
    them unreusable). Keys include the executor class so the hardening
    tests' fake pools never alias real ones.
    """

    def __init__(self) -> None:
        self._idle: Dict[Tuple[object, int, str], ProcessPoolExecutor] = {}

    def acquire(
        self,
        worker_count: int,
        start_method: str,
        warm_handle: Optional[SnapshotHandle] = None,
    ) -> Tuple[Tuple[object, int, str], ProcessPoolExecutor]:
        executor_cls = ProcessPoolExecutor  # module attr: monkeypatch seam
        key = (executor_cls, worker_count, start_method)
        pool = self._idle.pop(key, None)
        if pool is None:
            context = multiprocessing.get_context(start_method)
            pool = executor_cls(
                max_workers=worker_count,
                mp_context=context,
                initializer=_init_worker,
                initargs=(warm_handle,),
            )
        return key, pool

    def release(
        self, key: Tuple[object, int, str], pool: ProcessPoolExecutor
    ) -> None:
        """Park a healthy pool for reuse (folding any duplicate)."""
        if key in self._idle:
            pool.shutdown(wait=False, cancel_futures=True)
            return
        self._idle[key] = pool

    def discard(self, pool: ProcessPoolExecutor) -> None:
        """Drop a pool we no longer trust. Never a blocking shutdown: a
        wedged worker would hang it forever, and cancel_futures strands
        nothing we keep — unfinished points are resubmitted elsewhere."""
        pool.shutdown(wait=False, cancel_futures=True)

    def shutdown_all(self) -> None:
        for pool in self._idle.values():
            pool.shutdown(wait=False, cancel_futures=True)
        self._idle.clear()

    def idle_count(self) -> int:
        return len(self._idle)


_POOLS = _PoolManager()
atexit.register(_POOLS.shutdown_all)


def shutdown_worker_pools() -> None:
    """Tear down every warm worker pool (tests, embedders)."""
    _POOLS.shutdown_all()


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------


def _chunk_tasks(tasks: Sequence[Tuple[int, int]], size: int) -> List[_Chunk]:
    """Contiguous chunks in task order — deterministic for a given
    (missing tasks, size), so retries re-chunk reproducibly."""
    return [tuple(tasks[i : i + size]) for i in range(0, len(tasks), size)]


def _salvage_chunks(
    submitted: Sequence[Tuple[_Chunk, "Future[List[Tuple[int, PointOutcome]]]"]],
    results: Dict[int, PointOutcome],
) -> None:
    """Harvest every chunk that finished cleanly before the pool broke,
    without blocking on the ones that did not. Completed points are
    kept; only the genuinely missing ones are resubmitted."""
    for _chunk, future in submitted:
        if not future.done():
            continue
        try:
            outcomes = future.result(timeout=0)
        except BaseException:
            # Broken-pool / cancelled / crashed futures are retried by
            # the caller; only clean outcomes are worth keeping.
            continue
        for index, outcome in outcomes:
            results.setdefault(index, outcome)


def execute_sweep(
    config: ScenarioConfig,
    pulse_counts: Sequence[int],
    flap_interval: float = 60.0,
    jobs: Optional[int] = 1,
    use_snapshots: bool = True,
    check_invariants: bool = False,
    mp_start_method: str = "spawn",
    trace_dir: Optional[str] = None,
    point_timeout: Optional[float] = None,
    max_retries: int = 2,
    audit_timers: bool = False,
    chunk_size: Optional[int] = None,
    snapshot_transport: str = "auto",
    cache: Optional[WarmStateCache] = None,
) -> List[PointOutcome]:
    """Run one episode per pulse count, optionally across processes.

    ``jobs`` follows the CLI convention (``1`` sequential in-process,
    ``0`` one worker per available CPU, ``N`` workers otherwise).
    Outcomes are returned in ``pulse_counts`` order and are
    digest-identical whatever ``jobs``, ``chunk_size``, or
    ``snapshot_transport`` resolve to.

    ``chunk_size`` groups points into contiguous per-task chunks
    (``None`` auto-sizes — see :func:`resolve_chunk_size`).
    ``snapshot_transport`` picks how the warm-state blob reaches
    workers: ``auto``/``shm``/``spill`` publish it once under its
    content digest and ship only a key; ``inline`` ships the blob with
    the chunk spec (the degenerate fallback). ``cache`` reuses captured
    snapshots across sweeps (and heals a snapshot that fails to
    restore by recapturing it — see
    :meth:`~repro.workload.scenarios.WarmStateCache.restore`).

    ``trace_dir`` enables causal tracing: each point writes its canonical
    JSONL trace to ``<trace_dir>/point_<index>_p<pulses>.jsonl`` (the
    directory is created if needed), and each outcome carries the trace's
    digest. Every per-point file is written wholly by whichever process
    ran that point, so the files — like the outcomes — are byte-identical
    between sequential and parallel execution.

    The parallel path is hardened against *pool-level* failures — a
    worker process dying (OOM killer, segfault) breaks the whole
    executor, and a wedged worker would block forever:

    * ``point_timeout`` bounds the wall-clock wait for each point once
      the executor starts waiting on it (``None`` = wait forever); a
      chunk's budget is ``point_timeout * len(chunk)``;
    * when the pool breaks or a chunk times out, every already-completed
      outcome is salvaged, the pool is discarded (a wedged worker makes
      it unreusable), and only the missing points are resubmitted to a
      fresh pool, up to ``max_retries`` extra attempts.

    Deterministic failures — an episode raising ``SimulationError``,
    an invariant or timer-audit violation — are *not* retried: rerunning
    the same seed reproduces them, so they propagate immediately.
    Because every point is a pure function of ``(source, task)``,
    salvage-and-retry cannot change results, only recover them.
    """
    counts = [int(p) for p in pulse_counts]
    worker_count = resolve_jobs(jobs)
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    if point_timeout is not None and point_timeout <= 0:
        raise ConfigurationError(
            f"point_timeout must be > 0 seconds, got {point_timeout}"
        )
    transport = resolve_transport(snapshot_transport)
    if not counts:
        return []
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    source = _sweep_source(config, len(counts), use_snapshots, cache)
    if worker_count == 1 or len(counts) == 1:
        outcomes: List[PointOutcome] = []
        for index, pulses in enumerate(counts):
            if cache is not None and isinstance(source, WarmStateSnapshot):
                scenario = cache.restore(config)
            else:
                scenario = _materialise(source)
            outcomes.append(
                run_point_outcome(
                    scenario,
                    pulses,
                    flap_interval=flap_interval,
                    check_invariants=check_invariants,
                    trace_path=(
                        _point_trace_path(trace_dir, index, pulses)
                        if trace_dir is not None
                        else None
                    ),
                    audit_timers=audit_timers,
                )
            )
        return outcomes

    handle: Optional[SnapshotHandle] = None
    inline_source: Optional[SweepSource] = None
    if isinstance(source, WarmStateSnapshot) and transport != "inline":
        handle = publish_snapshot(source.blob, transport)
    else:
        inline_source = source
    spec = _SweepSpec(
        handle=handle,
        source=inline_source,
        flap_interval=flap_interval,
        check_invariants=check_invariants,
        trace_dir=trace_dir,
        audit_timers=audit_timers,
    )

    tasks = list(enumerate(counts))
    size = resolve_chunk_size(chunk_size, len(tasks), worker_count)
    results: Dict[int, PointOutcome] = {}
    failures: List[str] = []
    for attempt in range(max_retries + 1):
        missing = [task for task in tasks if task[0] not in results]
        if not missing:
            break
        key, pool = _POOLS.acquire(worker_count, mp_start_method, warm_handle=handle)
        submitted: List[Tuple[_Chunk, "Future[List[Tuple[int, PointOutcome]]]"]] = []
        broke = False
        try:
            try:
                for piece in _chunk_tasks(missing, size):
                    submitted.append(
                        (piece, pool.submit(_worker_run_chunk, spec, piece))
                    )
            except BrokenExecutor as exc:
                failures.append(
                    f"attempt {attempt + 1}: pool broke during submission "
                    f"({type(exc).__name__})"
                )
                broke = True
            # Collect in submission order so output ordering never depends
            # on completion order.
            for piece, future in submitted:
                if broke:
                    break
                budget = (
                    point_timeout * len(piece) if point_timeout is not None else None
                )
                pulses_in_piece = [pulses for _index, pulses in piece]
                try:
                    for index, outcome in future.result(timeout=budget):
                        results[index] = outcome
                except BrokenExecutor as exc:
                    failures.append(
                        f"attempt {attempt + 1}: pool broke at chunk "
                        f"n={pulses_in_piece} ({type(exc).__name__})"
                    )
                    broke = True
                    break
                except FutureTimeoutError:
                    failures.append(
                        f"attempt {attempt + 1}: chunk n={pulses_in_piece} "
                        f"exceeded {budget}s"
                    )
                    broke = True
                    break
        except BaseException:
            # Deterministic episode errors propagate immediately; the
            # pool may be healthy but its outstanding chunks are moot,
            # so drop it rather than hand it to the next sweep mid-drain.
            _POOLS.discard(pool)
            raise
        if broke:
            _salvage_chunks(submitted, results)
            _POOLS.discard(pool)
        else:
            _POOLS.release(key, pool)

    still_missing = sorted(
        pulses for index, pulses in tasks if index not in results
    )
    if still_missing:
        raise SimulationError(
            f"sweep lost {len(still_missing)} point(s) "
            f"(pulses={still_missing}) after {max_retries + 1} attempt(s): "
            + "; ".join(failures[-3:])
        )
    return [results[index] for index, _ in tasks]


__all__ = [
    "PointOutcome",
    "SweepSource",
    "available_cpus",
    "derive_seed",
    "execute_sweep",
    "resolve_chunk_size",
    "resolve_jobs",
    "run_point_outcome",
    "shutdown_worker_pools",
]

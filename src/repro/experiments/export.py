"""CSV export for experiment results.

Downstream users plot the paper's figures with their own tools; this
module turns any :class:`~repro.experiments.base.ExperimentResult` into a
CSV file (headline table) plus one CSV per extra series carried in its
``data`` payload when that payload is a recognised series shape.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, List, Sequence, Tuple, Union

from repro.experiments.base import ExperimentResult, SweepSeries

PathLike = Union[str, pathlib.Path]


def write_csv(path: PathLike, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write one CSV file with a header row."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


def export_result(result: ExperimentResult, directory: PathLike) -> List[pathlib.Path]:
    """Export ``result`` to ``directory``; returns the files written.

    Always writes ``<id>.csv`` with the headline table. Sweep series in
    ``result.data["sweeps"]`` additionally get
    ``<id>_<series-key>.csv`` with per-pulse metrics, and time series
    stored as lists of (time, value) pairs get their own files too.
    """
    directory = pathlib.Path(directory)
    written: List[pathlib.Path] = []

    main = directory / f"{result.experiment_id}.csv"
    write_csv(main, result.headers, result.rows)
    written.append(main)

    sweeps = result.data.get("sweeps")
    if isinstance(sweeps, dict):
        for key, series in sweeps.items():
            if not isinstance(series, SweepSeries):
                continue
            path = directory / f"{result.experiment_id}_{key}.csv"
            write_csv(
                path,
                [
                    "pulses",
                    "convergence_time_s",
                    "message_count",
                    "suppressions",
                    "peak_damped_links",
                    "secondary_charges",
                ],
                [
                    [
                        p.pulses,
                        p.convergence_time,
                        p.message_count,
                        p.suppressions,
                        p.peak_damped_links,
                        p.secondary_charges,
                    ]
                    for p in series.points
                ],
            )
            written.append(path)

    for key, value in result.data.items():
        if _is_time_series(value):
            path = directory / f"{result.experiment_id}_{key}_series.csv"
            write_csv(path, ["time_s", "value"], value)
            written.append(path)
    return written


def _is_time_series(value: object) -> bool:
    if not isinstance(value, list) or not value:
        return False
    first = value[0]
    return (
        isinstance(first, tuple)
        and len(first) == 2
        and isinstance(first[0], (int, float))
        and isinstance(first[1], (int, float))
    )


def export_series_csv(
    path: PathLike, series: Sequence[Tuple[float, float]], value_name: str = "value"
) -> None:
    """Write a single (time, value) series to CSV."""
    write_csv(path, ["time_s", value_name], series)

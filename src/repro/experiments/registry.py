"""Registry mapping experiment ids to driver callables (used by the CLI
and the benchmark harness)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    distance_profile_experiment,
    heterogeneous_params_experiment,
    isp_placement_experiment,
    flap_interval_experiment,
    flap_pattern_experiment,
    mrai_withdrawal_experiment,
    partial_deployment_experiment,
    selective_damping_experiment,
    sensitivity_experiment,
    vendor_params_experiment,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.fig3 import fig3_experiment
from repro.experiments.fig7 import fig7_experiment
from repro.experiments.fig8_9 import fig8_experiment, fig9_experiment
from repro.experiments.fig10 import fig10_experiment
from repro.experiments.fig13_14 import fig13_experiment, fig14_experiment
from repro.experiments.fig15 import fig15_experiment
from repro.experiments.gr_faults import gr_faults_experiment
from repro.experiments.table1 import table1_experiment

#: Experiment id → zero-argument driver returning an ExperimentResult.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "T1": table1_experiment,
    "F3": fig3_experiment,
    "F7": fig7_experiment,
    "F8": fig8_experiment,
    "F9": fig9_experiment,
    "F10": fig10_experiment,
    "F13": fig13_experiment,
    "F14": fig14_experiment,
    "F15": fig15_experiment,
    "X1": flap_interval_experiment,
    "X2": partial_deployment_experiment,
    "X3": vendor_params_experiment,
    "X4": selective_damping_experiment,
    "X5": flap_pattern_experiment,
    "X6": mrai_withdrawal_experiment,
    "X7": sensitivity_experiment,
    "X8": distance_profile_experiment,
    "X9": heterogeneous_params_experiment,
    "X10": isp_placement_experiment,
    "FX1": gr_faults_experiment,
}


def list_experiments() -> List[str]:
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]

"""Figure 15 — impact of routing policy on damping dynamics.

On a 208-node Internet-derived topology with customer-provider and
peer-peer relationships, the paper compares convergence time under the
no-valley routing policy against shortest-path ("no policy") and the
intended calculation. Policy prunes alternate paths, which reduces the
number of routers that turn on false suppression, reduces secondary
charging, and moves convergence toward — but not onto — the intended
curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS
from repro.experiments.base import (
    DEFAULT_SEED,
    ExperimentResult,
    SweepSeries,
    default_pulse_counts,
    internet208_config,
    run_sweep,
)


def run_fig15_sweeps(
    pulse_counts: Optional[Sequence[int]] = None,
    flap_interval: float = 60.0,
    seed: int = DEFAULT_SEED,
    jobs: Optional[int] = None,
) -> Dict[str, SweepSeries]:
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    return {
        "with_policy": run_sweep(
            "With Policy (no-valley)",
            internet208_config(use_no_valley=True, seed=seed),
            counts,
            flap_interval,
            jobs=jobs,
        ),
        "no_policy": run_sweep(
            "No policy (shortest path)",
            internet208_config(use_no_valley=False, seed=seed),
            counts,
            flap_interval,
            jobs=jobs,
        ),
    }


def fig15_experiment(
    pulse_counts: Optional[Sequence[int]] = None,
    sweeps: Optional[Dict[str, SweepSeries]] = None,
    flap_interval: float = 60.0,
) -> ExperimentResult:
    """Figure 15: convergence time with and without routing policy."""
    counts = list(pulse_counts) if pulse_counts is not None else default_pulse_counts()
    if sweeps is None:
        sweeps = run_fig15_sweeps(counts, flap_interval)

    tup = sweeps["with_policy"].mean_warmup
    model = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=flap_interval, tup=tup)
    calc = {n: model.predict(n).convergence_time for n in counts}

    rows: List[List[object]] = []
    for n in counts:
        rows.append(
            [
                n,
                round(sweeps["with_policy"].point(n).convergence_time, 1),
                round(sweeps["no_policy"].point(n).convergence_time, 1),
                round(calc[n], 1),
                sweeps["with_policy"].point(n).suppressions,
                sweeps["no_policy"].point(n).suppressions,
            ]
        )
    return ExperimentResult(
        experiment_id="F15",
        title="Impact of Policy (208-node Internet-derived topology)",
        headers=[
            "pulses",
            "With Policy",
            "No policy",
            "Intended (calculation)",
            "supp_policy",
            "supp_nopolicy",
        ],
        rows=rows,
        notes=[
            "no-valley policy reduces false suppression and moves convergence "
            "toward (but not onto) the intended behaviour",
        ],
        data={"sweeps": sweeps, "calculation": calc, "pulse_counts": counts},
    )

"""Shared experiment machinery: standard configurations, pulse-count
sweeps, and the result container the benchmark harness renders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.params import CISCO_DEFAULTS, DampingParams
from repro.errors import ExperimentError
from repro.experiments.parallel import execute_sweep
from repro.metrics.report import render_table
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.topology.model import Topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import (
    FlapRunResult,
    Scenario,
    ScenarioConfig,
    WarmStateCache,
)

#: The paper sweeps 0..10 pulses on its figures' x-axes.
DEFAULT_PULSE_COUNTS = tuple(range(0, 11))

#: The reduced sweep used by ``--smoke`` runs (CI wiring checks): enough
#: points to exercise no-flap, single-flap, and suppression onset, small
#: enough to finish in seconds.
SMOKE_PULSE_COUNTS = (0, 1, 2, 3)

#: Seed used by the standard experiments (any fixed value reproduces).
DEFAULT_SEED = 42

#: When True, experiment drivers sweep :data:`SMOKE_PULSE_COUNTS`
#: instead of the full 0..10 — toggled by the CLI's ``--smoke`` flag; a
#: module-level switch because experiment drivers take no arguments by
#: contract (same pattern as ``_CHECK_INVARIANTS`` below).
_SMOKE_MODE = False


def set_smoke_mode(enabled: bool) -> None:
    """Enable/disable the reduced-pulse-count smoke sweep."""
    global _SMOKE_MODE
    _SMOKE_MODE = enabled


def smoke_mode_enabled() -> bool:
    return _SMOKE_MODE


def default_pulse_counts() -> List[int]:
    if _SMOKE_MODE:
        return list(SMOKE_PULSE_COUNTS)
    return list(DEFAULT_PULSE_COUNTS)


# ----------------------------------------------------------------------
# standard configurations (paper Section 5.1)
# ----------------------------------------------------------------------

_TOPOLOGY_CACHE: Dict[str, Topology] = {}


def _cached(name: str, build: Callable[[], Topology]) -> Topology:
    if name not in _TOPOLOGY_CACHE:
        _TOPOLOGY_CACHE[name] = build()
    return _TOPOLOGY_CACHE[name]


def mesh100_config(
    damping: Optional[DampingParams] = CISCO_DEFAULTS,
    rcn: bool = False,
    selective: bool = False,
    seed: int = DEFAULT_SEED,
    damping_fraction: float = 1.0,
) -> ScenarioConfig:
    """The paper's main setup: 100-node mesh (10×10 torus), Cisco
    defaults, damping at all nodes."""
    return ScenarioConfig(
        topology=_cached("mesh100", lambda: mesh_topology(10, 10)),
        damping=damping,
        rcn=rcn,
        selective=selective,
        seed=seed,
        damping_fraction=damping_fraction,
    )


def internet100_config(
    damping: Optional[DampingParams] = CISCO_DEFAULTS,
    rcn: bool = False,
    seed: int = DEFAULT_SEED,
) -> ScenarioConfig:
    """100-node Internet-derived topology (long-tailed degrees)."""
    return ScenarioConfig(
        topology=_cached("internet100", lambda: internet_topology(100, seed=7)),
        damping=damping,
        rcn=rcn,
        seed=seed,
    )


def internet208_config(
    damping: Optional[DampingParams] = CISCO_DEFAULTS,
    use_no_valley: bool = False,
    seed: int = DEFAULT_SEED,
) -> ScenarioConfig:
    """208-node Internet-derived topology with relationships (Figure 15)."""
    return ScenarioConfig(
        topology=_cached(
            "internet208",
            lambda: internet_topology(208, seed=7, with_relationships=True),
        ),
        damping=damping,
        use_no_valley=use_no_valley,
        seed=seed,
    )


def small_mesh_config(
    damping: Optional[DampingParams] = CISCO_DEFAULTS,
    rcn: bool = False,
    seed: int = DEFAULT_SEED,
) -> ScenarioConfig:
    """A 5×5 mesh for fast tests and the quickstart example."""
    return ScenarioConfig(
        topology=_cached("mesh25", lambda: mesh_topology(5, 5)),
        damping=damping,
        rcn=rcn,
        seed=seed,
    )


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One (pulse count → metrics) data point of a figure series."""

    pulses: int
    convergence_time: float
    message_count: int
    suppressions: int
    peak_damped_links: int
    secondary_charges: int
    warmup_convergence: float
    #: SHA-256 digest of the episode's observable event stream (see
    #: :mod:`repro.metrics.digest`); the determinism oracle the parallel
    #: executor is held to.
    digest: Optional[str] = None


@dataclass
class SweepSeries:
    """One labelled series of a figure (e.g. "Full Damping (mesh)")."""

    label: str
    points: List[SweepPoint] = field(default_factory=list)

    def convergence(self) -> List[tuple]:
        return [(p.pulses, p.convergence_time) for p in self.points]

    def messages(self) -> List[tuple]:
        return [(p.pulses, p.message_count) for p in self.points]

    def point(self, pulses: int) -> SweepPoint:
        for p in self.points:
            if p.pulses == pulses:
                return p
        raise ExperimentError(f"series {self.label!r} has no point for n={pulses}")

    @property
    def mean_warmup(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.warmup_convergence for p in self.points) / len(self.points)


#: When True, every :func:`run_point` episode is followed by a pass of
#: the converged-state invariant oracle. Toggled by the CLI's
#: ``--check-invariants`` flag; a module-level switch (rather than a
#: parameter) because experiment drivers take no arguments by contract.
_CHECK_INVARIANTS = False


def set_invariant_checking(enabled: bool) -> None:
    """Enable/disable the post-episode invariant oracle for sweeps."""
    global _CHECK_INVARIANTS
    _CHECK_INVARIANTS = enabled


def invariant_checking_enabled() -> bool:
    return _CHECK_INVARIANTS


#: Worker-process count used by :func:`run_sweep` when the caller does
#: not pass ``jobs`` explicitly (1 = sequential, 0 = one per CPU).
#: Toggled by the CLI's ``--jobs`` flag; a module-level switch for the
#: same reason as ``_CHECK_INVARIANTS``.
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Set the sweep worker count used when ``jobs`` is not given."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def default_jobs() -> int:
    return _DEFAULT_JOBS


#: Sweep tuning shared by every :func:`run_sweep` call: points per
#: submitted chunk (``None`` = auto-size) and how snapshot blobs reach
#: workers. Toggled by the CLI's ``--chunk-size``/``--snapshot-transport``
#: flags; module-level switches for the same reason as ``_DEFAULT_JOBS``.
_CHUNK_SIZE: Optional[int] = None
_SNAPSHOT_TRANSPORT = "auto"


def set_sweep_tuning(
    chunk_size: Optional[int] = None, snapshot_transport: str = "auto"
) -> None:
    """Set the chunking/transport knobs used by every sweep."""
    global _CHUNK_SIZE, _SNAPSHOT_TRANSPORT
    _CHUNK_SIZE = chunk_size
    _SNAPSHOT_TRANSPORT = snapshot_transport


def sweep_tuning() -> tuple:
    """Current ``(chunk_size, snapshot_transport)`` pair."""
    return (_CHUNK_SIZE, _SNAPSHOT_TRANSPORT)


#: Warm-state snapshots shared by every sweep in this process: figure
#: drivers replaying one config across several series (fig8/fig9 pairs,
#: ablation grids) warm it up once, and — because the executor publishes
#: blobs content-addressed — ship it to workers once, across executor
#: instances.
_SWEEP_CACHE = WarmStateCache(max_entries=8)


def sweep_cache() -> WarmStateCache:
    """The process-wide warm-state cache used by :func:`run_sweep`."""
    return _SWEEP_CACHE


def run_point(config: ScenarioConfig, pulses: int, flap_interval: float = 60.0) -> FlapRunResult:
    """Build a fresh scenario and run one episode.

    With :func:`set_invariant_checking` enabled, the drained scenario is
    swept by :func:`repro.analysis.invariants.check_converged_invariants`
    and a violation raises ``SimulationError``.
    """
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(pulses, flap_interval))
    if _CHECK_INVARIANTS:
        # Imported lazily: analysis.invariants imports workload.scenarios,
        # which sits below this module in the layering.
        from repro.analysis.invariants import check_converged_invariants

        check_converged_invariants(scenario).raise_on_violation()
    return result


def run_sweep(
    label: str,
    config: ScenarioConfig,
    pulse_counts: Sequence[int],
    flap_interval: float = 60.0,
    jobs: Optional[int] = None,
    use_snapshots: bool = True,
) -> SweepSeries:
    """Run one episode per pulse count.

    Episodes are independent: the sweep warms the config up once,
    snapshots the converged state, and restores it per point (see
    :class:`repro.workload.scenarios.WarmStateSnapshot`); with
    ``jobs != 1`` points run in a spawn-context process pool (see
    :mod:`repro.experiments.parallel`). Both optimisations are
    digest-identical to the historical fresh-scenario-per-point loop.
    ``jobs=None`` defers to :func:`default_jobs`.
    """
    outcomes = execute_sweep(
        config,
        list(pulse_counts),
        flap_interval=flap_interval,
        jobs=_DEFAULT_JOBS if jobs is None else jobs,
        use_snapshots=use_snapshots,
        check_invariants=_CHECK_INVARIANTS,
        chunk_size=_CHUNK_SIZE,
        snapshot_transport=_SNAPSHOT_TRANSPORT,
        cache=_SWEEP_CACHE if use_snapshots else None,
    )
    series = SweepSeries(label=label)
    for outcome in outcomes:
        series.points.append(
            SweepPoint(
                pulses=outcome.pulses,
                convergence_time=outcome.convergence_time,
                message_count=outcome.message_count,
                suppressions=outcome.suppressions,
                peak_damped_links=outcome.peak_damped_links,
                secondary_charges=outcome.secondary_charges,
                warmup_convergence=outcome.warmup_convergence,
                digest=outcome.digest,
            )
        )
    return series


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class ExperimentResult:
    """A rendered experiment: identity, headline table(s), raw data."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)
    extra_sections: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")]
        parts.extend(self.extra_sections)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

"""Internet-scale flap episodes: build, measure, and gate.

The paper's figures stop at 208 nodes; this runner drives the same
warm-up + pulse-train methodology on 1k–10k+-node graphs from the
:mod:`repro.topology.scale` pipeline and reports the numbers the scale
gates consume: wall-clock per stage, engine events per second, and the
process's peak resident set (``ru_maxrss``). CI runs the 1k tier on
every push (``benchmarks/compare_mem.py`` against the committed
``mem_baseline.json``); the 5k/10k tiers back the acceptance check that
a 10k-node episode finishes under the watchdog in < 2 GB.

Scale episodes default to delivery coalescing
(``ScenarioConfig.coalesce_delivery``) and arm the engine watchdog, so
a wedged flap storm fails fast with a diagnosis instead of spinning.
Results carry the run's metrics digest: the episode is exactly as
deterministic as the small-graph figures, which is what lets CI pin a
generated-fixture digest. See docs/SCALING.md.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.params import CISCO_DEFAULTS, DampingParams
from repro.metrics.digest import run_digest
from repro.topology.model import Topology
from repro.topology.scale import powerlaw_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


def peak_rss_bytes() -> int:
    """The process's lifetime peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so gates and baselines are portable.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


@dataclass
class ScaleEpisodeResult:
    """Measurements from one large-graph flap episode."""

    topology_name: str
    nodes: int
    edges: int
    pulses: int
    seed: int
    coalesce_delivery: bool
    #: Wall-clock seconds per stage (host time, not simulated time).
    build_seconds: float
    warmup_seconds: float
    episode_seconds: float
    #: Engine events executed during the measured episode and the
    #: resulting throughput (the scale gate's headline number).
    events: int
    events_per_sec: float
    #: Lifetime peak RSS of the process after the episode, in bytes.
    peak_rss_bytes: int
    #: Paper-style outcome metrics, for sanity rather than gating.
    message_count: int
    convergence_time: float
    suppressions: int
    #: Canonical metrics digest of the episode (deterministic per
    #: topology + seed + schedule, coalescing included).
    digest: str

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.warmup_seconds + self.episode_seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for ``topo bench --json`` and the CI gate."""
        return {
            "topology": self.topology_name,
            "nodes": self.nodes,
            "edges": self.edges,
            "pulses": self.pulses,
            "seed": self.seed,
            "coalesce_delivery": self.coalesce_delivery,
            "build_seconds": round(self.build_seconds, 3),
            "warmup_seconds": round(self.warmup_seconds, 3),
            "episode_seconds": round(self.episode_seconds, 3),
            "total_seconds": round(self.total_seconds, 3),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_bytes": self.peak_rss_bytes,
            "message_count": self.message_count,
            "convergence_time": round(self.convergence_time, 3),
            "suppressions": self.suppressions,
            "digest": self.digest,
        }


def run_scale_episode(
    topology: Optional[Topology] = None,
    nodes: int = 1000,
    pulses: int = 2,
    interval: float = 120.0,
    seed: int = 0,
    topology_seed: int = 3,
    damping: Optional[DampingParams] = CISCO_DEFAULTS,
    coalesce_delivery: bool = True,
    watchdog: bool = True,
) -> ScaleEpisodeResult:
    """Run one flap episode on a large graph and measure it.

    ``topology`` defaults to a freshly generated
    :func:`~repro.topology.scale.powerlaw_topology` with ``nodes`` ASes
    (pass an ingested or fixture topology to measure that instead).
    The episode itself is the paper's methodology unchanged: warm up to
    convergence, wipe damping state, drive ``pulses`` down/up pairs
    through the origin, run the queue dry.
    """
    start = time.perf_counter()  # detlint: disable=DET001
    if topology is None:
        topology = powerlaw_topology(nodes, seed=topology_seed)
    config = ScenarioConfig(
        topology=topology,
        damping=damping,
        seed=seed,
        coalesce_delivery=coalesce_delivery,
    )
    scenario = Scenario(config)
    if watchdog:
        scenario.engine.enable_watchdog()
    built = time.perf_counter()  # detlint: disable=DET001

    scenario.warm_up()
    warmed = time.perf_counter()  # detlint: disable=DET001

    events_before = scenario.engine.events_executed
    result = scenario.run(PulseSchedule.regular(pulses, interval))
    done = time.perf_counter()  # detlint: disable=DET001

    events = scenario.engine.events_executed - events_before
    episode_seconds = done - warmed
    return ScaleEpisodeResult(
        topology_name=topology.name,
        nodes=topology.node_count,
        edges=topology.edge_count,
        pulses=pulses,
        seed=seed,
        coalesce_delivery=coalesce_delivery,
        build_seconds=built - start,
        warmup_seconds=warmed - built,
        episode_seconds=episode_seconds,
        events=events,
        events_per_sec=events / episode_seconds if episode_seconds > 0 else 0.0,
        peak_rss_bytes=peak_rss_bytes(),
        message_count=result.message_count,
        convergence_time=result.convergence_time,
        suppressions=result.summary.total_suppressions,
        digest=run_digest(result.collector),
    )

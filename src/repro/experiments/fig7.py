"""Figure 7 — secondary charging seen in one router's penalty trace.

The paper's Figure 7 plots the simulated route penalty over time at a
router seven hops from the flapping origin, after a *single* route flap:
path exploration charges the penalty over the cut-off within the first
~100 seconds, and then — long after the origin has stabilised — waves of
reuse-triggered updates push the penalty back up over the cut-off several
more times (secondary charging), postponing the route's reuse again and
again.

The driver runs the standard mesh-100 single-pulse episode, picks the
router at the requested hop distance with the most recharged suppression,
and reports its sampled penalty curve plus the recharge instants.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.damping import SuppressionRecord
from repro.experiments.base import DEFAULT_SEED, ExperimentResult, mesh100_config
from repro.metrics.report import render_series
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig

FIG7_HOPS = 7


def _most_recharged(
    scenario: Scenario, hops: int
) -> Tuple[str, str, str, Optional[SuppressionRecord]]:
    """Find, among routers at ``hops`` from the ISP, the (router, peer,
    prefix) suppression episode with the most recharges."""
    topology = scenario.config.topology
    wanted = min(hops, topology.eccentricity(scenario.isp))
    names = topology.nodes_at_distance(scenario.isp, wanted)
    best: Tuple[str, str, str, Optional[SuppressionRecord]] = ("", "", "", None)
    best_count = -1
    for name in names:
        router = scenario.routers[name]
        if router.damping is None:
            continue
        for record in router.damping.suppressions:
            count = len(record.recharges)
            if count > best_count:
                best_count = count
                best = (name, record.peer, record.prefix, record)
    return best


def fig7_experiment(
    config: ScenarioConfig = None,  # type: ignore[assignment]
    hops: int = FIG7_HOPS,
    sample_step: float = 100.0,
) -> ExperimentResult:
    """Run one pulse through the mesh and trace a far router's penalty."""
    if config is None:
        config = mesh100_config(seed=DEFAULT_SEED)
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(1, 60.0))

    router_name, peer, prefix, record = _most_recharged(scenario, hops)
    if record is None:
        raise RuntimeError("no suppression occurred — cannot reproduce Figure 7")
    router = scenario.routers[router_name]
    assert router.damping is not None
    state = router.damping.penalty_state(peer, prefix)
    samples = state.sample_curve(0.0, result.end_time, sample_step)

    params = config.damping
    assert params is not None
    over_cutoff_crossings = _count_upward_crossings(
        state.history, params.cutoff_threshold
    )

    rows: List[List[object]] = [
        ["router", router_name],
        ["hops from origin attachment", scenario.config.topology.hop_distance(scenario.isp, router_name) + 1],
        ["suppression started (s)", round(record.started, 1)],
        ["suppression ended (s)", round(record.ended, 1) if record.ended else "never"],
        ["reuse-timer recharges (secondary charging)", len(record.recharges)],
        ["penalty pushed over cutoff (times)", over_cutoff_crossings],
        ["network convergence time (s)", round(result.convergence_time, 1)],
        ["charging-only reuse estimate (s)", round(_first_reuse_estimate(record, params), 1)],
    ]
    chart = render_series(
        samples,
        title=(
            f"penalty at {router_name} for peer {peer} "
            f"(cutoff={params.cutoff_threshold:.0f}, reuse={params.reuse_threshold:.0f})"
        ),
    )
    secondary_share = 0.0
    first_reuse = _first_reuse_estimate(record, params)
    if record.ended and result.convergence_time > 0:
        extension = record.ended - first_reuse
        secondary_share = max(0.0, extension) / result.convergence_time
    notes = [
        f"without secondary charging this entry would have been reused at "
        f"~{first_reuse:.0f}s; it was actually reused at "
        f"{record.ended:.0f}s" if record.ended else "entry never reused",
        f"secondary charging extended this suppression by "
        f"{100 * secondary_share:.0f}% of total convergence time",
    ]
    return ExperimentResult(
        experiment_id="F7",
        title="Secondary Charging Penalty Trace (1 pulse, mesh-100)",
        headers=["quantity", "value"],
        rows=rows,
        extra_sections=[chart],
        notes=notes,
        data={
            "samples": samples,
            "record": record,
            "router": router_name,
            "peer": peer,
            "convergence_time": result.convergence_time,
            "recharges": list(record.recharges),
        },
    )


def _count_upward_crossings(
    history: List[Tuple[float, float]], threshold: float
) -> int:
    """How many charge events lifted the penalty from below to above
    ``threshold`` (each is one 'pushed over the cutoff again' event)."""
    crossings = 0
    below = True
    for index, (time, value) in enumerate(history):
        del time
        if below and value > threshold:
            crossings += 1
            below = False
        elif value <= threshold:
            below = True
        del index
    return crossings


def _first_reuse_estimate(record: SuppressionRecord, params) -> float:  # noqa: ANN001
    """When the route would have been reused had no recharge happened."""
    return record.started + params.reuse_delay(record.penalty_at_start)

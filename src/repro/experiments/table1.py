"""Table 1 — default damping parameters of the two major vendors."""

from __future__ import annotations

from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS
from repro.experiments.base import ExperimentResult

#: (row label, attribute accessor) pairs in the paper's row order.
_ROWS = [
    ("Withdrawal Penalty (P_W)", lambda p: p.withdrawal_penalty),
    ("Re-announcement Penalty (P_A)", lambda p: p.reannouncement_penalty),
    ("Attributes Change Penalty", lambda p: p.attribute_change_penalty),
    ("Cut-off Threshold (P_cut)", lambda p: p.cutoff_threshold),
    ("Half Life (minute) (H)", lambda p: p.half_life / 60.0),
    ("Reuse Threshold (P_reuse)", lambda p: p.reuse_threshold),
    ("Max Hold-down Time (minute)", lambda p: p.max_hold_down / 60.0),
]


def table1_experiment() -> ExperimentResult:
    """Render Table 1 and the derived quantities the library computes."""
    rows = [
        [label, accessor(CISCO_DEFAULTS), accessor(JUNIPER_DEFAULTS)]
        for label, accessor in _ROWS
    ]
    notes = [
        f"derived: decay constant lambda = {CISCO_DEFAULTS.decay_constant:.6f} /s "
        f"(half-life {CISCO_DEFAULTS.half_life / 60:.0f} min)",
        f"derived: Cisco penalty ceiling = {CISCO_DEFAULTS.penalty_ceiling:.0f} "
        f"(caps suppression at {CISCO_DEFAULTS.max_hold_down / 60:.0f} min)",
        f"derived: Juniper penalty ceiling = {JUNIPER_DEFAULTS.penalty_ceiling:.0f}",
    ]
    return ExperimentResult(
        experiment_id="T1",
        title="Default Damping Parameters",
        headers=["Damping Parameters", "Cisco", "Juniper"],
        rows=rows,
        notes=notes,
        data={"cisco": CISCO_DEFAULTS.describe(), "juniper": JUNIPER_DEFAULTS.describe()},
    )

"""Experiment drivers — one per table/figure of the paper, plus the
tech-report-style ablations. Each driver returns an
:class:`~repro.experiments.base.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports; the benchmark harness
under ``benchmarks/`` simply invokes these drivers.
"""

from repro.experiments.base import (
    ExperimentResult,
    SweepPoint,
    SweepSeries,
    default_pulse_counts,
    internet100_config,
    internet208_config,
    mesh100_config,
    run_sweep,
    small_mesh_config,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "SweepPoint",
    "SweepSeries",
    "default_pulse_counts",
    "get_experiment",
    "internet100_config",
    "internet208_config",
    "list_experiments",
    "mesh100_config",
    "run_sweep",
    "small_mesh_config",
]

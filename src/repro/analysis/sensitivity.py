"""Damping-parameter sensitivity analysis.

Section 3 of the paper: "ispAS can largely control the trade-off by
setting appropriate penalty increments, cut-off threshold, and reuse
threshold. The configuration can be tuned so that a small number of
flaps does not trigger any damping delay, while a large number of flaps
is suppressed." This module maps that trade-off with the closed-form
intended model: for each candidate configuration it reports the
suppression onset (how many flaps are tolerated) and the reuse delay
paid once suppression triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import DampingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensitivityPoint:
    """Intended behaviour of one candidate configuration."""

    label: str
    params: DampingParams
    #: Smallest pulse count that triggers suppression (None = never).
    suppression_onset: Optional[int]
    #: Intended reuse delay right at the onset pulse count (0 if never).
    delay_at_onset: float
    #: Intended reuse delay under sustained flapping (many pulses).
    delay_sustained: float


def evaluate_params(
    label: str,
    params: DampingParams,
    flap_interval: float = 60.0,
    sustained_pulses: int = 30,
    max_onset_search: int = 64,
) -> SensitivityPoint:
    """Evaluate one configuration with the intended model."""
    model = IntendedBehaviorModel(params, flap_interval=flap_interval, tup=0.0)
    onset = model.critical_pulse_count(max_pulses=max_onset_search)
    delay_at_onset = model.predict(onset).reuse_delay if onset is not None else 0.0
    delay_sustained = model.predict(sustained_pulses).reuse_delay
    return SensitivityPoint(
        label=label,
        params=params,
        suppression_onset=onset,
        delay_at_onset=delay_at_onset,
        delay_sustained=delay_sustained,
    )


def sweep_parameter(
    base: DampingParams,
    parameter: str,
    values: Sequence[float],
    flap_interval: float = 60.0,
) -> List[SensitivityPoint]:
    """Vary one ``DampingParams`` field across ``values``.

    ``parameter`` must name a field of :class:`DampingParams`; each value
    produces a re-validated configuration (invalid combinations raise
    :class:`~repro.errors.ConfigurationError` from the params layer).
    """
    if not values:
        raise ConfigurationError("values must be non-empty")
    if parameter not in DampingParams.__dataclass_fields__:
        raise ConfigurationError(f"unknown damping parameter {parameter!r}")
    points = []
    for value in values:
        params = base.with_overrides(**{parameter: value})
        points.append(
            evaluate_params(f"{parameter}={value:g}", params, flap_interval)
        )
    return points


def tolerance_frontier(
    base: DampingParams,
    target_onset: int,
    flap_interval: float = 60.0,
    low: float = 1000.0,
    high: float = 64_000.0,
    tolerance: float = 1.0,
) -> float:
    """Smallest cut-off threshold that tolerates ``target_onset - 1``
    pulses without suppression (binary search on the intended model).

    This answers the operator's question directly: "I want to allow k
    flaps before damping kicks in — where must my cut-off be?"
    """
    if target_onset < 1:
        raise ConfigurationError(f"target_onset must be >= 1, got {target_onset}")

    def onset_for(cutoff: float) -> Optional[int]:
        params = base.with_overrides(cutoff_threshold=cutoff)
        model = IntendedBehaviorModel(params, flap_interval=flap_interval, tup=0.0)
        return model.critical_pulse_count(max_pulses=max(64, target_onset * 2))

    if onset_for(high) is not None and onset_for(high) < target_onset:
        raise ConfigurationError(
            f"even cutoff {high} suppresses before pulse {target_onset}"
        )
    lo, hi = low, high
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        onset = onset_for(mid)
        if onset is not None and onset < target_onset:
            lo = mid
        else:
            hi = mid
    return hi


#: Convenience alias for tests/CLI: evaluate a family of configurations.
SensitivityEvaluator = Callable[[str, DampingParams], SensitivityPoint]

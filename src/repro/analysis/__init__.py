"""Post-run analysis of reuse-timer interactions.

The paper's core discovery is *causal*: updates triggered by route reuse
at one router recharge damping penalties (and postpone reuse timers) at
other routers. :mod:`repro.analysis.attribution` reconstructs that causal
structure from a finished run — attributing every reuse-timer
postponement to the noisy reuse event (or origin flap) whose update wave
caused it — and quantifies how much of the convergence delay secondary
charging is responsible for.
"""

from repro.analysis.attribution import (
    AttributionReport,
    RechargeAttribution,
    attribute_recharges,
    suppression_extension_seconds,
)
from repro.analysis.causality import (
    CausalityReport,
    analyze_trace,
    causal_chain,
    compare_with_attribution,
)
from repro.analysis.distance import (
    DistanceBucket,
    convergence_by_distance,
    farthest_settling_router,
)
from repro.analysis.invariants import (
    InvariantReport,
    InvariantViolation,
    check_converged_invariants,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    evaluate_params,
    sweep_parameter,
    tolerance_frontier,
)

__all__ = [
    "AttributionReport",
    "CausalityReport",
    "DistanceBucket",
    "InvariantReport",
    "InvariantViolation",
    "check_converged_invariants",
    "RechargeAttribution",
    "SensitivityPoint",
    "analyze_trace",
    "attribute_recharges",
    "causal_chain",
    "compare_with_attribution",
    "convergence_by_distance",
    "evaluate_params",
    "farthest_settling_router",
    "suppression_extension_seconds",
    "sweep_parameter",
    "tolerance_frontier",
]

"""Convergence as a function of distance from the instability.

The paper's Figure 7 picks a router "7 hops away from originAS" because
distance matters: remote routers see more exploration (more alternate
paths between them and the origin) and their reuse timers interact over
longer chains. This module aggregates per-router convergence instants —
the time of each router's *last* Loc-RIB change — by hop distance from
the ISP, producing the distance profile of an episode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.workload.scenarios import FlapRunResult, Scenario


@dataclass(frozen=True)
class DistanceBucket:
    """Convergence statistics for all routers at one hop distance."""

    hops: int
    router_count: int
    #: Mean/max seconds from the origin's final announcement to each
    #: router's last best-path change (0 for routers that settled before
    #: the final announcement).
    mean_settle: float
    max_settle: float
    #: How many routers at this distance suppressed at least one entry.
    routers_with_suppression: int


def convergence_by_distance(
    scenario: Scenario, result: FlapRunResult
) -> List[DistanceBucket]:
    """Distance profile of one finished episode."""
    prefix = scenario.config.prefix
    reference: Optional[float] = result.final_announcement_time
    distances = nx.single_source_shortest_path_length(
        scenario.config.topology.graph, scenario.isp
    )
    suppressors = set(result.collector.routers_with_suppressions())

    by_hops: Dict[int, List[str]] = {}
    for name, hops in distances.items():
        by_hops.setdefault(hops, []).append(name)

    buckets: List[DistanceBucket] = []
    for hops in sorted(by_hops):
        names = by_hops[hops]
        settles: List[float] = []
        suppression_count = 0
        for name in names:
            router = scenario.routers[name]
            last_change = router.last_best_change.get(prefix)
            if last_change is None or reference is None:
                settles.append(0.0)
            else:
                settles.append(max(0.0, last_change - reference))
            if name in suppressors:
                suppression_count += 1
        buckets.append(
            DistanceBucket(
                hops=hops,
                router_count=len(names),
                mean_settle=sum(settles) / len(settles),
                max_settle=max(settles),
                routers_with_suppression=suppression_count,
            )
        )
    return buckets


def farthest_settling_router(
    scenario: Scenario, result: FlapRunResult
) -> Optional[str]:
    """The router whose Loc-RIB settled last (None if nothing changed)."""
    prefix = scenario.config.prefix
    latest: Optional[str] = None
    latest_time = float("-inf")
    for name, router in scenario.routers.items():
        change = router.last_best_change.get(prefix)
        if change is not None and change > latest_time:
            latest_time = change
            latest = name
    return latest

"""Attribution of reuse-timer postponements (secondary charging).

A damping penalty can only be *recharged* while suppressed if an update
arrives — and after the origin's final announcement the only sources of
new update waves are noisy reuse-timer expirations. This module walks a
finished run and attributes each recharge to its most plausible cause:

- ``"reuse"`` — a noisy reuse expiry at some router happened within the
  attribution window before the recharge (the wave it launched is what
  recharged the penalty). This is the paper's secondary charging.
- ``"flap"``  — an origin flap happened within the window (primary
  charging during the flapping episode).
- ``"mixed"`` — both are within the window (the causes overlap and the
  trace alone cannot separate them).

The aggregate report answers the paper's Section 4/5 questions
quantitatively: how many postponements were caused by reuse waves, which
reuse events had the largest fan-out ("after shocks"), and how much
suppression time secondary charging added.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.damping import ReuseEvent, SuppressionRecord
from repro.core.params import DampingParams
from repro.errors import ConfigurationError
from repro.workload.scenarios import FlapRunResult

#: How far back (seconds) a cause may precede the recharge it explains.
#: Update waves take one MRAI round plus propagation to reach a
#: neighbour; 2x the default MRAI is a comfortable bound.
DEFAULT_WINDOW = 60.0


@dataclass(frozen=True)
class RechargeAttribution:
    """One reuse-timer postponement and its inferred cause."""

    time: float
    router: str
    peer: str
    prefix: str
    cause: str  # "reuse" | "flap" | "mixed" | "unattributed"
    #: Time of the attributed noisy reuse (None unless cause includes reuse).
    reuse_time: Optional[float] = None
    #: Time of the attributed flap (None unless cause includes flap).
    flap_time: Optional[float] = None


@dataclass
class AttributionReport:
    """Aggregate view of secondary charging in one run."""

    attributions: List[RechargeAttribution] = field(default_factory=list)
    window: float = DEFAULT_WINDOW

    @property
    def total(self) -> int:
        return len(self.attributions)

    def count(self, cause: str) -> int:
        return sum(1 for a in self.attributions if a.cause == cause)

    @property
    def reuse_caused(self) -> int:
        """Postponements definitely caused by reuse waves."""
        return self.count("reuse")

    @property
    def flap_caused(self) -> int:
        return self.count("flap")

    @property
    def mixed(self) -> int:
        return self.count("mixed")

    @property
    def unattributed(self) -> int:
        return self.count("unattributed")

    @property
    def secondary_fraction(self) -> float:
        """Fraction of postponements attributable (at least partly) to
        reuse waves — the footprint of secondary charging."""
        if not self.attributions:
            return 0.0
        return (self.reuse_caused + self.mixed) / self.total

    def fanout_by_reuse_event(self) -> List[Tuple[float, int]]:
        """(reuse time, number of recharges it explains), largest first.

        The big entries are the paper's "after shocks": a single reuse
        expiry whose update wave postpones many other reuse timers.
        """
        counts: Dict[float, int] = {}
        for attribution in self.attributions:
            if attribution.reuse_time is not None:
                counts[attribution.reuse_time] = counts.get(attribution.reuse_time, 0) + 1
        return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def _latest_before(times: Sequence[float], t: float, window: float) -> Optional[float]:
    """Largest element of sorted ``times`` in ``[t - window, t]``."""
    index = bisect.bisect_right(times, t) - 1
    if index < 0:
        return None
    candidate = times[index]
    if candidate < t - window:
        return None
    return candidate


def attribute_recharges(
    suppression_records: Dict[str, List[SuppressionRecord]],
    reuse_events: Sequence[ReuseEvent],
    flap_times: Sequence[float],
    window: float = DEFAULT_WINDOW,
) -> AttributionReport:
    """Attribute every recharge in ``suppression_records``.

    Parameters
    ----------
    suppression_records:
        ``{router: [SuppressionRecord, ...]}`` as returned by
        :meth:`repro.metrics.collector.MetricsCollector.suppression_records`.
    reuse_events:
        All reuse expiries in the run (only *noisy* ones can cause
        recharges; silent ones are ignored).
    flap_times:
        The origin's flap event times.
    window:
        Attribution window in seconds.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be > 0, got {window}")
    noisy_times = sorted(event.time for event in reuse_events if event.noisy)
    flap_sorted = sorted(flap_times)
    report = AttributionReport(window=window)
    for router, records in suppression_records.items():
        for record in records:
            for recharge_time in record.recharges:
                reuse_time = _latest_before(noisy_times, recharge_time, window)
                flap_time = _latest_before(flap_sorted, recharge_time, window)
                if reuse_time is not None and flap_time is not None:
                    cause = "mixed"
                elif reuse_time is not None:
                    cause = "reuse"
                elif flap_time is not None:
                    cause = "flap"
                else:
                    cause = "unattributed"
                report.attributions.append(
                    RechargeAttribution(
                        time=recharge_time,
                        router=router,
                        peer=record.peer,
                        prefix=record.prefix,
                        cause=cause,
                        reuse_time=reuse_time,
                        flap_time=flap_time,
                    )
                )
    report.attributions.sort(key=lambda a: a.time)
    return report


def analyze_run(result: FlapRunResult, window: float = DEFAULT_WINDOW) -> AttributionReport:
    """Attribution report for a finished scenario episode."""
    return attribute_recharges(
        result.collector.suppression_records(),
        result.collector.reuse_events(),
        result.flap_times,
        window=window,
    )


def suppression_extension_seconds(
    records: Sequence[SuppressionRecord], params: DampingParams
) -> float:
    """Total suppression time added beyond the charging-only estimate.

    For each completed suppression, the route would have been reused
    ``reuse_delay(penalty_at_start)`` after it started had nothing
    recharged it; anything beyond that is time added by recharges. The
    sum over all records is the aggregate delay that reuse-timer
    interactions injected into the run.
    """
    total = 0.0
    for record in records:
        if record.ended is None:
            continue
        baseline = record.started + params.reuse_delay(record.penalty_at_start)
        total += max(0.0, record.ended - baseline)
    return total

"""Causal attribution from trace DAGs.

Where :mod:`repro.analysis.attribution` infers causes from *time
windows* (a recharge is blamed on the latest noisy reuse or flap within
60 s), this module reads them off the causal trace exactly: every
:class:`~repro.trace.records.TraceRecord` names the record that
triggered it, so a penalty charge either descends from an origin
``flap`` or from a ``reuse_expired`` somewhere upstream — no window, no
"mixed" bucket.

Because ``cause_id`` is always smaller than ``id`` (causes are emitted
before their effects), the classification is a single linear pass: a
record's *root class* is its own kind if it is a ``flap`` or a
``reuse_expired``, and otherwise the root class of its cause. A charge
whose root class is ``reuse_expired`` is the paper's **secondary
charging**; one rooted in a ``flap`` is primary charging, split into
*origin-flap* (the flap's own withdrawal/re-announcement) and
*path-exploration* (attribute changes as routers walk alternate paths).

Muffling is equally direct: a ``reuse_expired`` with ``noisy=False`` is
a reuse timer that fired into silence, and having no descendants in the
DAG confirms it caused nothing downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.trace.records import TraceRecord

#: Root classes assigned by the linear DAG pass.
_ROOT_NONE = 0
_ROOT_FLAP = 1
_ROOT_REUSE = 2
_ROOT_FAULT = 3

#: Charge classification labels (Table-1 vocabulary plus the injected
#: fault class introduced by the fault-injection subsystem).
CHARGE_CLASSES = (
    "origin-flap",
    "path-exploration",
    "secondary-charging",
    "fault-induced",
)


@dataclass
class CausalityReport:
    """Exact charge/postponement attribution for one trace."""

    records_total: int = 0
    counts_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Actually-charged ``charge`` records by root class.
    charges_by_class: Dict[str, int] = field(
        default_factory=lambda: {label: 0 for label in CHARGE_CLASSES}
    )
    #: ``reuse_postponed`` records by root class of their charge.
    postponements_by_class: Dict[str, int] = field(
        default_factory=lambda: {
            "reuse": 0,
            "flap": 0,
            "fault": 0,
            "unattributed": 0,
        }
    )
    reuse_total: int = 0
    reuse_noisy: int = 0
    #: Muffled (silent) expiries — the paper's wasted reuse timers.
    reuse_muffled: int = 0
    #: Muffled expiries with no descendants in the DAG (should equal
    #: ``reuse_muffled``: silence means nothing downstream).
    reuse_muffled_childless: int = 0

    @property
    def charges_total(self) -> int:
        return sum(self.charges_by_class.values())

    @property
    def postponements_total(self) -> int:
        return sum(self.postponements_by_class.values())

    @property
    def secondary_fraction(self) -> float:
        """Fraction of reuse-timer postponements caused by reuse waves —
        the exact counterpart of
        :attr:`repro.analysis.attribution.AttributionReport.secondary_fraction`."""
        total = self.postponements_total
        if total == 0:
            return 0.0
        return self.postponements_by_class["reuse"] / total

    @property
    def secondary_charge_fraction(self) -> float:
        """Fraction of all penalty charges that are secondary charging."""
        total = self.charges_total
        if total == 0:
            return 0.0
        return self.charges_by_class["secondary-charging"] / total

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``rfd-repro trace`` output payload)."""
        return {
            "records_total": self.records_total,
            "counts_by_kind": dict(sorted(self.counts_by_kind.items())),
            "charges": {
                "total": self.charges_total,
                "by_class": dict(self.charges_by_class),
                "secondary_fraction": round(self.secondary_charge_fraction, 6),
            },
            "postponements": {
                "total": self.postponements_total,
                "by_class": dict(self.postponements_by_class),
                "secondary_fraction": round(self.secondary_fraction, 6),
            },
            "reuse": {
                "total": self.reuse_total,
                "noisy": self.reuse_noisy,
                "muffled": self.reuse_muffled,
                "muffled_childless": self.reuse_muffled_childless,
            },
        }


def analyze_trace(records: Sequence[TraceRecord]) -> CausalityReport:
    """Walk one trace DAG and attribute every charge and postponement.

    ``records`` must be a complete trace (ids 1..n in order, causes
    always preceding effects) as produced by the tracer or parsed back
    from a JSONL file.
    """
    report = CausalityReport(records_total=len(records))
    # root_class[i] = class of record id i+1; child_count likewise.
    root_class: List[int] = [_ROOT_NONE] * len(records)
    child_count: List[int] = [0] * len(records)

    for index, record in enumerate(records):
        report.counts_by_kind[record.kind] = (
            report.counts_by_kind.get(record.kind, 0) + 1
        )
        cause_class = _ROOT_NONE
        if record.cause_id is not None:
            cause_class = root_class[record.cause_id - 1]
            child_count[record.cause_id - 1] += 1
        if record.kind == "flap":
            root_class[index] = _ROOT_FLAP
        elif record.kind == "reuse_expired":
            root_class[index] = _ROOT_REUSE
        elif record.kind == "fault":
            root_class[index] = _ROOT_FAULT
        else:
            root_class[index] = cause_class

        if record.kind == "charge" and record.data.get("charged", True):
            report.charges_by_class[_charge_class(record, cause_class)] += 1
        elif record.kind == "reuse_postponed":
            if cause_class == _ROOT_REUSE:
                label = "reuse"
            elif cause_class == _ROOT_FLAP:
                label = "flap"
            elif cause_class == _ROOT_FAULT:
                label = "fault"
            else:
                label = "unattributed"
            report.postponements_by_class[label] += 1

    for index, record in enumerate(records):
        if record.kind != "reuse_expired":
            continue
        report.reuse_total += 1
        if record.data.get("noisy"):
            report.reuse_noisy += 1
        else:
            report.reuse_muffled += 1
            if child_count[index] == 0:
                report.reuse_muffled_childless += 1
    return report


def _charge_class(record: TraceRecord, cause_class: int) -> str:
    if cause_class == _ROOT_REUSE:
        return "secondary-charging"
    if cause_class == _ROOT_FAULT:
        return "fault-induced"
    if record.data.get("kind") == "attribute_change":
        return "path-exploration"
    return "origin-flap"


def compare_with_attribution(
    report: CausalityReport, windowed_secondary_fraction: float
) -> Dict[str, float]:
    """Trace-exact vs window-inferred secondary-charging share.

    The windowed estimator counts a postponement as (at least partly)
    reuse-caused when a noisy reuse fell in its window, so its
    ``(reuse + mixed) / total`` upper-bounds the exact share; the two
    agree tightly on the paper's scenarios because most recharges happen
    after the final flap, when reuse waves are the only update source.
    """
    exact = report.secondary_fraction
    return {
        "trace_secondary_fraction": round(exact, 6),
        "windowed_secondary_fraction": round(windowed_secondary_fraction, 6),
        "difference": round(abs(exact - windowed_secondary_fraction), 6),
    }


def causal_chain(
    records: Sequence[TraceRecord], record_id: int
) -> List[TraceRecord]:
    """The cause chain of ``record_id``, root first (debugging/CLI aid)."""
    by_id: Dict[int, TraceRecord] = {record.id: record for record in records}
    chain: List[TraceRecord] = []
    current: Optional[int] = record_id
    while current is not None:
        record = by_id[current]
        chain.append(record)
        current = record.cause_id
    chain.reverse()
    return chain


__all__ = [
    "CHARGE_CLASSES",
    "CausalityReport",
    "analyze_trace",
    "causal_chain",
    "compare_with_attribution",
]

"""Runtime verification of whole-network protocol invariants.

A converged path-vector network must satisfy global safety properties
regardless of what happened on the way: loop-free realisable paths,
Loc-RIBs that equal the decision-process winner over the currently
usable candidates, and no suppressed entries after a full drain. The
property-based tests drive random workloads through
:func:`check_converged_invariants`; users can call it after their own
experiments as a cheap "did the simulation stay sane?" oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bgp.decision import select_best
from repro.errors import SimulationError
from repro.workload.scenarios import Scenario


@dataclass
class InvariantViolation:
    """One broken invariant at one router."""

    router: str
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.router}: {self.invariant} — {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep over a network."""

    violations: List[InvariantViolation] = field(default_factory=list)
    routers_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_on_violation(self) -> None:
        if self.violations:
            summary = "; ".join(str(v) for v in self.violations[:5])
            raise SimulationError(
                f"{len(self.violations)} protocol invariant violations: {summary}"
            )


def check_converged_invariants(
    scenario: Scenario,
    expect_reachable: bool = True,
    expect_drained: bool = True,
) -> InvariantReport:
    """Verify every router of a (supposedly) converged scenario.

    Parameters
    ----------
    scenario:
        A scenario whose engine queue has drained.
    expect_reachable:
        Assert every router has a route (set ``False`` when the origin's
        final state is down).
    expect_drained:
        Assert no entry is still suppressed (always true after a full
        drain, since reuse timers are bounded by the hold-down ceiling).
    """
    prefix = scenario.config.prefix
    report = InvariantReport()

    def violation(router: str, invariant: str, detail: str) -> None:
        report.violations.append(InvariantViolation(router, invariant, detail))

    for router in scenario.routers.values():
        report.routers_checked += 1
        best = router.best_route(prefix)

        if best is None:
            if expect_reachable:
                violation(router.name, "reachability", "no route after drain")
            continue

        if len(set(best.as_path)) != len(best.as_path):
            violation(router.name, "loop-freedom", f"repeated AS in {best.as_path}")
        if router.name in best.as_path:
            violation(router.name, "loop-freedom", f"self in path {best.as_path}")

        hops = (router.name,) + best.as_path
        for a, b in zip(hops, hops[1:]):
            if not scenario.network.has_link(a, b):
                violation(router.name, "realisability", f"phantom hop {a}-{b}")
                break

        candidates = router._candidates(prefix)
        winner = select_best(candidates, router._local_pref)
        if winner is None or winner[1] != best:
            violation(
                router.name,
                "decision-consistency",
                f"Loc-RIB {best.as_path} != winner "
                f"{winner[1].as_path if winner else None}",
            )

        if expect_drained and router.suppressed_entry_count() > 0:
            violation(
                router.name,
                "drain",
                f"{router.suppressed_entry_count()} entries still suppressed",
            )

    return report

"""Workloads: flap (pulse) schedules and the standard experiment scenario
(warm-up, measured flapping episode, drain) from the paper's Section 5.1
methodology."""

from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import (
    FlapRunResult,
    Scenario,
    ScenarioConfig,
    WarmStateCache,
    WarmStateSnapshot,
)

__all__ = [
    "FlapRunResult",
    "PulseSchedule",
    "Scenario",
    "ScenarioConfig",
    "WarmStateCache",
    "WarmStateSnapshot",
]

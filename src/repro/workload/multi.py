"""Multiple flapping origins in one network.

The paper studies a single unstable destination; a natural extension
(its Section 8 argues damping matters wherever "resource constraints …
are limited") is several independently flapping prefixes sharing the
same routers. Because damping state is per (peer, prefix), the prefixes
do not interact through penalties — but they *do* share links, MRAI
timers, and router CPUs, so their update waves interleave.

:class:`MultiOriginScenario` attaches ``k`` origins (each with its own
prefix) to distinct ISPs, warms them all up, drives one
:class:`~repro.workload.pulses.PulseSchedule` per origin concurrently,
and reports per-prefix convergence and message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import ScenarioConfig


@dataclass
class PrefixOutcome:
    """Per-prefix results of a multi-origin episode."""

    prefix: str
    origin: str
    isp: str
    pulses: int
    convergence_time: float
    message_count: int


@dataclass
class MultiOriginResult:
    outcomes: List[PrefixOutcome]
    total_messages: int
    end_time: float
    collector: MetricsCollector


class MultiOriginScenario:
    """``k`` independently flapping origins over one shared topology."""

    def __init__(self, config: ScenarioConfig, origin_count: int) -> None:
        if origin_count < 1:
            raise ConfigurationError(f"origin_count must be >= 1, got {origin_count}")
        if origin_count > config.topology.node_count:
            raise ConfigurationError(
                "cannot attach more origins than topology nodes"
            )
        if config.use_no_valley:
            raise ConfigurationError(
                "multi-origin scenarios currently support shortest-path policy only"
            )
        self.config = config
        self.rng = RngRegistry(config.seed)
        self.engine = Engine()
        self.network = Network(self.engine, self.rng)
        self.routers: Dict[str, BgpRouter] = {}
        self._build_routers()
        self.origins: List[OriginRouter] = []
        self._attach_origins(origin_count)
        self._warmed = False
        self._ran = False

    def _build_routers(self) -> None:
        router_config = RouterConfig(
            damping=self.config.damping,
            rcn_enabled=self.config.rcn,
            selective_enabled=self.config.selective,
            mrai=self.config.mrai,
        )
        for name in self.config.topology.nodes:
            router = BgpRouter(name, self.engine, self.rng, config=router_config)
            self.routers[name] = router
            self.network.add_node(router)
        for a, b in self.config.topology.edges:
            self.network.add_link(a, b, self.config.link)

    def _attach_origins(self, count: int) -> None:
        chooser = self.rng.stream("multi:isps")
        isps = chooser.sample(self.config.topology.nodes, count)
        for index, isp in enumerate(isps):
            name = f"origin{index}"
            prefix = f"p{index}"
            origin = OriginRouter(name, self.engine, self.rng, prefix=prefix, isp=isp)
            self.network.add_node(origin)
            self.network.add_link(name, isp, self.config.link)
            self.origins.append(origin)

    # ------------------------------------------------------------------

    def warm_up(self) -> None:
        """Announce every prefix and run to a fully converged start."""
        if self._warmed:
            raise SimulationError("multi-origin scenario already warmed up")
        self._warmed = True
        for origin in self.origins:
            origin.bring_up()
        self.engine.run_until_idle(max_time=self.config.warmup_horizon)
        if self.engine.pending_count:
            raise SimulationError("multi-origin warm-up did not converge")
        for router in self.routers.values():
            for origin in self.origins:
                if not router.has_route(origin.prefix):
                    raise SimulationError(
                        f"{router.name} has no route to {origin.prefix} after warm-up"
                    )
            router.reset_damping()

    def run(self, schedules: Sequence[Optional[PulseSchedule]]) -> MultiOriginResult:
        """Drive one schedule per origin (``None`` = that origin is stable)."""
        if len(schedules) != len(self.origins):
            raise ConfigurationError(
                f"need {len(self.origins)} schedules, got {len(schedules)}"
            )
        if not self._warmed:
            self.warm_up()
        if self._ran:
            raise SimulationError("multi-origin scenario already ran")
        self._ran = True

        collector = MetricsCollector()
        collector.attach(self.network, list(self.routers.values()))
        start = self.engine.now
        final_announcements: Dict[str, Optional[float]] = {}
        for origin, schedule in zip(self.origins, schedules):
            if schedule is None or not schedule.events:
                final_announcements[origin.prefix] = None
                continue
            for offset, status in schedule.events:
                action = origin.take_down if status == "down" else origin.bring_up
                self.engine.schedule_at(
                    start + offset, action, actor=origin.name, tag="flap"
                )
            final_announcements[origin.prefix] = (
                start + schedule.final_announcement_offset
            )
        self.engine.run_until_idle(max_time=start + self.config.run_horizon)
        if self.engine.pending_count:
            raise SimulationError("multi-origin episode did not drain")

        outcomes: List[PrefixOutcome] = []
        for origin, schedule in zip(self.origins, schedules):
            prefix = origin.prefix
            final = final_announcements[prefix]
            prefix_updates = [u.time for u in collector.updates if u.prefix == prefix]
            if final is None or not prefix_updates or max(prefix_updates) <= final:
                convergence = 0.0
            else:
                convergence = max(prefix_updates) - final
            outcomes.append(
                PrefixOutcome(
                    prefix=prefix,
                    origin=origin.name,
                    isp=origin.isp,
                    pulses=schedule.pulse_count if schedule else 0,
                    convergence_time=convergence,
                    message_count=len(prefix_updates),
                )
            )
        return MultiOriginResult(
            outcomes=outcomes,
            total_messages=collector.message_count,
            end_time=self.engine.now,
            collector=collector,
        )


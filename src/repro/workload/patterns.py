"""Irregular flap patterns.

The paper's evaluation uses a fixed flapping interval and notes that "in
reality unstable destinations exhibit different flapping patterns". The
companion technical report varies the interval; this module generalises
further with the patterns measurement studies report for unstable
prefixes:

- :func:`poisson_pattern` — memoryless up/down transitions (exponential
  holding times), the classic model for independently failing links,
- :func:`jittered_pattern` — the paper's regular pulses with bounded
  random perturbation per event,
- :func:`burst_pattern` — quiet periods separated by bursts of rapid
  pulses (maintenance-window-style instability).

All generators return a :class:`~repro.workload.pulses.PulseSchedule`
(events strictly increasing, final event an announcement) so they plug
directly into :meth:`repro.workload.scenarios.Scenario.run`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry
from repro.workload.pulses import PulseSchedule


def poisson_pattern(
    pulses: int,
    mean_down_time: float,
    mean_up_time: float,
    rng: random.Random,
    min_gap: float = 1.0,
) -> PulseSchedule:
    """``pulses`` down/up cycles with exponential holding times.

    ``mean_down_time`` is the expected outage length, ``mean_up_time``
    the expected stable period between outages. ``min_gap`` floors every
    holding time so events never coincide.
    """
    if pulses < 0:
        raise ConfigurationError(f"pulses must be >= 0, got {pulses}")
    if mean_down_time <= 0 or mean_up_time <= 0:
        raise ConfigurationError("mean holding times must be > 0")
    if min_gap <= 0:
        raise ConfigurationError(f"min_gap must be > 0, got {min_gap}")
    events: List[Tuple[float, str]] = []
    clock = 0.0
    for i in range(pulses):
        if i > 0:
            clock += max(min_gap, rng.expovariate(1.0 / mean_up_time))
        events.append((clock, "down"))
        clock += max(min_gap, rng.expovariate(1.0 / mean_down_time))
        events.append((clock, "up"))
    return PulseSchedule.from_events(events)


def jittered_pattern(
    pulses: int,
    flap_interval: float,
    jitter_fraction: float,
    rng: random.Random,
) -> PulseSchedule:
    """The paper's regular pulses with each event perturbed by up to
    ``±jitter_fraction × flap_interval`` (order preserved)."""
    if not (0.0 <= jitter_fraction < 0.5):
        raise ConfigurationError(
            f"jitter_fraction must be in [0, 0.5), got {jitter_fraction}"
        )
    base = PulseSchedule.regular(pulses, flap_interval)
    spread = jitter_fraction * flap_interval
    events: List[Tuple[float, str]] = []
    for offset, status in base.events:
        perturbed = offset + rng.uniform(-spread, spread)
        events.append((max(0.0, perturbed), status))
    # Jitter below half an interval preserves order, but clamp anyway.
    fixed: List[Tuple[float, str]] = []
    previous = -1.0
    for offset, status in events:
        offset = max(offset, previous + 1e-6)
        fixed.append((offset, status))
        previous = offset
    return PulseSchedule.from_events(fixed)


def burst_pattern(
    bursts: int,
    pulses_per_burst: int,
    intra_burst_interval: float,
    inter_burst_gap: float,
) -> PulseSchedule:
    """``bursts`` groups of rapid pulses separated by long quiet gaps."""
    if bursts < 0 or pulses_per_burst <= 0:
        raise ConfigurationError("bursts must be >= 0 and pulses_per_burst > 0")
    if intra_burst_interval <= 0 or inter_burst_gap <= 0:
        raise ConfigurationError("intervals must be > 0")
    events: List[Tuple[float, str]] = []
    clock = 0.0
    for burst in range(bursts):
        if burst > 0:
            clock += inter_burst_gap
        for _ in range(pulses_per_burst):
            events.append((clock, "down"))
            clock += intra_burst_interval
            events.append((clock, "up"))
            clock += intra_burst_interval
        clock -= intra_burst_interval  # no trailing intra gap
    return PulseSchedule.from_events(events)


def describe_pattern(schedule: PulseSchedule) -> dict:
    """Summary statistics of a schedule (for reports and tests)."""
    if not schedule.events:
        return {
            "pulses": 0,
            "duration": 0.0,
            "min_gap": None,
            "max_gap": None,
            "mean_gap": None,
        }
    offsets = [offset for offset, _ in schedule.events]
    gaps = [b - a for a, b in zip(offsets, offsets[1:])]
    return {
        "pulses": schedule.pulse_count,
        "duration": schedule.duration,
        "min_gap": min(gaps) if gaps else None,
        "max_gap": max(gaps) if gaps else None,
        "mean_gap": (sum(gaps) / len(gaps)) if gaps else None,
    }


def pattern_by_name(
    name: str,
    pulses: int,
    flap_interval: float,
    rng: Optional[random.Random] = None,
) -> PulseSchedule:
    """Factory used by the CLI and ablation benches.

    When ``rng`` is omitted the pattern draws from a fresh, *named*
    ``RngRegistry`` stream (``workload:pattern`` under master seed 0):
    reproducible per call, but independent of every other
    default-seeded call site. The previous ``random.Random(0)``
    fallback aliased this stream with ``pick_isp``'s (detlint DET002).
    """
    chooser = rng if rng is not None else RngRegistry(0).stream("workload:pattern")
    if name == "regular":
        return PulseSchedule.regular(pulses, flap_interval)
    if name == "poisson":
        return poisson_pattern(
            pulses, mean_down_time=flap_interval, mean_up_time=flap_interval,
            rng=chooser,
        )
    if name == "jittered":
        return jittered_pattern(pulses, flap_interval, 0.25, chooser)
    if name == "burst":
        return burst_pattern(
            max(1, pulses // 3 or 1),
            3,
            intra_burst_interval=flap_interval / 4.0,
            inter_burst_gap=flap_interval * 10.0,
        )
    raise ConfigurationError(
        f"unknown pattern {name!r}; choose regular/poisson/jittered/burst"
    )

"""Pulse schedules.

"We call a pair of a withdrawal and its following announcement a pulse"
(Section 5.1). A schedule of ``n`` pulses with flap interval ``w`` is the
event train ``down@0, up@w, down@2w, up@3w, …`` — consecutive events are
``w`` apart, the final event is always an announcement, and after it the
origin stays stable.

Schedules support irregular spacing too (for the tech-report-style
ablations): build with explicit event times via :meth:`from_events`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PulseSchedule:
    """A time-stamped train of origin flap events.

    ``events`` holds ``(offset_seconds, status)`` pairs with status
    ``"down"`` or ``"up"``, sorted by offset, relative to the episode
    start.
    """

    events: Tuple[Tuple[float, str], ...]

    def __post_init__(self) -> None:
        previous = -1.0
        for offset, status in self.events:
            if status not in ("down", "up"):
                raise ConfigurationError(f"bad flap status {status!r}")
            if offset < 0:
                raise ConfigurationError(f"negative flap offset {offset}")
            if offset <= previous:
                raise ConfigurationError("flap events must be strictly increasing in time")
            previous = offset
        if self.events and self.events[-1][1] != "up":
            raise ConfigurationError(
                "a pulse schedule must end with an announcement ('up') — "
                "the paper's final update from the origin is always an "
                "announcement"
            )

    @classmethod
    def regular(cls, pulses: int, flap_interval: float = 60.0) -> "PulseSchedule":
        """The paper's standard schedule: ``pulses`` down/up pairs with
        ``flap_interval`` seconds between consecutive events."""
        if pulses < 0:
            raise ConfigurationError(f"pulses must be >= 0, got {pulses}")
        if flap_interval <= 0:
            raise ConfigurationError(f"flap_interval must be > 0, got {flap_interval}")
        events: List[Tuple[float, str]] = []
        for i in range(pulses):
            start = i * 2.0 * flap_interval
            events.append((start, "down"))
            events.append((start + flap_interval, "up"))
        return cls(tuple(events))

    @classmethod
    def from_events(cls, events: Sequence[Tuple[float, str]]) -> "PulseSchedule":
        return cls(tuple(events))

    @property
    def pulse_count(self) -> int:
        return sum(1 for _, status in self.events if status == "down")

    @property
    def duration(self) -> float:
        """Offset of the final event (0.0 for an empty schedule)."""
        return self.events[-1][0] if self.events else 0.0

    @property
    def final_announcement_offset(self) -> float:
        """Offset of the last 'up' event — the convergence clock zero."""
        for offset, status in reversed(self.events):
            if status == "up":
                return offset
        return 0.0

    def __len__(self) -> int:
        return len(self.events)

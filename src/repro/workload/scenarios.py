"""The standard experiment scenario (paper Section 5.1).

A :class:`Scenario` packages the paper's methodology:

1. **Build** — instantiate the topology as a network of
   :class:`~repro.bgp.router.BgpRouter` nodes, pick a random ``ispAS``,
   and attach the flapping ``originAS`` to it.
2. **Warm up** — the origin announces its prefix; run until every node
   has learned a stable route; then wipe all damping state so the
   measured episode starts clean. The warm-up's convergence time doubles
   as the measured ``t_up`` for the intended-behaviour model.
3. **Run** — attach a fresh :class:`~repro.metrics.collector.MetricsCollector`,
   drive a :class:`~repro.workload.pulses.PulseSchedule` through the
   origin, and run the event queue dry. Convergence time and message
   count are measured exactly as the paper defines them.

Because step 2 is identical for every point of a sweep (the pulse
schedule only enters at step 3), a warmed-up scenario can be captured
once as a :class:`WarmStateSnapshot` — a pickle of the converged network,
damping, RIB, and RNG state — and restored per point instead of
re-running warm-up. Restoration is provably digest-identical to a fresh
warm-up: the pickle preserves every ``random.Random`` stream state, the
engine's clock and sequence counter, and all protocol state exactly.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.bgp.graceful_restart import GracefulRestartConfig
from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.policy import NoValleyPolicy, RoutingPolicy, ShortestPathPolicy
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.intended import IntendedBehaviorModel
from repro.core.params import DampingParams
from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.metrics.convergence import ConvergenceSummary, summarize_convergence
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.events import EventTrace
from repro.sim.rng import RngRegistry
from repro.topology.model import Topology
from repro.workload.pulses import PulseSchedule

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer

ORIGIN_NAME = "originAS"
DEFAULT_PREFIX = "p0"


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one simulation run (minus the pulse count)."""

    topology: Topology
    damping: Optional[DampingParams] = None
    rcn: bool = False
    selective: bool = False
    use_no_valley: bool = False
    mrai: MraiConfig = field(default_factory=MraiConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    seed: int = 0
    isp: Optional[str] = None
    #: Fraction of topology routers that run damping (partial deployment
    #: ablation); 1.0 = full deployment as in the paper's main results.
    damping_fraction: float = 1.0
    #: Per-router damping-parameter overrides (heterogeneous deployments,
    #: paper Section 7: "different routers have inconsistent damping
    #: parameter settings"). Routers not listed use ``damping``.
    damping_overrides: Optional[Mapping[str, DampingParams]] = None
    prefix: str = DEFAULT_PREFIX
    warmup_horizon: float = 5_000.0
    run_horizon: float = 100_000.0
    #: Opt-in runtime schedule-race detector: record same-instant event
    #: ties touching the same router (see ``docs/STATIC_ANALYSIS.md``).
    #: Detection is passive — results are bit-identical either way.
    detect_schedule_ties: bool = False
    #: Optional fault schedule injected into the measured episode
    #: (crashes, link failures, lossy links — see ``docs/ROBUSTNESS.md``).
    #: A non-empty plan also arms the engine watchdog.
    faults: Optional["FaultPlan"] = None
    #: Graceful-restart capability granted to every topology router:
    #: ``None`` means crashes are handled as hard session resets;
    #: otherwise neighbours retain a crashed peer's routes as stale
    #: under this restart-timer configuration (RFC 4724 style).
    graceful_restart: Optional[GracefulRestartConfig] = None
    #: Whether a session loss's implicit withdrawals charge the damping
    #: penalty (RFC 2439 leaves this to the implementation; the fault
    #: experiments turn it on to measure crash-induced charging).
    charge_on_session_reset: bool = False
    #: Batch pending link deliveries behind one engine event per link
    #: direction (see docs/SCALING.md). Delivery times are unchanged but
    #: same-instant execution order can differ, so this is opt-in for
    #: large-graph scenarios; the paper's figures keep it off to
    #: preserve their committed digests.
    coalesce_delivery: bool = False

    def __post_init__(self) -> None:
        if self.rcn and self.selective:
            raise ConfigurationError("rcn and selective filters are mutually exclusive")
        if not (0.0 <= self.damping_fraction <= 1.0):
            raise ConfigurationError(
                f"damping_fraction must be in [0, 1], got {self.damping_fraction}"
            )
        if self.use_no_valley and self.topology.relationships is None:
            raise ConfigurationError(
                "no-valley policy requires a topology with relationships"
            )
        if self.isp is not None and self.isp not in self.topology.graph:
            raise ConfigurationError(f"isp {self.isp!r} is not in the topology")
        if self.damping_overrides:
            unknown = [
                name
                for name in self.damping_overrides
                if name not in self.topology.graph
            ]
            if unknown:
                raise ConfigurationError(
                    f"damping_overrides for unknown routers: {unknown[:5]}"
                )
            if self.damping is None:
                raise ConfigurationError(
                    "damping_overrides require a base damping configuration"
                )
        if self.faults is not None:
            unknown_routers = sorted(
                name
                for name in self.faults.routers()
                if name != ORIGIN_NAME and name not in self.topology.graph
            )
            if unknown_routers:
                raise ConfigurationError(
                    f"fault plan references routers not in the topology: "
                    f"{unknown_routers[:5]}"
                )

    def with_damping(self, damping: Optional[DampingParams]) -> "ScenarioConfig":
        return replace(self, damping=damping)

    def label(self) -> str:
        parts = [self.topology.name]
        parts.append("damping" if self.damping is not None else "no-damping")
        if self.rcn:
            parts.append("rcn")
        if self.selective:
            parts.append("selective")
        if self.use_no_valley:
            parts.append("no-valley")
        return "/".join(parts)


@dataclass
class FlapRunResult:
    """Outcome of one measured flapping episode."""

    config: ScenarioConfig
    schedule: PulseSchedule
    collector: MetricsCollector
    summary: ConvergenceSummary
    #: Absolute time of the origin's final announcement.
    final_announcement_time: Optional[float]
    #: Absolute flap event times (for phase classification).
    flap_times: List[float]
    #: Measured warm-up convergence time (the empirical ``t_up``).
    warmup_convergence: float
    #: Engine clock when the run drained.
    end_time: float
    #: Time-ordered structured trace of the measured episode: ``flap``,
    #: ``update``, ``suppress``, and ``reuse`` records.
    trace: EventTrace = field(default_factory=EventTrace)

    @property
    def convergence_time(self) -> float:
        return self.summary.convergence_time

    @property
    def message_count(self) -> int:
        return self.summary.message_count


class Scenario:
    """A built simulation, ready to warm up and run one episode.

    A scenario instance is single-use: build → warm_up → run. Sweeps
    construct a fresh scenario per data point (see
    :mod:`repro.experiments.base`).
    """

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = RngRegistry(config.seed)
        self.engine = Engine(detect_ties=config.detect_schedule_ties)
        self.network = Network(
            self.engine, self.rng, coalesce_delivery=config.coalesce_delivery
        )
        self.routers: Dict[str, BgpRouter] = {}
        self.policy = self._build_policy()
        self.isp = self._choose_isp()
        self._build_routers()
        self.origin = self._build_origin()
        self.warmup_convergence: float = 0.0
        #: Set by :meth:`run` when the config carries a fault plan.
        self.fault_injector: Optional[FaultInjector] = None
        self._warmed_up = False
        self._ran = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_policy(self) -> RoutingPolicy:
        if not self.config.use_no_valley:
            return ShortestPathPolicy()
        relationships = self.config.topology.relationships
        assert relationships is not None  # validated by ScenarioConfig
        return NoValleyPolicy(relationships.relationship)

    def _choose_isp(self) -> str:
        if self.config.isp is not None:
            return self.config.isp
        chooser = self.rng.stream("scenario:isp")
        return chooser.choice(self.config.topology.nodes)

    def _damping_nodes(self) -> set:
        nodes = self.config.topology.nodes
        if self.config.damping is None:
            return set()
        if self.config.damping_fraction >= 1.0:
            return set(nodes)
        count = int(round(len(nodes) * self.config.damping_fraction))
        chooser = self.rng.stream("scenario:deployment")
        # The ISP always damps in partial deployments — it is the router
        # whose damping the design intends to do the isolation.
        chosen = set(chooser.sample(nodes, count)) if count else set()
        chosen.add(self.isp)
        return chosen

    def _build_routers(self) -> None:
        damping_nodes = self._damping_nodes()
        overrides = self.config.damping_overrides or {}
        for name in self.config.topology.nodes:
            node_damping: Optional[DampingParams] = None
            if name in damping_nodes:
                node_damping = overrides.get(name, self.config.damping)
            router_config = RouterConfig(
                damping=node_damping,
                rcn_enabled=self.config.rcn and name in damping_nodes,
                selective_enabled=self.config.selective and name in damping_nodes,
                attach_root_cause=True,
                mrai=self.config.mrai,
                graceful_restart=self.config.graceful_restart,
                charge_on_session_reset=self.config.charge_on_session_reset,
            )
            router = BgpRouter(
                name, self.engine, self.rng, policy=self.policy, config=router_config
            )
            self.routers[name] = router
            self.network.add_node(router)
        for a, b in self.config.topology.edges:
            self.network.add_link(a, b, self.config.link)

    def _build_origin(self) -> OriginRouter:
        origin = OriginRouter(
            ORIGIN_NAME,
            self.engine,
            self.rng,
            prefix=self.config.prefix,
            isp=self.isp,
        )
        self.network.add_node(origin)
        self.network.add_link(ORIGIN_NAME, self.isp, self.config.link)
        if self.config.use_no_valley:
            relationships = self.config.topology.relationships
            assert relationships is not None
            if not relationships.has_relationship(self.isp, ORIGIN_NAME):
                relationships.set_provider(self.isp, ORIGIN_NAME)
        return origin

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def warm_up(self) -> float:
        """Announce the prefix and run until every node has a route.

        Returns the warm-up convergence time (last update delivery minus
        the announcement time) and resets all damping state.
        """
        if self._warmed_up:
            raise SimulationError("scenario already warmed up")
        self._warmed_up = True
        start = self.engine.now
        last_delivery = [start]

        def note_delivery(message) -> None:  # noqa: ANN001 - hook signature
            last_delivery[0] = message.delivered_at

        self.network.add_delivery_hook(note_delivery)
        self.origin.bring_up()
        self.engine.run_until_idle(max_time=start + self.config.warmup_horizon)
        if self.engine.pending_count:
            raise SimulationError(
                f"warm-up did not converge within {self.config.warmup_horizon}s"
            )
        # Remove the temporary hook so the measured phase doesn't pay for it.
        self.network._delivery_hooks.remove(note_delivery)
        missing = [
            name
            for name, router in self.routers.items()
            if not router.has_route(self.config.prefix)
        ]
        if missing:
            raise SimulationError(
                f"warm-up left {len(missing)} routers without a route "
                f"(e.g. {missing[:5]})"
            )
        self.warmup_convergence = last_delivery[0] - start
        for router in self.routers.values():
            router.reset_damping()
        # Warm-up ties are not part of the measured episode.
        self.engine.clear_ties()
        return self.warmup_convergence

    def run(
        self, schedule: PulseSchedule, tracer: Optional["Tracer"] = None
    ) -> FlapRunResult:
        """Drive one measured flapping episode and return its result.

        ``tracer`` optionally attaches a causal
        :class:`~repro.trace.tracer.Tracer` for the episode (warm-up is
        deliberately not traced — the measured episode starts clean). A
        tracer over a :class:`~repro.trace.sinks.NullSink` attaches
        nothing, keeping the engine's fast dispatch path.
        """
        if not self._warmed_up:
            self.warm_up()
        if self._ran:
            raise SimulationError("scenario already ran its episode")
        self._ran = True

        collector = MetricsCollector()
        collector.attach(self.network, list(self.routers.values()))

        if tracer is not None:
            tracer.attach(
                self.engine,
                self.network,
                list(self.routers.values()) + [self.origin],
            )
            if not tracer.enabled:
                tracer = None

        trace = EventTrace()
        self._wire_trace(trace)

        start = self.engine.now
        if self.config.faults is not None and not self.config.faults.is_empty:
            # Fault episodes can wedge (retractions chasing re-announcements
            # at one instant), so arm the watchdog before injecting.
            self.engine.enable_watchdog()
            self.fault_injector = FaultInjector(
                self.config.faults,
                self.network,
                self.rng,
                tracer=tracer,
                event_trace=trace,
            )
            self.fault_injector.install(start)
        for offset, status in schedule.events:
            self.engine.schedule_at(
                start + offset,
                self._make_flap_action(status, trace, tracer),
                actor=ORIGIN_NAME,
                tag="flap",
            )
        self.engine.run_until_idle(max_time=start + self.config.run_horizon)
        if self.engine.pending_count:
            raise SimulationError(
                f"episode did not drain within {self.config.run_horizon}s "
                f"({self.engine.pending_count} events pending)"
            )

        final_announcement: Optional[float]
        if schedule.events:
            final_announcement = start + schedule.final_announcement_offset
        else:
            final_announcement = None
        summary = summarize_convergence(
            collector, schedule.pulse_count, final_announcement
        )
        return FlapRunResult(
            config=self.config,
            schedule=schedule,
            collector=collector,
            summary=summary,
            final_announcement_time=final_announcement,
            flap_times=[start + offset for offset, _ in schedule.events],
            warmup_convergence=self.warmup_convergence,
            end_time=self.engine.now,
            trace=trace,
        )

    def _make_flap_action(
        self, status: str, trace: EventTrace, tracer: Optional["Tracer"] = None
    ):
        def action() -> None:
            trace.record(self.engine.now, "flap", node=ORIGIN_NAME, status=status)
            if tracer is not None:
                # Flaps are the roots of the causal DAG: no cause, and
                # everything the origin emits next descends from them.
                flap_rid = tracer.emit(
                    "flap", self.engine.now, node=ORIGIN_NAME, status=status
                )
                tracer.set_context(flap_rid)
            if status == "down":
                self.origin.take_down()
            else:
                self.origin.bring_up()

        return action

    def _wire_trace(self, trace: EventTrace) -> None:
        """Feed update deliveries and suppression changes into ``trace``."""

        def on_delivery(message) -> None:  # noqa: ANN001 - hook signature
            trace.record(
                self.engine.now,
                "update",
                node=message.dst,
                src=message.src,
                withdrawal=message.payload.is_withdrawal,
            )

        self.network.add_delivery_hook(on_delivery)
        for router in self.routers.values():
            if router.damping is None:
                continue

            def observer(
                time: float,
                peer: str,
                prefix: str,
                suppressed: bool,
                router_name: str = router.name,
            ) -> None:
                trace.record(
                    time,
                    "suppress" if suppressed else "reuse",
                    node=router_name,
                    peer=peer,
                    prefix=prefix,
                )

            router.damping.suppression_observers.append(observer)

    # ------------------------------------------------------------------
    # helpers for figure drivers
    # ------------------------------------------------------------------

    def router_at_distance(self, hops: int) -> BgpRouter:
        """A router exactly ``hops`` from the origin's attachment point
        (falling back to the farthest available distance)."""
        topology = self.config.topology
        wanted = min(hops, topology.eccentricity(self.isp))
        names = topology.nodes_at_distance(self.isp, wanted)
        if not names:
            raise SimulationError(f"no router at distance {wanted} from {self.isp}")
        return self.routers[names[0]]

    def intended_model(self, flap_interval: float = 60.0) -> IntendedBehaviorModel:
        """Section 3 model parameterised with this scenario's measured
        ``t_up`` (requires a completed warm-up and damping enabled)."""
        if self.config.damping is None:
            raise ConfigurationError("intended model requires damping parameters")
        return IntendedBehaviorModel(
            self.config.damping,
            flap_interval=flap_interval,
            tup=self.warmup_convergence,
        )


def run_episode(config: ScenarioConfig, pulses: int, flap_interval: float = 60.0) -> FlapRunResult:
    """Convenience: build, warm up, and run one regular-pulse episode."""
    scenario = Scenario(config)
    scenario.warm_up()
    return scenario.run(PulseSchedule.regular(pulses, flap_interval))


# ----------------------------------------------------------------------
# warm-state snapshots
# ----------------------------------------------------------------------


class WarmStateSnapshot:
    """A warmed-up :class:`Scenario` frozen as bytes.

    The snapshot is taken after :meth:`Scenario.warm_up` and before
    :meth:`Scenario.run` — the one point in a scenario's life where no
    metrics hooks, trace closures, or suppression observers are attached,
    so the whole object graph (engine, network, routers, damping
    managers, RNG streams) pickles cleanly. Each :meth:`restore` yields
    an independent scenario whose episode is **digest-identical** to one
    run on a freshly warmed scenario: pickling preserves the
    ``random.Random`` stream states, the engine's clock and sequence
    counter, and every RIB/penalty entry exactly, and restored copies
    share no mutable state with each other.

    Snapshots are plain picklable values themselves, so they can be
    shipped to spawn-context worker processes (see
    :mod:`repro.experiments.parallel`).
    """

    __slots__ = ("config", "blob", "warmup_convergence", "_digest")

    def __init__(
        self, config: ScenarioConfig, blob: bytes, warmup_convergence: float
    ) -> None:
        self.config = config
        self.blob = blob
        self.warmup_convergence = warmup_convergence
        self._digest: Optional[str] = None

    def __getstate__(self) -> Tuple[ScenarioConfig, bytes, float]:
        return (self.config, self.blob, self.warmup_convergence)

    def __setstate__(self, state: Tuple[ScenarioConfig, bytes, float]) -> None:
        self.config, self.blob, self.warmup_convergence = state
        self._digest = None

    @property
    def size_bytes(self) -> int:
        """Size of the pickled scenario state."""
        return len(self.blob)

    @property
    def digest(self) -> str:
        """Content address of the blob (SHA-256 hex) — the key the sweep
        executor's snapshot transport publishes and fetches under."""
        if self._digest is None:
            self._digest = hashlib.sha256(self.blob).hexdigest()
        return self._digest

    @classmethod
    def capture(cls, config: ScenarioConfig) -> "WarmStateSnapshot":
        """Build a scenario, warm it up, and freeze the converged state."""
        scenario = Scenario(config)
        scenario.warm_up()
        return cls.from_scenario(scenario)

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "WarmStateSnapshot":
        """Freeze an already-warmed scenario (which stays usable)."""
        if not scenario._warmed_up:
            raise SimulationError("snapshot requires a warmed-up scenario")
        if scenario._ran:
            raise SimulationError(
                "cannot snapshot a scenario that already ran its episode"
            )
        # Cancelled stragglers would pickle (and restore) dead weight.
        scenario.engine.purge_cancelled()
        blob = pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(scenario.config, blob, scenario.warmup_convergence)

    def restore(self) -> Scenario:
        """Materialise an independent warmed-up scenario, ready to run."""
        scenario: Scenario = pickle.loads(self.blob)
        return scenario


class WarmStateCache:
    """LRU cache of :class:`WarmStateSnapshot`, one per scenario config.

    Sweeps warm up each distinct :class:`ScenarioConfig` once and restore
    per point. Entries hold a strong reference to their config, keeping
    the topology object (part of the cache key by identity) alive for as
    long as the entry exists.

    ``hits``/``misses`` count lookups served from the cache versus ones
    that paid a warm-up capture — the observable behind the multi-sweep
    reuse guarantee (the second sweep over a config must be all hits).
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, WarmStateSnapshot]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, config: ScenarioConfig) -> WarmStateSnapshot:
        """Return the snapshot for ``config``, capturing it on first use."""
        key = _config_cache_key(config)
        snapshot = self._entries.get(key)
        if snapshot is None:
            self.misses += 1
            snapshot = WarmStateSnapshot.capture(config)
            self._entries[key] = snapshot
            if len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return snapshot

    def restore(self, config: ScenarioConfig) -> Scenario:
        """An independent scenario from the cached snapshot for ``config``.

        A snapshot that fails to restore (a corrupted blob, or state
        pickled by an incompatible build in a long-lived process) is
        evicted and recaptured once — healing beats poisoning every
        later point of the sweep with the same broken bytes. A snapshot
        that fails even freshly recaptured is a real bug and propagates.
        """
        snapshot = self.get(config)
        try:
            return snapshot.restore()
        except Exception:
            self.invalidate(config)
            return self.get(config).restore()

    def invalidate(self, config: ScenarioConfig) -> bool:
        """Drop the entry for ``config``; True when one existed."""
        return self._entries.pop(_config_cache_key(config), None) is not None

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


def _config_cache_key(config: ScenarioConfig) -> Hashable:
    """Value-equality key for every field of ``ScenarioConfig``.

    The topology has no value hash; its ``id`` is used instead, which is
    stable while a cache entry pins the config (and thus the topology)
    alive — and the experiment layer caches topologies per name anyway.
    """
    overrides = (
        tuple(sorted(config.damping_overrides.items()))
        if config.damping_overrides
        else None
    )
    return (
        id(config.topology),
        config.topology.name,
        config.damping,
        config.rcn,
        config.selective,
        config.use_no_valley,
        config.mrai,
        config.link,
        config.seed,
        config.isp,
        config.damping_fraction,
        overrides,
        config.prefix,
        config.warmup_horizon,
        config.run_horizon,
        config.detect_schedule_ties,
        config.faults,
        config.graceful_restart,
        config.charge_on_session_reset,
        config.coalesce_delivery,
    )

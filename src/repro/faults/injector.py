"""Compiling a :class:`~repro.faults.plan.FaultPlan` onto the engine.

:meth:`FaultInjector.install` expands the plan into concrete engine
events (``actor="faults"``, ``tag="fault"``) rebased on the current
clock. Storm schedules are drawn *at install time* from the storm's
named RNG stream, so the expansion itself is deterministic and the
resulting event sequence is identical however many worker processes the
sweep uses.

Every fired action emits a ``fault`` trace record and makes it the
ambient causal context, so the withdrawals, charges, and
graceful-restart expiries a fault provokes are attributed to it in the
trace DAG (:mod:`repro.analysis.causality` classifies charges rooted
there as ``fault-induced``).
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FlapStorm

if TYPE_CHECKING:
    from repro.net.network import Network
    from repro.sim.events import EventTrace
    from repro.sim.rng import RngRegistry
    from repro.trace.tracer import Tracer

#: Actor name fault events are scheduled under (tie detection / audits).
FAULT_ACTOR = "faults"


class FaultInjector:
    """Installs one plan's actions onto a built network's engine."""

    def __init__(
        self,
        plan: FaultPlan,
        network: "Network",
        rng: "RngRegistry",
        tracer: Optional["Tracer"] = None,
        event_trace: Optional["EventTrace"] = None,
    ) -> None:
        self.plan = plan
        self.network = network
        self.engine = network.engine
        self._rng = rng
        self._tracer = tracer
        self._event_trace = event_trace
        self.actions_scheduled = 0
        self.actions_fired = 0
        #: ``(time, action, detail)`` for every fired action, in order.
        self.fired: List[Tuple[float, str, str]] = []
        self._installed = False

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every referenced router and link exists (fail at install
        time with a configuration error, not mid-episode)."""
        for router in sorted(self.plan.routers()):
            if not self.network.has_node(router):
                raise ConfigurationError(
                    f"fault plan {self.plan.name!r} references unknown "
                    f"router {router!r}"
                )
        for a, b in sorted(self.plan.links()):
            if not self.network.has_link(a, b):
                raise ConfigurationError(
                    f"fault plan {self.plan.name!r} references unknown "
                    f"link {a}-{b}"
                )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, start: Optional[float] = None) -> int:
        """Schedule every action, rebased on ``start`` (default: now).

        Returns the number of engine events scheduled. Storms are
        expanded here using their named streams.
        """
        if self._installed:
            raise ConfigurationError(
                f"fault plan {self.plan.name!r} is already installed"
            )
        self._installed = True
        self.validate()
        base = self.engine.now if start is None else start
        for fault in self.plan.link_faults:
            self._schedule(
                base + fault.down_at,
                "link-down",
                f"{fault.a}-{fault.b}",
                functools.partial(self.network.set_link_state, fault.a, fault.b, False),
            )
            if fault.up_at is not None:
                self._schedule(
                    base + fault.up_at,
                    "link-up",
                    f"{fault.a}-{fault.b}",
                    functools.partial(
                        self.network.set_link_state, fault.a, fault.b, True
                    ),
                )
        for crash in self.plan.crashes:
            self._schedule(
                base + crash.at,
                "crash",
                crash.router,
                functools.partial(self.network.crash_router, crash.router),
            )
            if crash.down_for is not None:
                self._schedule(
                    base + crash.at + crash.down_for,
                    "restart",
                    crash.router,
                    functools.partial(self.network.restart_router, crash.router),
                )
        for reset in self.plan.session_resets:
            self._schedule(
                base + reset.at,
                "session-reset",
                f"{reset.a}-{reset.b}",
                functools.partial(self.network.reset_session, reset.a, reset.b),
            )
        for impairment in self.plan.impairments:
            link = self.network.link(impairment.a, impairment.b)
            self._schedule(
                base + impairment.start,
                "impair",
                (
                    f"{impairment.a}-{impairment.b} loss={impairment.loss} "
                    f"dup={impairment.duplicate} jitter={impairment.extra_jitter}"
                ),
                functools.partial(
                    link.set_impairment,
                    loss=impairment.loss,
                    duplicate=impairment.duplicate,
                    extra_jitter=impairment.extra_jitter,
                ),
            )
            if impairment.duration is not None:
                self._schedule(
                    base + impairment.start + impairment.duration,
                    "clear-impair",
                    f"{impairment.a}-{impairment.b}",
                    link.clear_impairment,
                )
        for storm in self.plan.storms:
            self._install_storm(base, storm)
        return self.actions_scheduled

    def _install_storm(self, base: float, storm: FlapStorm) -> None:
        """Expand one storm into concrete down/up pairs using its stream."""
        draw = self._rng.stream(storm.stream_name)
        at = base + storm.start
        for index in range(storm.flaps):
            at += draw.uniform(storm.min_interval, storm.max_interval)
            a, b = storm.links[draw.randrange(len(storm.links))]
            detail = f"{storm.name}#{index} {a}-{b}"
            self._schedule(
                at,
                "storm-down",
                detail,
                functools.partial(self.network.set_link_state, a, b, False),
            )
            self._schedule(
                at + storm.down_time,
                "storm-up",
                detail,
                functools.partial(self.network.set_link_state, a, b, True),
            )

    def _schedule(
        self, when: float, action: str, detail: str, thunk: Callable[[], None]
    ) -> None:
        self.actions_scheduled += 1
        self.engine.schedule_at(
            when,
            functools.partial(self._fire, action, detail, thunk),
            actor=FAULT_ACTOR,
            tag="fault",
        )

    def _fire(self, action: str, detail: str, thunk: Callable[[], None]) -> None:
        now = self.engine.now
        self.actions_fired += 1
        self.fired.append((now, action, detail))
        if self._event_trace is not None:
            self._event_trace.record(now, "fault", action=action, detail=detail)
        if self._tracer is not None:
            # Faults are DAG roots, like flaps: everything the network
            # does in response descends from this record.
            record_id = self._tracer.emit(
                "fault", now, action=action, detail=detail
            )
            self._tracer.set_context(record_id)
        thunk()


__all__ = ["FAULT_ACTOR", "FaultInjector"]

"""Declarative fault plans: frozen data, JSON round-trip, full validation.

Every fault is a frozen dataclass with times *relative to episode start*
(the injector rebases onto the engine clock at install time). The plan
as a whole is hashable — it participates in the warm-state cache key —
and picklable, so sweeps can ship it to spawn-context workers.

Determinism contract: a plan contains no randomness of its own. The one
stochastic element, :class:`FlapStorm`, names the RNG stream its draws
come from (``fault:storm:<name>``); because
:class:`~repro.sim.rng.RngRegistry` seeds streams independently by
name, adding a storm never perturbs protocol jitter, and the same seed
always yields the same storm schedule.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError


def _check_time(value: float, what: str) -> None:
    if not isinstance(value, (int, float)) or value < 0:
        raise ConfigurationError(f"{what} must be a time >= 0, got {value!r}")


def _check_rate(value: float, what: str) -> None:
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {value!r}")


def _check_name(value: object, what: str) -> None:
    if not isinstance(value, str) or not value:
        raise ConfigurationError(f"{what} must be a non-empty string, got {value!r}")


@dataclass(frozen=True)
class LinkFault:
    """Take the ``a``–``b`` link down at ``down_at``; optionally restore
    it at ``up_at`` (leave it down for the rest of the episode if ``None``)."""

    a: str
    b: str
    down_at: float
    up_at: Optional[float] = None

    def __post_init__(self) -> None:
        _check_name(self.a, "LinkFault.a")
        _check_name(self.b, "LinkFault.b")
        _check_time(self.down_at, "LinkFault.down_at")
        if self.up_at is not None:
            _check_time(self.up_at, "LinkFault.up_at")
            if self.up_at <= self.down_at:
                raise ConfigurationError(
                    f"LinkFault.up_at ({self.up_at}) must be after "
                    f"down_at ({self.down_at})"
                )


@dataclass(frozen=True)
class RouterCrash:
    """Crash ``router`` at ``at``; restart it ``down_for`` seconds later
    (or never, if ``None``). Whether neighbours handle the crash with
    graceful restart is the *crashed router's* capability — see
    :attr:`repro.bgp.router.RouterConfig.graceful_restart`."""

    router: str
    at: float
    down_for: Optional[float] = None

    def __post_init__(self) -> None:
        _check_name(self.router, "RouterCrash.router")
        _check_time(self.at, "RouterCrash.at")
        if self.down_for is not None and (
            not isinstance(self.down_for, (int, float)) or self.down_for <= 0
        ):
            raise ConfigurationError(
                f"RouterCrash.down_for must be > 0, got {self.down_for!r}"
            )


@dataclass(frozen=True)
class SessionReset:
    """Bounce the BGP session between adjacent ``a`` and ``b`` at ``at``
    without touching the link (an administrative ``clear bgp``)."""

    a: str
    b: str
    at: float

    def __post_init__(self) -> None:
        _check_name(self.a, "SessionReset.a")
        _check_name(self.b, "SessionReset.b")
        _check_time(self.at, "SessionReset.at")


@dataclass(frozen=True)
class LinkImpairment:
    """Make the ``a``–``b`` link lossy from ``start`` for ``duration``
    seconds (or the rest of the episode if ``None``): each message is
    independently dropped with probability ``loss``, duplicated with
    probability ``duplicate``, and delayed by an extra uniform
    ``[0, extra_jitter]`` seconds."""

    a: str
    b: str
    start: float
    duration: Optional[float] = None
    loss: float = 0.0
    duplicate: float = 0.0
    extra_jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_name(self.a, "LinkImpairment.a")
        _check_name(self.b, "LinkImpairment.b")
        _check_time(self.start, "LinkImpairment.start")
        if self.duration is not None and (
            not isinstance(self.duration, (int, float)) or self.duration <= 0
        ):
            raise ConfigurationError(
                f"LinkImpairment.duration must be > 0, got {self.duration!r}"
            )
        _check_rate(self.loss, "LinkImpairment.loss")
        _check_rate(self.duplicate, "LinkImpairment.duplicate")
        _check_time(self.extra_jitter, "LinkImpairment.extra_jitter")
        if self.loss == 0.0 and self.duplicate == 0.0 and self.extra_jitter == 0.0:
            raise ConfigurationError(
                "LinkImpairment must impair something: set loss, duplicate, "
                "or extra_jitter"
            )


@dataclass(frozen=True)
class FlapStorm:
    """A seeded burst of link flaps.

    Starting at ``start``, the storm performs ``flaps`` down/up cycles:
    each cycle picks one of ``links`` uniformly, waits a uniform
    ``[min_interval, max_interval]`` gap since the previous cycle, takes
    the link down, and brings it back ``down_time`` seconds later. All
    draws come from the dedicated stream ``fault:storm:<name>``.
    """

    name: str
    links: Tuple[Tuple[str, str], ...]
    start: float
    flaps: int
    min_interval: float
    max_interval: float
    down_time: float

    def __post_init__(self) -> None:
        _check_name(self.name, "FlapStorm.name")
        links = tuple(tuple(pair) for pair in self.links)
        for pair in links:
            if len(pair) != 2:
                raise ConfigurationError(
                    f"FlapStorm.links entries must be (a, b) pairs, got {pair!r}"
                )
            _check_name(pair[0], "FlapStorm link endpoint")
            _check_name(pair[1], "FlapStorm link endpoint")
        if not links:
            raise ConfigurationError("FlapStorm.links must not be empty")
        object.__setattr__(self, "links", links)
        _check_time(self.start, "FlapStorm.start")
        if not isinstance(self.flaps, int) or self.flaps < 1:
            raise ConfigurationError(
                f"FlapStorm.flaps must be an int >= 1, got {self.flaps!r}"
            )
        _check_time(self.min_interval, "FlapStorm.min_interval")
        _check_time(self.max_interval, "FlapStorm.max_interval")
        if self.max_interval < self.min_interval:
            raise ConfigurationError(
                f"FlapStorm.max_interval ({self.max_interval}) must be >= "
                f"min_interval ({self.min_interval})"
            )
        if not isinstance(self.down_time, (int, float)) or self.down_time <= 0:
            raise ConfigurationError(
                f"FlapStorm.down_time must be > 0, got {self.down_time!r}"
            )

    @property
    def stream_name(self) -> str:
        """The RNG stream this storm's draws come from."""
        return f"fault:storm:{self.name}"


@dataclass(frozen=True)
class FaultPlan:
    """A complete, validated fault schedule for one episode."""

    name: str = "faults"
    link_faults: Tuple[LinkFault, ...] = ()
    crashes: Tuple[RouterCrash, ...] = ()
    session_resets: Tuple[SessionReset, ...] = ()
    impairments: Tuple[LinkImpairment, ...] = ()
    storms: Tuple[FlapStorm, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.name, "FaultPlan.name")
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "session_resets", tuple(self.session_resets))
        object.__setattr__(self, "impairments", tuple(self.impairments))
        object.__setattr__(self, "storms", tuple(self.storms))
        names = [storm.name for storm in self.storms]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                "FlapStorm names must be unique within a plan (they name "
                f"RNG streams), got {sorted(names)}"
            )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.action_count == 0

    @property
    def action_count(self) -> int:
        """Number of declared faults (a storm counts once; its individual
        flaps are expanded at install time)."""
        return (
            len(self.link_faults)
            + len(self.crashes)
            + len(self.session_resets)
            + len(self.impairments)
            + len(self.storms)
        )

    def routers(self) -> Set[str]:
        """Every router name the plan references."""
        names: Set[str] = set()
        for crash in self.crashes:
            names.add(crash.router)
        for a, b in self.links():
            names.add(a)
            names.add(b)
        return names

    def links(self) -> Set[Tuple[str, str]]:
        """Every (unordered) link the plan references."""
        pairs: Set[Tuple[str, str]] = set()

        def add(a: str, b: str) -> None:
            pairs.add((a, b) if a <= b else (b, a))

        for fault in self.link_faults:
            add(fault.a, fault.b)
        for reset in self.session_resets:
            add(reset.a, reset.b)
        for impairment in self.impairments:
            add(impairment.a, impairment.b)
        for storm in self.storms:
            for a, b in storm.links:
                add(a, b)
        return pairs

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name}
        for key in (
            "link_faults",
            "crashes",
            "session_resets",
            "impairments",
            "storms",
        ):
            entries = getattr(self, key)
            if entries:
                payload[key] = [asdict(entry) for entry in entries]
        return payload

    def dumps(self) -> str:
        """Canonical JSON document (sorted keys, 2-space indent)."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "name",
            "link_faults",
            "crashes",
            "session_resets",
            "impairments",
            "storms",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown fault plan keys: {unknown}")

        def entries(key: str, factory: type) -> Tuple[object, ...]:
            raw = payload.get(key, [])
            if not isinstance(raw, list):
                raise ConfigurationError(f"fault plan {key!r} must be a list")
            built: List[object] = []
            for index, item in enumerate(raw):
                if not isinstance(item, dict):
                    raise ConfigurationError(
                        f"fault plan {key}[{index}] must be an object"
                    )
                if key == "storms" and isinstance(item.get("links"), list):
                    item = dict(item)
                    item["links"] = tuple(
                        tuple(pair) if isinstance(pair, list) else pair
                        for pair in item["links"]
                    )
                try:
                    built.append(factory(**item))
                except TypeError as exc:
                    raise ConfigurationError(
                        f"fault plan {key}[{index}] is malformed: {exc}"
                    ) from None
            return tuple(built)

        name = payload.get("name", "faults")
        return cls(
            name=name if isinstance(name, str) else "faults",
            link_faults=entries("link_faults", LinkFault),  # type: ignore[arg-type]
            crashes=entries("crashes", RouterCrash),  # type: ignore[arg-type]
            session_resets=entries("session_resets", SessionReset),  # type: ignore[arg-type]
            impairments=entries("impairments", LinkImpairment),  # type: ignore[arg-type]
            storms=entries("storms", FlapStorm),  # type: ignore[arg-type]
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_json_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())


__all__ = [
    "FaultPlan",
    "FlapStorm",
    "LinkFault",
    "LinkImpairment",
    "RouterCrash",
    "SessionReset",
]

"""Deterministic fault injection for robustness experiments.

A :class:`~repro.faults.plan.FaultPlan` declares *what goes wrong and
when* — link failures, router crashes (with or without graceful
restart), administrative session resets, lossy/duplicating links, and
seeded flap storms — as plain frozen data that serialises to JSON and
hashes into the warm-state cache key. A
:class:`~repro.faults.injector.FaultInjector` compiles the plan onto the
event engine at episode start; every draw comes from a named
:class:`~repro.sim.rng.RngRegistry` stream, so the same seed and the
same plan replay to byte-identical metrics digests, sequentially or
under ``--jobs N``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FlapStorm,
    LinkFault,
    LinkImpairment,
    RouterCrash,
    SessionReset,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FlapStorm",
    "LinkFault",
    "LinkImpairment",
    "RouterCrash",
    "SessionReset",
]

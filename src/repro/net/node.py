"""Base class for anything attached to the network.

A :class:`Node` has a name, knows its neighbours (discovered when links
are wired up), and receives delivered messages through
:meth:`Node.handle_message`. Protocol behaviour lives in subclasses —
see :class:`repro.bgp.router.BgpRouter`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


class Node:
    """A named participant in the network."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._network: "Network" = None  # type: ignore[assignment]
        self._neighbors: List[str] = []
        #: False while the node is crashed: the network drops messages
        #: addressed to it instead of dispatching (see
        #: :meth:`repro.net.network.Network.crash_router`).
        self.alive = True

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise RuntimeError(f"node {self.name!r} is not attached to a network")
        return self._network

    @property
    def neighbors(self) -> List[str]:
        """Names of directly connected nodes, in attachment order."""
        return list(self._neighbors)

    def attach(self, network: "Network") -> None:
        """Called by :class:`Network` when the node is added."""
        self._network = network

    def on_link_added(self, neighbor: str) -> None:
        """Called by :class:`Network` when a link to ``neighbor`` is wired."""
        if neighbor not in self._neighbors:
            self._neighbors.append(neighbor)

    def send(self, neighbor: str, payload: object) -> Message:
        """Send ``payload`` over the direct link to ``neighbor``."""
        return self.network.send(self.name, neighbor, payload)

    def handle_message(self, message: Message) -> None:
        """Process a delivered message. Subclasses override."""
        raise NotImplementedError

    def on_link_state(self, neighbor: str, up: bool) -> None:
        """Called when the direct link to ``neighbor`` changes state.

        Default: no-op. Routing protocols override this to tear down /
        re-establish the session (see
        :meth:`repro.bgp.router.BgpRouter.on_link_state`).
        """

    @property
    def graceful_restart_config(self) -> object:
        """This node's advertised graceful-restart capability (``None``
        unless a protocol subclass overrides it)."""
        return None

    def crash(self) -> None:
        """Take the node down (control state lost). Subclasses extend to
        quiesce timers and drop protocol tables; called by
        :meth:`repro.net.network.Network.crash_router`."""
        self.alive = False

    def restart(self) -> None:
        """Bring a crashed node back with fresh control state."""
        self.alive = True

    def on_peer_crash(self, peer: str, graceful: object = None) -> None:
        """Called when the directly connected ``peer`` crashes.

        ``graceful`` is the crashed peer's graceful-restart configuration
        (a :class:`repro.bgp.graceful_restart.GracefulRestartConfig`) or
        ``None`` for a hard crash. Default: no-op; BGP routers override
        to tear the session down or enter GR helper mode.
        """

    def on_peer_restart(self, peer: str) -> None:
        """Called when the directly connected ``peer`` comes back up.

        Default: no-op. BGP routers override to re-establish the session
        and re-advertise their table.
        """

    def start(self) -> None:
        """Hook invoked once when the simulation begins. Optional."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, degree={len(self._neighbors)})"

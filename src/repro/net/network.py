"""The network: a registry of nodes and links plus the delivery fabric.

:class:`Network` owns the wiring. Nodes are added by name, links connect
pairs of existing nodes, and :meth:`Network.send` routes a payload over the
direct link between two adjacent nodes. Observers can register a delivery
hook to count messages without subclassing anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import Link, LinkConfig
from repro.net.message import Message
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer

DeliveryHook = Callable[[Message], None]


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class Network:
    """A collection of nodes joined by point-to-point links."""

    def __init__(self, engine: Engine, rng: Optional[RngRegistry] = None) -> None:
        self.engine = engine
        self.rng = rng if rng is not None else RngRegistry(0)
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._delivery_hooks: List[DeliveryHook] = []
        self._send_hooks: List[DeliveryHook] = []
        self.messages_delivered = 0
        #: Causal tracer observing traffic (set by Tracer.attach).
        self.trace: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node``; names must be unique."""
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.attach(self)
        return node

    def add_link(self, a: str, b: str, config: Optional[LinkConfig] = None) -> Link:
        """Wire a bidirectional link between existing nodes ``a`` and ``b``."""
        if a not in self._nodes:
            raise ConfigurationError(f"unknown node {a!r}")
        if b not in self._nodes:
            raise ConfigurationError(f"unknown node {b!r}")
        key = _link_key(a, b)
        if key in self._links:
            raise ConfigurationError(f"link {a}-{b} already exists")
        link = Link(self, a, b, config or LinkConfig(), self.engine, self.rng)
        self._links[key] = link
        self._nodes[a].on_link_added(b)
        self._nodes[b].on_link_added(a)
        return link

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[_link_key(a, b)]
        except KeyError:
            raise SimulationError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return _link_key(a, b) in self._links

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def nodes(self) -> Iterable[Node]:
        return self._nodes.values()

    @property
    def links(self) -> Iterable[Link]:
        return self._links.values()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def degree(self, name: str) -> int:
        """Number of links attached to ``name``."""
        return len(self.node(name).neighbors)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, payload: object) -> Message:
        """Send ``payload`` over the direct link from ``src`` to ``dst``."""
        link = self.link(src, dst)
        message = link.send(src, payload)
        if self.trace is not None:
            self.trace.note_send(message, self.engine.now)
        for hook in self._send_hooks:
            hook(message)
        return message

    def deliver(self, message: Message) -> None:
        """Called by links when a message arrives; dispatches to the node."""
        self.messages_delivered += 1
        if self.trace is not None:
            self.trace.note_recv(message, self.engine.now)
        for hook in self._delivery_hooks:
            hook(message)
        self._nodes[message.dst].handle_message(message)

    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Observe every delivered message (metrics, tracing)."""
        self._delivery_hooks.append(hook)

    def add_send_hook(self, hook: DeliveryHook) -> None:
        """Observe every sent message (including ones dropped by down links)."""
        self._send_hooks.append(hook)

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Fail or restore the link between ``a`` and ``b``.

        The link stops (or resumes) delivering messages, and both
        endpoints are notified through :meth:`Node.on_link_state` so
        protocol sessions can be torn down / re-established. A no-op if
        the link is already in the requested state.
        """
        link = self.link(a, b)
        if link.up == up:
            return
        link.set_up(up)
        self._nodes[a].on_link_state(b, up)
        self._nodes[b].on_link_state(a, up)

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's start hook (idempotent nodes expected)."""
        for node in self._nodes.values():
            node.start()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(nodes={self.node_count}, links={self.link_count})"

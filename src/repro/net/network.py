"""The network: a registry of nodes and links plus the delivery fabric.

:class:`Network` owns the wiring. Nodes are added by name, links connect
pairs of existing nodes, and :meth:`Network.send` routes a payload over the
direct link between two adjacent nodes. Observers can register a delivery
hook to count messages without subclassing anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import Link, LinkConfig
from repro.net.message import Message
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer

DeliveryHook = Callable[[Message], None]

#: Observer of dropped messages: ``hook(message, reason)``. Reasons are
#: short stable strings (``link-down``, ``link-down-inflight``, ``loss``,
#: ``node-down``) consumed by metrics and traces.
DropHook = Callable[[Message, str], None]


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class Network:
    """A collection of nodes joined by point-to-point links."""

    def __init__(
        self,
        engine: Engine,
        rng: Optional[RngRegistry] = None,
        coalesce_delivery: bool = False,
    ) -> None:
        self.engine = engine
        self.rng = rng if rng is not None else RngRegistry(0)
        #: When True, links batch pending deliveries per direction behind
        #: a single engine event instead of scheduling one event per
        #: message (see :class:`repro.net.link._DeliveryBatch`). Message
        #: delivery *times* are identical either way; only the execution
        #: order of same-instant deliveries may differ, so large-graph
        #: scenarios opt in while the paper's figures keep the historical
        #: event order (and their committed digests).
        self.coalesce_delivery = coalesce_delivery
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._delivery_hooks: List[DeliveryHook] = []
        self._send_hooks: List[DeliveryHook] = []
        self._drop_hooks: List[DropHook] = []
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Causal tracer observing traffic (set by Tracer.attach).
        self.trace: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node``; names must be unique."""
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.attach(self)
        return node

    def add_link(self, a: str, b: str, config: Optional[LinkConfig] = None) -> Link:
        """Wire a bidirectional link between existing nodes ``a`` and ``b``."""
        if a not in self._nodes:
            raise ConfigurationError(f"unknown node {a!r}")
        if b not in self._nodes:
            raise ConfigurationError(f"unknown node {b!r}")
        key = _link_key(a, b)
        if key in self._links:
            raise ConfigurationError(f"link {a}-{b} already exists")
        link = Link(self, a, b, config or LinkConfig(), self.engine, self.rng)
        self._links[key] = link
        self._nodes[a].on_link_added(b)
        self._nodes[b].on_link_added(a)
        return link

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[_link_key(a, b)]
        except KeyError:
            raise SimulationError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return _link_key(a, b) in self._links

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def nodes(self) -> Iterable[Node]:
        return self._nodes.values()

    @property
    def links(self) -> Iterable[Link]:
        return self._links.values()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def degree(self, name: str) -> int:
        """Number of links attached to ``name``."""
        return len(self.node(name).neighbors)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, payload: object) -> Message:
        """Send ``payload`` over the direct link from ``src`` to ``dst``."""
        link = self.link(src, dst)
        message = link.send(src, payload)
        # A send dropped inside the link (down / lossy) already recorded
        # its own send record so the drop could name its cause.
        if self.trace is not None and message.trace_id is None:
            self.trace.note_send(message, self.engine.now)
        for hook in self._send_hooks:
            hook(message)
        return message

    def deliver(self, message: Message) -> None:
        """Called by links when a message arrives; dispatches to the node."""
        node = self._nodes[message.dst]
        if not node.alive:
            # The destination crashed while the message was in flight:
            # nothing is listening on the session any more.
            self.note_drop(message, "node-down")
            return
        self.messages_delivered += 1
        if self.trace is not None:
            self.trace.note_recv(message, self.engine.now)
        for hook in self._delivery_hooks:
            hook(message)
        node.handle_message(message)

    def note_drop(self, message: Message, reason: str) -> None:
        """Record a dropped message: counter, trace record, and hooks.

        Called by links (down / impaired) and by :meth:`deliver` when the
        destination node is crashed — every path a message can vanish on
        funnels through here so losses stay observable.
        """
        self.messages_dropped += 1
        if self.trace is not None:
            if message.trace_id is None:
                # Dropped before Network.send could record it (down or
                # lossy link at send time): emit the send record first so
                # the drop has a cause edge in the DAG.
                self.trace.note_send(message, self.engine.now)
            self.trace.note_drop(message, self.engine.now, reason)
        for hook in self._drop_hooks:
            hook(message, reason)

    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Observe every delivered message (metrics, tracing)."""
        self._delivery_hooks.append(hook)

    def add_send_hook(self, hook: DeliveryHook) -> None:
        """Observe every sent message (including ones dropped by down links)."""
        self._send_hooks.append(hook)

    def add_drop_hook(self, hook: DropHook) -> None:
        """Observe every dropped message with its drop reason."""
        self._drop_hooks.append(hook)

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Fail or restore the link between ``a`` and ``b``.

        The link stops (or resumes) delivering messages, and both
        endpoints are notified through :meth:`Node.on_link_state` so
        protocol sessions can be torn down / re-established. A no-op if
        the link is already in the requested state.
        """
        link = self.link(a, b)
        if link.up == up:
            return
        link.set_up(up)
        self._nodes[a].on_link_state(b, up)
        self._nodes[b].on_link_state(a, up)

    # ------------------------------------------------------------------
    # node failure / recovery orchestration (fault injection)
    # ------------------------------------------------------------------

    def crash_router(self, name: str) -> None:
        """Crash ``name``: the node loses its control state and every
        neighbour is told the session died.

        Neighbour notification carries the crashed node's graceful-restart
        configuration (``None`` for a hard crash): GR-capable neighbours
        retain the crashed peer's routes as *stale* under a restart timer
        instead of withdrawing them (see
        :mod:`repro.bgp.graceful_restart`). Messages in flight to the
        crashed node are dropped on delivery with reason ``node-down``.
        """
        node = self.node(name)
        if not node.alive:
            raise SimulationError(f"cannot crash {name!r}: already down")
        node.crash()
        graceful = node.graceful_restart_config
        for neighbor in node.neighbors:
            self._nodes[neighbor].on_peer_crash(name, graceful)

    def restart_router(self, name: str) -> None:
        """Bring a crashed ``name`` back: the node restarts with empty
        RIBs (re-originating its own prefixes) and every neighbour
        re-establishes the session and re-advertises its table."""
        node = self.node(name)
        if node.alive:
            raise SimulationError(f"cannot restart {name!r}: not crashed")
        node.restart()
        for neighbor in node.neighbors:
            self._nodes[neighbor].on_peer_restart(name)

    def reset_session(self, a: str, b: str) -> None:
        """Bounce the BGP session between adjacent ``a`` and ``b`` without
        touching the physical link: both ends see the session drop and
        immediately re-establish (implicit withdrawal + re-advertisement),
        the way an administrative ``clear bgp`` behaves."""
        self.link(a, b)  # validates adjacency
        self._nodes[a].on_link_state(b, False)
        self._nodes[b].on_link_state(a, False)
        self._nodes[a].on_link_state(b, True)
        self._nodes[b].on_link_state(a, True)

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's start hook (idempotent nodes expected)."""
        for node in self._nodes.values():
            node.start()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(nodes={self.node_count}, links={self.link_count})"

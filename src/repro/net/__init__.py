"""Network substrate: nodes, point-to-point links, message delivery.

The substrate is deliberately protocol-agnostic — it moves opaque message
objects between named nodes over links with configurable delay and jitter.
The BGP layer (:mod:`repro.bgp`) plugs routers in as :class:`Node`
subclasses.
"""

from repro.net.link import Link, LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node

__all__ = ["Link", "LinkConfig", "Message", "Network", "Node"]

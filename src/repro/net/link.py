"""Point-to-point links with delay and jitter.

A link connects exactly two nodes and delivers messages in both
directions. Delivery delay is ``base_delay`` plus a uniform jitter sample;
per-direction FIFO ordering is enforced (a message never overtakes an
earlier message in the same direction), matching TCP-based BGP sessions,
where updates between two peers are strictly ordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


@dataclass(frozen=True)
class LinkConfig:
    """Delay model for a link.

    ``base_delay`` is the fixed one-way propagation delay in seconds;
    each delivery adds a uniform sample from ``[0, jitter]``. The small
    default values correspond to the intra-simulation message latencies of
    SSFNet-style BGP studies, where protocol timers (MRAI, reuse timers)
    dominate dynamics and wire latency is milliseconds.
    """

    base_delay: float = 0.01
    jitter: float = 0.04

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ConfigurationError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")


class Link:
    """A bidirectional link between two named nodes."""

    def __init__(
        self,
        network: "Network",
        a: str,
        b: str,
        config: LinkConfig,
        engine: Engine,
        rng: RngRegistry,
    ) -> None:
        if a == b:
            raise ConfigurationError(f"link endpoints must differ, got {a!r} twice")
        self._network = network
        self.a = a
        self.b = b
        self.config = config
        self._engine = engine
        self._rng = rng.stream(f"link:{min(a, b)}-{max(a, b)}")
        self.up = True
        self.messages_carried = 0
        # Earliest time the next message in each direction may be
        # delivered, to preserve per-direction FIFO order.
        self._next_free: Dict[Tuple[str, str], float] = {}

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other_end(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise SimulationError(f"{node!r} is not an endpoint of link {self.a}-{self.b}")

    def set_up(self, up: bool) -> None:
        """Mark the link up or down. Messages sent while down are dropped."""
        self.up = up

    def send(self, src: str, payload: object) -> Message:
        """Send ``payload`` from ``src`` to the other endpoint.

        Returns the in-flight :class:`Message`. If the link is down the
        message is created but silently dropped (never delivered), which is
        how a failed physical link behaves from the sender's perspective.
        """
        dst = self.other_end(src)
        message = Message(src=src, dst=dst, payload=payload)
        message.sent_at = self._engine.now
        if not self.up:
            return message
        delay = self.config.base_delay + self._rng.uniform(0.0, self.config.jitter)
        deliver_at = self._engine.now + delay
        key = (src, dst)
        floor = self._next_free.get(key, 0.0)
        if deliver_at < floor:
            deliver_at = floor
        self._next_free[key] = deliver_at
        self._engine.schedule_at(
            deliver_at, lambda: self._deliver(message), actor=dst, tag="deliver"
        )
        return message

    def _deliver(self, message: Message) -> None:
        if not self.up:
            return  # link failed while the message was in flight
        message.delivered_at = self._engine.now
        self.messages_carried += 1
        self._network.deliver(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Link({self.a}-{self.b}, {state}, carried={self.messages_carried})"

"""Point-to-point links with delay, jitter, and optional impairments.

A link connects exactly two nodes and delivers messages in both
directions. Delivery delay is ``base_delay`` plus a uniform jitter sample;
per-direction FIFO ordering is enforced (a message never overtakes an
earlier message in the same direction), matching TCP-based BGP sessions,
where updates between two peers are strictly ordered.

Fault injection can additionally impair a link (see
:meth:`Link.set_impairment`): probabilistic message loss, duplication,
and extra delivery jitter, all drawn from a dedicated
``fault:link:<a>-<b>`` RNG stream so that un-impaired runs draw exactly
the same base-jitter sequence whether or not the faults package is in
play. Every dropped message — lost to an impairment, sent into a down
link, or in flight when the link failed — is reported to the network's
drop path instead of silently vanishing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


@dataclass(frozen=True)
class LinkConfig:
    """Delay model for a link.

    ``base_delay`` is the fixed one-way propagation delay in seconds;
    each delivery adds a uniform sample from ``[0, jitter]``. The small
    default values correspond to the intra-simulation message latencies of
    SSFNet-style BGP studies, where protocol timers (MRAI, reuse timers)
    dominate dynamics and wire latency is milliseconds.
    """

    base_delay: float = 0.01
    jitter: float = 0.04

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ConfigurationError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")


class Link:
    """A bidirectional link between two named nodes."""

    def __init__(
        self,
        network: "Network",
        a: str,
        b: str,
        config: LinkConfig,
        engine: Engine,
        rng: RngRegistry,
    ) -> None:
        if a == b:
            raise ConfigurationError(f"link endpoints must differ, got {a!r} twice")
        self._network = network
        self.a = a
        self.b = b
        self.config = config
        self._engine = engine
        self._rng_registry = rng
        self._rng = rng.stream(f"link:{min(a, b)}-{max(a, b)}")
        #: Lazily created when the link is first impaired, so un-impaired
        #: links never register the stream (and never draw from it).
        self._fault_rng = None
        self.up = True
        self.messages_carried = 0
        #: Messages this link dropped (down at send, down in flight, or
        #: lost to an active impairment) — the counterpart counter to
        #: ``messages_carried``.
        self.messages_dropped = 0
        #: Active impairment probabilities / extra jitter; zero = clean.
        self.loss_rate = 0.0
        self.duplicate_rate = 0.0
        self.extra_jitter = 0.0
        # Earliest time the next message in each direction may be
        # delivered, to preserve per-direction FIFO order.
        self._next_free: Dict[Tuple[str, str], float] = {}
        # Per-direction delivery batches, created on first use when the
        # network coalesces deliveries (see _DeliveryBatch).
        self._batches: Dict[Tuple[str, str], "_DeliveryBatch"] = {}

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    @property
    def impaired(self) -> bool:
        """True while any impairment (loss/duplication/jitter) is active."""
        return (
            self.loss_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.extra_jitter > 0.0
        )

    def other_end(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise SimulationError(f"{node!r} is not an endpoint of link {self.a}-{self.b}")

    def set_up(self, up: bool) -> None:
        """Mark the link up or down. Messages sent while down are dropped."""
        self.up = up

    # ------------------------------------------------------------------
    # impairments (fault injection)
    # ------------------------------------------------------------------

    def set_impairment(
        self,
        loss: float = 0.0,
        duplicate: float = 0.0,
        extra_jitter: float = 0.0,
    ) -> None:
        """Impair the link: per-message loss / duplication probability and
        additional uniform delivery jitter in seconds.

        All draws come from the link's dedicated ``fault:link:...`` RNG
        stream, so enabling an impairment never perturbs the base jitter
        sequence of other links (or of this link's un-impaired sends).
        """
        if not (0.0 <= loss <= 1.0):
            raise ConfigurationError(f"loss must be in [0, 1], got {loss}")
        if not (0.0 <= duplicate <= 1.0):
            raise ConfigurationError(f"duplicate must be in [0, 1], got {duplicate}")
        if extra_jitter < 0.0:
            raise ConfigurationError(f"extra_jitter must be >= 0, got {extra_jitter}")
        self.loss_rate = loss
        self.duplicate_rate = duplicate
        self.extra_jitter = extra_jitter
        if self.impaired and self._fault_rng is None:
            key = f"fault:link:{min(self.a, self.b)}-{max(self.a, self.b)}"
            self._fault_rng = self._rng_registry.stream(key)

    def clear_impairment(self) -> None:
        """Restore clean delivery (keeps the fault stream's position)."""
        self.loss_rate = 0.0
        self.duplicate_rate = 0.0
        self.extra_jitter = 0.0

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------

    def send(self, src: str, payload: object) -> Message:
        """Send ``payload`` from ``src`` to the other endpoint.

        Returns the in-flight :class:`Message`. If the link is down the
        message is created but dropped (never delivered), which is how a
        failed physical link behaves from the sender's perspective; the
        drop is reported through the network's drop path.
        """
        dst = self.other_end(src)
        message = Message(src=src, dst=dst, payload=payload)
        message.sent_at = self._engine.now
        if not self.up:
            self._drop(message, "link-down")
            return message
        if self.impaired and self._apply_impairment(message):
            return message
        self._schedule_delivery(message, self._base_delay())
        return message

    def _base_delay(self) -> float:
        return self.config.base_delay + self._rng.uniform(0.0, self.config.jitter)

    def _apply_impairment(self, message: Message) -> bool:
        """Run the impairment draws for one send. Returns ``True`` when
        the message was consumed (lost); duplication schedules the extra
        copy itself and returns ``False`` so the original still ships."""
        rng = self._fault_rng
        assert rng is not None  # set_impairment created it
        if self.loss_rate > 0.0 and rng.random() < self.loss_rate:
            self._drop(message, "loss")
            return True
        delay = self._base_delay()
        if self.extra_jitter > 0.0:
            delay += rng.uniform(0.0, self.extra_jitter)
        self._schedule_delivery(message, delay)
        if self.duplicate_rate > 0.0 and rng.random() < self.duplicate_rate:
            copy = Message(src=message.src, dst=message.dst, payload=message.payload)
            copy.sent_at = self._engine.now
            copy.trace_id = message.trace_id
            dup_delay = self._base_delay()
            if self.extra_jitter > 0.0:
                dup_delay += rng.uniform(0.0, self.extra_jitter)
            self._schedule_delivery(copy, dup_delay)
        return False

    def _schedule_delivery(self, message: Message, delay: float) -> None:
        deliver_at = self._engine.now + delay
        key = (message.src, message.dst)
        floor = self._next_free.get(key, 0.0)
        if deliver_at < floor:
            deliver_at = floor
        self._next_free[key] = deliver_at
        if self._network.coalesce_delivery:
            batch = self._batches.get(key)
            if batch is None:
                batch = _DeliveryBatch(self, message.dst)
                self._batches[key] = batch
            batch.enqueue(message, deliver_at)
            return
        self._engine.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            actor=message.dst,
            tag="deliver",
        )

    def _deliver(self, message: Message) -> None:
        if not self.up:
            # The link failed while the message was in flight; observable
            # through the drop path rather than silently vanishing.
            self._drop(message, "link-down-inflight")
            return
        message.delivered_at = self._engine.now
        self.messages_carried += 1
        self._network.deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        self.messages_dropped += 1
        self._network.note_drop(message, reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Link({self.a}-{self.b}, {state}, carried={self.messages_carried})"


class _DeliveryBatch:
    """One direction's pending deliveries behind a single engine event.

    The per-direction FIFO floor in :meth:`Link._schedule_delivery` makes
    delivery times monotone non-decreasing within a direction, so the
    deque is always sorted by construction. The batch keeps at most one
    engine event armed — for the head's delivery time — and drains every
    message whose time has arrived when it fires, then re-arms for the
    new head. A flap storm that previously scheduled one heap entry per
    (message, direction) now costs one heap entry per direction per
    distinct wake-up time: O(edges) per storm instant instead of
    O(edges·updates).

    Message delivery *times* are identical to per-message scheduling;
    only the engine-sequence interleaving of same-instant deliveries can
    differ, which is why coalescing is opt-in per scenario rather than
    a global default (committed figure digests encode the historical
    interleaving).
    """

    __slots__ = ("_link", "_engine", "dst", "pending", "armed_for")

    def __init__(self, link: Link, dst: str) -> None:
        self._link = link
        self._engine = link._engine
        self.dst = dst
        self.pending: Deque[Tuple[float, Message]] = deque()
        #: Delivery time the armed engine event will fire at, or None
        #: when no event is armed (empty queue).
        self.armed_for: Optional[float] = None

    def enqueue(self, message: Message, deliver_at: float) -> None:
        self.pending.append((deliver_at, message))
        if self.armed_for is None:
            self._arm(deliver_at)

    def _arm(self, when: float) -> None:
        self.armed_for = when
        self._engine.schedule_at(when, self._fire, actor=self.dst, tag="deliver")

    def _fire(self) -> None:
        now = self._engine.now
        pending = self.pending
        deliver = self._link._deliver
        # armed_for stays set during the drain: a reentrant enqueue at
        # the current instant (a neighbour reacting to one of these
        # deliveries) must join this drain rather than arm a second
        # event for the same time.
        while pending and pending[0][0] <= now:
            deliver(pending.popleft()[1])
        if pending:
            self._arm(pending[0][0])
        else:
            self.armed_for = None

"""The envelope carried by links.

A :class:`Message` records who sent it, who should receive it, and an
opaque payload (for us, a BGP update). Send/delivery timestamps are filled
in by the link so the metrics layer can measure propagation without
reaching into the transport.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_message_ids = itertools.count(1)


@dataclass
class Message:
    """An in-flight unit of communication between two adjacent nodes."""

    src: str
    dst: str
    payload: Any
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: Optional[float] = None
    delivered_at: Optional[float] = None
    #: Id of this message's ``send`` trace record, stamped by the causal
    #: tracer so the delivery can name its cause (None when not tracing).
    trace_id: Optional[int] = None

    @property
    def latency(self) -> Optional[float]:
        """Propagation delay experienced, once delivered."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message(#{self.msg_id} {self.src}->{self.dst} {self.payload!r})"

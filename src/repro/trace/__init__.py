"""Causal event tracing for simulation runs.

See ``docs/OBSERVABILITY.md`` for the record schema, ``cause_id``
semantics, and worked examples. Quick start::

    from repro.trace import JsonlSink, Tracer

    scenario = Scenario(config)
    scenario.warm_up()
    tracer = Tracer(JsonlSink("run.jsonl"))
    result = scenario.run(schedule, tracer=tracer)
    digest = tracer.close()
"""

from repro.trace.profile import PhaseProfiler
from repro.trace.records import (
    KNOWN_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceRecord,
    canonical_line,
    parse_jsonl,
    record_from_json,
    render_jsonl,
)
from repro.trace.sinks import JsonlSink, MemorySink, NullSink, TraceSink, trace_digest
from repro.trace.tracer import Tracer

__all__ = [
    "JsonlSink",
    "KNOWN_KINDS",
    "MemorySink",
    "NullSink",
    "PhaseProfiler",
    "TRACE_SCHEMA_VERSION",
    "TraceRecord",
    "TraceSink",
    "Tracer",
    "canonical_line",
    "parse_jsonl",
    "record_from_json",
    "render_jsonl",
    "trace_digest",
]

"""Trace sinks: where a sealed trace goes.

The :class:`TraceSink` protocol decouples the instrumented hot path from
output concerns. The tracer buffers records in memory during the run and
hands the complete, id-ordered sequence to the sink exactly once at
:meth:`repro.trace.tracer.Tracer.close`; the sink returns the SHA-256
digest of the canonical JSONL document (or ``None`` if it collects
nothing). Because the document is canonical and written in one shot,
digests — and for :class:`JsonlSink`, the bytes on disk — are identical
however the run was produced (``--jobs 1`` vs ``--jobs 2``).

:class:`NullSink` reports ``collecting = False``, which makes the whole
attach step a no-op: the engine hook is never installed and the fast
dispatch path stays untouched.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence

from .records import render_jsonl

if TYPE_CHECKING:
    from .records import TraceRecord


def trace_digest(document: str) -> str:
    """SHA-256 hex digest of a canonical JSONL trace document."""
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


class TraceSink(Protocol):
    """Destination for one sealed trace.

    ``collecting`` tells the tracer whether instrumentation should be
    installed at all; ``write`` receives the complete id-ordered record
    sequence once and returns the document digest (``None`` when the
    sink discards its input).
    """

    collecting: bool

    def write(self, records: Sequence["TraceRecord"]) -> Optional[str]:
        """Consume the sealed trace; return its digest if one exists."""
        ...


class NullSink:
    """Discard everything; signals the tracer not to instrument at all."""

    collecting = False

    def write(self, records: Sequence["TraceRecord"]) -> Optional[str]:
        del records
        return None


class MemorySink:
    """Keep the sealed records (and digest) in memory for inspection."""

    collecting = True

    def __init__(self) -> None:
        self.records: List["TraceRecord"] = []
        self.digest: Optional[str] = None

    def write(self, records: Sequence["TraceRecord"]) -> Optional[str]:
        self.records = list(records)
        self.digest = trace_digest(render_jsonl(self.records))
        return self.digest


class JsonlSink:
    """Write the sealed trace to a JSONL file in one shot.

    The file contains exactly the canonical document, so its bytes (and
    hence its digest) are reproducible across hosts and worker layouts.
    """

    collecting = True

    def __init__(self, path: str) -> None:
        self.path = path
        self.digest: Optional[str] = None

    def write(self, records: Sequence["TraceRecord"]) -> Optional[str]:
        document = render_jsonl(records)
        with open(self.path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(document)
        self.digest = trace_digest(document)
        return self.digest


__all__ = ["JsonlSink", "MemorySink", "NullSink", "TraceSink", "trace_digest"]

"""The causal trace record model.

A traced run is a sequence of :class:`TraceRecord` rows, one per
observable protocol action: origin flaps, update sends and deliveries,
penalty charges, suppression starts, reuse-timer arms / postponements /
expiries, MRAI flushes, and Loc-RIB changes. Every record carries a
monotonically assigned ``id`` (execution order, starting at 1) and an
optional ``cause_id`` pointing at the record that *triggered* it, so the
whole trace forms a DAG rooted at the origin's flap events:

``flap -> send -> recv -> charge -> reuse_postponed`` is the paper's
secondary charging spelled out edge by edge, and a ``reuse_expired``
record with ``noisy=False`` and no downstream children is a *muffled*
expiry — the remote reuse timer fired into silence.

Records serialise to a canonical JSON line (sorted keys, compact
separators, microsecond-rounded times), so two traces of the same
scenario are byte-identical however they were produced — the property
the ``--jobs`` determinism tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

#: Version stamped into exported trace files; bump on schema changes.
#: v2 added the fault-injection kinds (``fault``, ``drop``, ``gr_expire``).
TRACE_SCHEMA_VERSION = 2

#: The record kinds the instrumented components emit. ``data`` payloads
#: are kind-specific; see ``docs/OBSERVABILITY.md`` for the field tables.
KNOWN_KINDS: FrozenSet[str] = frozenset(
    {
        "flap",  # origin state change (the roots of the DAG)
        "send",  # update handed to a link
        "recv",  # update delivered to a router
        "drop",  # message dropped (down link, loss impairment, dead node)
        "charge",  # damping manager accounted for one update
        "suppress",  # suppression interval started
        "reuse_set",  # reuse timer armed at suppression start
        "reuse_postponed",  # reuse timer pushed out by a recharge
        "reuse_expired",  # reuse timer fired (noisy or muffled)
        "mrai_flush",  # per-peer MRAI timer released deferred updates
        "select",  # decision process changed the Loc-RIB
        "fault",  # injected fault action fired (roots, like flaps)
        "gr_expire",  # graceful-restart stale timer flushed retained routes
    }
)


def _round_time(value: float) -> float:
    """Microsecond-rounded time, matching :mod:`repro.metrics.digest`."""
    return round(value, 6)


@dataclass
class TraceRecord:
    """One causal trace row.

    ``id`` is the 1-based emission index; ``cause_id`` the id of the
    record that triggered this one (``None`` for roots). ``data`` holds
    kind-specific fields and is the only mutable part — a record may be
    amended (e.g. a ``reuse_expired`` learns its ``noisy`` flag after the
    decision process ran) until the trace is sealed.
    """

    id: int
    time: float
    kind: str
    node: Optional[str] = None
    cause_id: Optional[int] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        """The canonical JSON object for one JSONL line."""
        payload: Dict[str, object] = {
            "id": self.id,
            "t": _round_time(self.time),
            "kind": self.kind,
        }
        if self.node is not None:
            payload["node"] = self.node
        if self.cause_id is not None:
            payload["cause"] = self.cause_id
        if self.data:
            payload["data"] = self.data
        return payload


def canonical_line(record: TraceRecord) -> str:
    """Render one record as its canonical JSON line (no newline)."""
    return json.dumps(record.to_json_dict(), sort_keys=True, separators=(",", ":"))


def render_jsonl(records: Iterable[TraceRecord]) -> str:
    """The full canonical JSONL document, records sorted by id."""
    ordered = sorted(records, key=lambda r: r.id)
    return "".join(canonical_line(record) + "\n" for record in ordered)


def record_from_json(payload: Dict[str, object]) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from one parsed JSONL object."""
    record_id = payload["id"]
    time_value = payload["t"]
    kind = payload["kind"]
    if (
        not isinstance(record_id, int)
        or not isinstance(time_value, (int, float))
        or not isinstance(kind, str)
    ):
        raise ValueError(f"malformed trace record: {payload!r}")
    node = payload.get("node")
    cause = payload.get("cause")
    data = payload.get("data")
    return TraceRecord(
        id=record_id,
        time=float(time_value),
        kind=kind,
        node=node if isinstance(node, str) else None,
        cause_id=cause if isinstance(cause, int) else None,
        data=dict(data) if isinstance(data, dict) else {},
    )


def parse_jsonl(text: str) -> List[TraceRecord]:
    """Parse a JSONL trace document back into records (id order)."""
    records: List[TraceRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        records.append(record_from_json(json.loads(line)))
    records.sort(key=lambda r: r.id)
    return records


__all__ = [
    "KNOWN_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceRecord",
    "canonical_line",
    "parse_jsonl",
    "record_from_json",
    "render_jsonl",
]

"""The tracer: record emission, causal context, and component wiring.

One :class:`Tracer` instance observes one measured episode. Instrumented
components (engine, network, routers, damping managers, MRAI limiters)
hold an optional reference to it and emit records through :meth:`emit`;
the tracer assigns ids, threads the *ambient causal context* — the id of
the record whose handling is currently executing — and buffers everything
in memory until :meth:`close` seals the trace into the sink.

Causal threading works in two ways:

* **explicitly**, when the cause is carried by an object: a ``send``
  record's id rides on :attr:`repro.net.message.Message.trace_id` so the
  matching ``recv`` names it; a suppression's ``reuse_set`` /
  ``reuse_postponed`` id is remembered by the damping entry so the
  eventual ``reuse_expired`` points at whichever record last (re)armed
  the timer;
* **ambiently**, via :attr:`context`: delivering a message, firing a
  reuse timer, flushing an MRAI timer, and executing a flap action each
  set the context to their own record id, and anything emitted while that
  handler runs (charges, selections, sends) inherits it as ``cause_id``.
  The engine hook clears the context at every event boundary so causes
  can never leak across unrelated events.

When the sink is a :class:`~repro.trace.sinks.NullSink` the tracer is
*disabled*: :meth:`attach` installs nothing, so the simulator's fast
dispatch path runs exactly as it would with no tracer at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from .records import TraceRecord
from .sinks import MemorySink, TraceSink

if TYPE_CHECKING:
    from repro.bgp.router import BgpRouter
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.sim.engine import Engine, ScheduledEvent


class Tracer:
    """Collects causal trace records for one simulation episode."""

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self._sink: TraceSink = sink if sink is not None else MemorySink()
        #: False for a NullSink — attach() then installs nothing.
        self.enabled: bool = bool(self._sink.collecting)
        self._records: List[TraceRecord] = []
        #: Ambient causal context: id of the record whose handling is
        #: currently executing (None between causally-tracked events).
        self.context: Optional[int] = None
        #: Events executed per engine tag while attached (profiling aid).
        self.events_by_tag: Dict[str, int] = {}
        self._closed = False
        self.digest: Optional[str] = None

    # ------------------------------------------------------------------
    # record emission
    # ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """The records emitted so far (live list view, id order)."""
        return self._records

    def emit(
        self,
        kind: str,
        time: float,
        /,
        node: Optional[str] = None,
        cause: Optional[int] = None,
        **fields: object,
    ) -> int:
        """Append one record and return its id (ids start at 1)."""
        record_id = len(self._records) + 1
        self._records.append(
            TraceRecord(
                id=record_id,
                time=time,
                kind=kind,
                node=node,
                cause_id=cause,
                data=dict(fields),
            )
        )
        return record_id

    def amend(self, record_id: int, **fields: object) -> None:
        """Update the data payload of an already-emitted record (used for
        facts only known after the fact, e.g. whether a reuse was noisy)."""
        self._records[record_id - 1].data.update(fields)

    def set_context(self, record_id: Optional[int]) -> None:
        """Make ``record_id`` the ambient cause for subsequent records."""
        self.context = record_id

    # ------------------------------------------------------------------
    # message hooks (called by Network)
    # ------------------------------------------------------------------

    def note_send(self, message: "Message", time: float) -> int:
        """Record an update send; the id rides on ``message.trace_id``."""
        payload = message.payload
        record_id = self.emit(
            "send",
            time,
            node=message.src,
            cause=self.context,
            dst=message.dst,
            prefix=getattr(payload, "prefix", None),
            withdrawal=bool(getattr(payload, "is_withdrawal", False)),
        )
        message.trace_id = record_id
        return record_id

    def note_recv(self, message: "Message", time: float) -> int:
        """Record an update delivery, caused by its ``send`` record, and
        make it the ambient context for the receiver's processing."""
        payload = message.payload
        record_id = self.emit(
            "recv",
            time,
            node=message.dst,
            cause=message.trace_id,
            src=message.src,
            prefix=getattr(payload, "prefix", None),
            withdrawal=bool(getattr(payload, "is_withdrawal", False)),
        )
        self.context = record_id
        return record_id

    def note_drop(self, message: "Message", time: float, reason: str) -> int:
        """Record a dropped message, caused by its ``send`` record (when
        one exists), so losses are explicit edges in the DAG instead of
        silently truncated branches."""
        payload = message.payload
        return self.emit(
            "drop",
            time,
            node=message.dst,
            cause=message.trace_id,
            src=message.src,
            prefix=getattr(payload, "prefix", None),
            withdrawal=bool(getattr(payload, "is_withdrawal", False)),
            reason=reason,
        )

    # ------------------------------------------------------------------
    # engine hook
    # ------------------------------------------------------------------

    def on_engine_event(self, event: "ScheduledEvent") -> None:
        """Engine dispatch hook: event boundaries reset the ambient
        context (handlers re-establish it) and tag counts accumulate."""
        self.context = None
        tag = event.tag if event.tag is not None else "untagged"
        count = self.events_by_tag.get(tag)
        self.events_by_tag[tag] = 1 if count is None else count + 1

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(
        self,
        engine: "Engine",
        network: "Network",
        routers: Iterable["BgpRouter"],
    ) -> None:
        """Instrument a built simulation. A no-op when disabled, so the
        engine keeps its uninstrumented fast dispatch path."""
        if not self.enabled:
            return
        engine.set_event_hook(self.on_engine_event)
        network.trace = self
        for router in routers:
            router.trace = self
            if router.damping is not None:
                router.damping.trace = self
            router.mrai.trace = self

    # ------------------------------------------------------------------
    # sealing
    # ------------------------------------------------------------------

    def close(self) -> Optional[str]:
        """Seal the trace into the sink; returns the document digest
        (``None`` for a discarding sink). Idempotent."""
        if not self._closed:
            self._closed = True
            self.digest = self._sink.write(self._records)
        return self.digest


__all__ = ["Tracer"]

"""Lightweight per-phase profiling for simulation runs.

:class:`PhaseProfiler` measures named phases (build, warm-up, analysis,
...) with wall-clock duration, engine-event deltas, and — when a
:class:`~repro.trace.tracer.Tracer` is supplied — per-tag event counts.
Schema v2 replaces the single opaque ``episode`` phase of v1 with
labelled *sub-phases* sampled per event by an :class:`EnginePhaseProbe`
attached to the engine: update delivery and best-path selection
(``decision_process``), reuse-timer firings and penalty arithmetic
(``penalty_decay``), MRAI flush rounds (``mrai_flush``), workload pulses
(``workload``), and everything else the dispatcher executes
(``timer_dispatch``); RIB-walking analysis phases are labelled
``rib_scan``. The report is exported as JSON next to ``perf.json`` so
the perf trajectory ships with a breakdown of *where* the time went —
and the perflint hot-set resolver consumes exactly this breakdown
(:func:`load_profile` / :func:`phase_fractions`).

Profiling reads the host clock, which is inherently non-deterministic;
that is acceptable here because the profile is an observability artifact,
never an input to the simulation (the detlint suppressions below mark
exactly those reads). The engine itself never reads the clock: it calls
the probe's ``before``/``after`` hooks and the probe does the timing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional

if TYPE_CHECKING:
    from repro.sim.engine import Engine

    from .tracer import Tracer

#: Schema stamp for ``profile.json``.
PROFILE_SCHEMA_VERSION = 2

#: Canonical sub-phase labels (schema v2). ``PHASE_ROOTS`` in
#: :mod:`repro.lint.perf` maps each label to its root functions.
PHASE_DECISION_PROCESS = "decision_process"
PHASE_PENALTY_DECAY = "penalty_decay"
PHASE_RIB_SCAN = "rib_scan"
PHASE_MRAI_FLUSH = "mrai_flush"
PHASE_TIMER_DISPATCH = "timer_dispatch"
PHASE_WORKLOAD = "workload"

#: The sub-phases that correspond to protocol hot paths.
HOT_PHASE_LABELS = (
    PHASE_DECISION_PROCESS,
    PHASE_PENALTY_DECAY,
    PHASE_RIB_SCAN,
    PHASE_MRAI_FLUSH,
    PHASE_TIMER_DISPATCH,
)

#: Engine event tag -> sub-phase label. Tags come from the scheduling
#: sites (``deliver`` on link delivery, ``reuse`` on damping reuse
#: timers, ``mrai`` on flush timers, ``flap``/``fault``/``gr-stale`` on
#: workload and fault machinery); untagged events are engine-internal
#: dispatch work.
TAG_PHASE_MAP: Dict[str, str] = {
    "deliver": PHASE_DECISION_PROCESS,
    "reuse": PHASE_PENALTY_DECAY,
    "mrai": PHASE_MRAI_FLUSH,
    "flap": PHASE_WORKLOAD,
    "fault": PHASE_WORKLOAD,
    "gr-stale": PHASE_WORKLOAD,
}


class EnginePhaseProbe:
    """Per-event sub-phase sampler attached via ``engine.set_phase_probe``.

    The engine brackets every executed callback with :meth:`before` /
    :meth:`after`; the probe accumulates wall seconds and event counts
    per sub-phase label. All clock reads live here, outside the
    deterministic core.
    """

    __slots__ = ("_walls", "_events", "_start")

    def __init__(self) -> None:
        self._walls: Dict[str, float] = {}
        self._events: Dict[str, int] = {}
        self._start = 0.0

    def before(self) -> None:
        self._start = time.perf_counter()  # detlint: disable=DET001

    def after(self, tag: Optional[str]) -> None:
        wall = time.perf_counter() - self._start  # detlint: disable=DET001
        label = TAG_PHASE_MAP.get(tag, PHASE_TIMER_DISPATCH) if tag else (
            PHASE_TIMER_DISPATCH
        )
        self._walls[label] = self._walls.get(label, 0.0) + wall
        self._events[label] = self._events.get(label, 0) + 1

    def snapshot(self) -> List[Dict[str, object]]:
        """Per-sub-phase entries accumulated so far, sorted by label."""
        return [
            {
                "phase": label,
                "wall_seconds": round(self._walls[label], 6),
                "events": self._events.get(label, 0),
                "source": "engine_probe",
            }
            for label in sorted(self._walls)
        ]

    def reset(self) -> None:
        """Forget accumulated samples (between warm-up and the run)."""
        self._walls.clear()
        self._events.clear()


class PhaseProfiler:
    """Accumulates wall/event counters for named phases of one run."""

    def __init__(
        self,
        engine: Optional["Engine"] = None,
        tracer: Optional["Tracer"] = None,
        probe: Optional[EnginePhaseProbe] = None,
    ) -> None:
        self._engine = engine
        self._tracer = tracer
        self._probe = probe
        self._phases: List[Dict[str, object]] = []

    def bind(
        self,
        engine: Optional["Engine"] = None,
        tracer: Optional["Tracer"] = None,
        probe: Optional[EnginePhaseProbe] = None,
    ) -> None:
        """Late-bind the engine/tracer/probe (they often only exist after
        the profiler's first phase has built them)."""
        if engine is not None:
            self._engine = engine
        if tracer is not None:
            self._tracer = tracer
        if probe is not None:
            self._probe = probe

    def attach_probe(self, engine: "Engine") -> EnginePhaseProbe:
        """Create an :class:`EnginePhaseProbe`, install it on ``engine``,
        and fold its sub-phases into this profiler's report."""
        probe = EnginePhaseProbe()
        engine.set_phase_probe(probe)
        self.bind(engine=engine, probe=probe)
        return probe

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one named phase (wall seconds + engine-event delta)."""
        events_before = self._engine.events_executed if self._engine else 0
        tags_before = dict(self._tracer.events_by_tag) if self._tracer else {}
        start = time.perf_counter()  # detlint: disable=DET001
        try:
            yield
        finally:
            wall = time.perf_counter() - start  # detlint: disable=DET001
            entry: Dict[str, object] = {
                "phase": name,
                "wall_seconds": round(wall, 6),
            }
            if self._engine is not None:
                entry["events"] = self._engine.events_executed - events_before
            if self._tracer is not None:
                deltas = {
                    tag: count - tags_before.get(tag, 0)
                    for tag, count in sorted(self._tracer.events_by_tag.items())
                    if count - tags_before.get(tag, 0)
                }
                if deltas:
                    entry["events_by_tag"] = deltas
            self._phases.append(entry)

    @property
    def phases(self) -> List[Dict[str, object]]:
        phases = list(self._phases)
        if self._probe is not None:
            phases.extend(self._probe.snapshot())
        return phases

    def report(self) -> Dict[str, object]:
        """The complete profile as a JSON-serialisable payload.

        Phases are aggregated by name (several ``phase("warm_up")``
        blocks merge into one entry), and the engine probe's sub-phase
        samples appear as first-class phases alongside the explicit ones.
        """
        aggregated = _aggregate_phases(self.phases)
        total_wall = 0.0
        for entry in aggregated:
            wall = entry["wall_seconds"]
            if isinstance(wall, (int, float)):
                total_wall += float(wall)
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "total_wall_seconds": round(total_wall, 6),
            "phases": aggregated,
        }

    def export(self, path: str) -> None:
        """Write the profile report to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _aggregate_phases(
    entries: List[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Merge entries sharing a phase name (first-seen order preserved)."""
    order: List[str] = []
    merged: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        name = str(entry.get("phase", ""))
        if name not in merged:
            order.append(name)
            merged[name] = dict(entry)
            continue
        target = merged[name]
        target["wall_seconds"] = round(
            float(target.get("wall_seconds", 0.0) or 0.0)
            + float(entry.get("wall_seconds", 0.0) or 0.0),
            6,
        )
        if "events" in entry or "events" in target:
            target["events"] = int(target.get("events", 0) or 0) + int(
                entry.get("events", 0) or 0
            )
        tags_entry = entry.get("events_by_tag")
        if isinstance(tags_entry, dict):
            tags_target = target.setdefault("events_by_tag", {})
            if isinstance(tags_target, dict):
                for tag, count in tags_entry.items():
                    tags_target[tag] = int(tags_target.get(tag, 0) or 0) + int(
                        count
                    )
    return [merged[name] for name in order]


def load_profile(path: str) -> Dict[str, object]:
    """Load a ``profile.json`` export, upgrading schema v1 in memory.

    v1 files carried one opaque ``episode`` phase; the shim keeps them
    loadable (phases aggregate by name, ``upgraded_from`` records the
    original schema). Consumers that need sub-phase labels — the
    perflint hot-set resolver — treat ``episode`` as "all sub-phases".

    Raises :class:`ValueError` for unknown schemas or malformed files.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"profile {path!r} is not a JSON object")
    schema = data.get("schema")
    phases = data.get("phases")
    if not isinstance(phases, list):
        raise ValueError(f"profile {path!r} has no phase list")
    if schema == PROFILE_SCHEMA_VERSION:
        return data
    if schema == 1:
        upgraded: Dict[str, object] = dict(data)
        upgraded["schema"] = PROFILE_SCHEMA_VERSION
        upgraded["upgraded_from"] = 1
        upgraded["phases"] = _aggregate_phases(
            [entry for entry in phases if isinstance(entry, dict)]
        )
        return upgraded
    raise ValueError(
        f"profile {path!r} has unsupported schema {schema!r} "
        f"(this build reads v1..v{PROFILE_SCHEMA_VERSION})"
    )


def phase_fractions(report: Mapping[str, object]) -> Dict[str, float]:
    """Wall-clock fraction per phase name, from a loaded profile report."""
    phases = report.get("phases")
    if not isinstance(phases, list):
        return {}
    walls: Dict[str, float] = {}
    for entry in phases:
        if not isinstance(entry, dict):
            continue
        name = entry.get("phase")
        wall = entry.get("wall_seconds")
        if isinstance(name, str) and isinstance(wall, (int, float)):
            walls[name] = walls.get(name, 0.0) + float(wall)
    total = sum(walls.values())
    if total <= 0.0:
        return {name: 0.0 for name in walls}
    return {name: wall / total for name, wall in walls.items()}


__all__ = [
    "HOT_PHASE_LABELS",
    "PHASE_DECISION_PROCESS",
    "PHASE_MRAI_FLUSH",
    "PHASE_PENALTY_DECAY",
    "PHASE_RIB_SCAN",
    "PHASE_TIMER_DISPATCH",
    "PHASE_WORKLOAD",
    "PROFILE_SCHEMA_VERSION",
    "TAG_PHASE_MAP",
    "EnginePhaseProbe",
    "PhaseProfiler",
    "load_profile",
    "phase_fractions",
]

"""Lightweight per-phase profiling for simulation runs.

:class:`PhaseProfiler` measures named phases (build, warm-up, episode,
analysis, ...) with wall-clock duration, engine-event deltas, and — when
a :class:`~repro.trace.tracer.Tracer` is supplied — per-tag event counts.
The report is exported as JSON next to ``perf.json`` so the perf
trajectory ships with a breakdown of *where* the time went.

Profiling reads the host clock, which is inherently non-deterministic;
that is acceptable here because the profile is an observability artifact,
never an input to the simulation (the detlint suppressions below mark
exactly those reads).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:
    from repro.sim.engine import Engine

    from .tracer import Tracer

#: Schema stamp for ``profile.json``.
PROFILE_SCHEMA_VERSION = 1


class PhaseProfiler:
    """Accumulates wall/event counters for named phases of one run."""

    def __init__(
        self,
        engine: Optional["Engine"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self._engine = engine
        self._tracer = tracer
        self._phases: List[Dict[str, object]] = []

    def bind(
        self,
        engine: Optional["Engine"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        """Late-bind the engine/tracer (they often only exist after the
        profiler's first phase has built them)."""
        if engine is not None:
            self._engine = engine
        if tracer is not None:
            self._tracer = tracer

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one named phase (wall seconds + engine-event delta)."""
        events_before = self._engine.events_executed if self._engine else 0
        tags_before = dict(self._tracer.events_by_tag) if self._tracer else {}
        start = time.perf_counter()  # detlint: disable=DET001
        try:
            yield
        finally:
            wall = time.perf_counter() - start  # detlint: disable=DET001
            entry: Dict[str, object] = {
                "phase": name,
                "wall_seconds": round(wall, 6),
            }
            if self._engine is not None:
                entry["events"] = self._engine.events_executed - events_before
            if self._tracer is not None:
                deltas = {
                    tag: count - tags_before.get(tag, 0)
                    for tag, count in sorted(self._tracer.events_by_tag.items())
                    if count - tags_before.get(tag, 0)
                }
                if deltas:
                    entry["events_by_tag"] = deltas
            self._phases.append(entry)

    @property
    def phases(self) -> List[Dict[str, object]]:
        return list(self._phases)

    def report(self) -> Dict[str, object]:
        """The complete profile as a JSON-serialisable payload."""
        total_wall = 0.0
        for entry in self._phases:
            wall = entry["wall_seconds"]
            if isinstance(wall, float):
                total_wall += wall
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "total_wall_seconds": round(total_wall, 6),
            "phases": list(self._phases),
        }

    def export(self, path: str) -> None:
        """Write the profile report to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")


__all__ = ["PROFILE_SCHEMA_VERSION", "PhaseProfiler"]

"""Command-line interface.

``rfd-repro`` (or ``python -m repro``) exposes the experiment drivers and
an ad-hoc simulation runner::

    rfd-repro list
    rfd-repro run F8            # reproduce Figure 8 and print its table
    rfd-repro run T1 F3 F7      # several experiments in one invocation
    rfd-repro run F8 --jobs 4   # sweep points across 4 worker processes
    rfd-repro simulate --topology mesh --nodes 100 --pulses 3 --damping cisco
    rfd-repro lint --pass all src/   # detlint + semlint static analysis
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.params import VENDOR_PRESETS
from repro.experiments.registry import get_experiment, list_experiments
from repro.metrics.report import render_table
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfd-repro",
        description=(
            "Reproduction of 'Timer Interaction in Route Flap Damping' "
            "(ICDCS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, e.g. F8 F9 T1 — or 'all' for every artefact",
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="also export each experiment's tables/series as CSV into this directory",
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "sweep every drained episode with the converged-state "
            "invariant oracle (fails the run on any violation)"
        ),
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweeps: 1 = sequential (default), "
            "0 = one per CPU, N = that many; results are digest-identical "
            "for every value"
        ),
    )

    intended = sub.add_parser(
        "intended", help="evaluate the Section 3 intended-behaviour model"
    )
    intended.add_argument("--pulses", type=int, default=10, help="max pulse count")
    intended.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    intended.add_argument("--tup", type=float, default=30.0, help="normal convergence t_up (s)")
    intended.add_argument(
        "--vendor", choices=list(VENDOR_PRESETS), default="cisco"
    )

    sim = sub.add_parser("simulate", help="run a single ad-hoc episode")
    sim.add_argument("--topology", choices=["mesh", "internet"], default="mesh")
    sim.add_argument("--nodes", type=int, default=100, help="topology size")
    sim.add_argument("--pulses", type=int, default=1, help="number of flap pulses")
    sim.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    sim.add_argument(
        "--damping",
        choices=["off", *VENDOR_PRESETS],
        default="cisco",
        help="damping parameter preset (or off)",
    )
    sim.add_argument("--rcn", action="store_true", help="enable RCN-enhanced damping")
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "accepted for symmetry with 'run'; a single ad-hoc episode "
            "always executes in-process (the value is only validated)"
        ),
    )
    sim.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "after the episode drains, run the converged-state invariant "
            "oracle (reachability, loop-freedom, decision consistency, "
            "drain) and fail on any violation"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help="run the detlint/semlint static-analysis passes",
        description=(
            "Check Python sources against the determinism (DET001..DET009) "
            "and protocol-semantics (SEM001..SEM007) rule catalogues — see "
            "docs/STATIC_ANALYSIS.md. Exits 0 when clean, 1 when findings "
            "or parse errors remain, 2 on usage errors."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="output_format"
    )
    lint.add_argument(
        "--select", action="append", default=[], metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", default=[], metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    lint.add_argument(
        "--pass",
        choices=["det", "sem", "all"],
        default="all",
        dest="lint_pass",
        help=(
            "which analysis pass to run: det (determinism), sem (protocol "
            "semantics), or all (default)"
        ),
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "compare findings against a baseline file; baselined findings "
            "are reported but do not fail the run"
        ),
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        driver = get_experiment(experiment_id)
        doc = (driver.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{experiment_id:>4}  {summary}")
    return 0


def _cmd_run(
    experiment_ids: List[str],
    csv_dir: Optional[str],
    check_invariants: bool = False,
    jobs: int = 1,
) -> int:
    if check_invariants:
        from repro.experiments.base import set_invariant_checking

        set_invariant_checking(True)
    if jobs != 1:
        # Validate eagerly so a bad value fails before any sweep starts;
        # drivers take no arguments, so the default-jobs switch carries it.
        from repro.experiments.base import set_default_jobs
        from repro.experiments.parallel import resolve_jobs

        resolve_jobs(jobs)
        set_default_jobs(jobs)
    if any(eid.lower() == "all" for eid in experiment_ids):
        experiment_ids = list_experiments()
    for experiment_id in experiment_ids:
        driver = get_experiment(experiment_id)
        result = driver()
        print(result.render())
        if csv_dir is not None:
            from repro.experiments.export import export_result

            written = export_result(result, csv_dir)
            for path in written:
                print(f"wrote {path}")
        print()
    return 0


def _cmd_intended(args: argparse.Namespace) -> int:
    from repro.core.intended import IntendedBehaviorModel

    params = VENDOR_PRESETS[args.vendor]
    model = IntendedBehaviorModel(params, flap_interval=args.interval, tup=args.tup)
    rows = []
    for n in range(0, args.pulses + 1):
        prediction = model.predict(n)
        rows.append(
            [
                n,
                round(prediction.penalty_at_final, 1),
                "yes" if prediction.suppressed else "no",
                prediction.suppression_pulse if prediction.suppression_pulse else "-",
                round(prediction.reuse_delay, 1),
                round(prediction.convergence_time, 1),
            ]
        )
    print(
        render_table(
            ["pulses", "penalty", "suppressed", "onset", "reuse_delay_s", "convergence_s"],
            rows,
            title=(
                f"intended behaviour ({args.vendor}, interval {args.interval:.0f}s, "
                f"t_up {args.tup:.0f}s)"
            ),
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import resolve_jobs

    resolve_jobs(args.jobs)
    if args.topology == "mesh":
        side = max(2, round(args.nodes ** 0.5))
        topology = mesh_topology(side, side)
    else:
        topology = internet_topology(args.nodes, seed=7)
    damping = None if args.damping == "off" else VENDOR_PRESETS[args.damping]
    config = ScenarioConfig(
        topology=topology, damping=damping, rcn=args.rcn, seed=args.seed
    )
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(args.pulses, args.interval))
    invariant_rows: List[List[object]] = []
    invariant_failures: List[str] = []
    if args.check_invariants:
        from repro.analysis.invariants import check_converged_invariants

        # Every PulseSchedule ends with the origin up, so the converged
        # network must be fully reachable and fully drained.
        inv = check_converged_invariants(scenario)
        invariant_rows.append(
            [
                "invariants",
                f"ok ({inv.routers_checked} routers)"
                if inv.ok
                else f"{len(inv.violations)} violation(s)",
            ]
        )
        invariant_failures = [str(v) for v in inv.violations]
    headers = ["metric", "value"]
    rows = [
        ["topology", topology.name],
        ["pulses", args.pulses],
        ["flap interval (s)", args.interval],
        ["damping", args.damping + (" + RCN" if args.rcn else "")],
        ["warm-up convergence (s)", round(result.warmup_convergence, 1)],
        ["convergence time (s)", round(result.convergence_time, 1)],
        ["message count", result.message_count],
        ["suppressions", result.summary.total_suppressions],
        ["peak damped links", result.summary.peak_damped_links],
        ["noisy / silent reuses", f"{result.summary.noisy_reuses} / {result.summary.silent_reuses}"],
        ["secondary charges", result.summary.secondary_charges],
    ]
    rows.extend(invariant_rows)
    print(render_table(headers, rows, title="simulation result"))
    if invariant_failures:
        for failure in invariant_failures:
            print(f"invariant violation: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.lint import (
        apply_baseline,
        lint_paths,
        make_config,
        parse_baseline,
        render_baseline,
        render_json,
        render_rule_list,
        render_text,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.update_baseline and args.baseline is None:
        print(
            "rfd-repro lint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    config = make_config(
        select=tuple(args.select),
        ignore=tuple(args.ignore),
        passes=(args.lint_pass,),
    )
    try:
        report = lint_paths(args.paths, config)
    except (ConfigurationError, FileNotFoundError) as exc:
        print(f"rfd-repro lint: {exc}", file=sys.stderr)
        return 2
    if args.baseline is not None:
        if args.update_baseline:
            with open(args.baseline, "w", encoding="utf-8") as handle:
                handle.write(render_baseline(report))
            print(
                f"wrote baseline with {report.finding_count} finding(s) "
                f"to {args.baseline}"
            )
            return 0
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                counts = parse_baseline(handle.read())
        except (ConfigurationError, OSError) as exc:
            print(f"rfd-repro lint: {exc}", file=sys.stderr)
            return 2
        report = apply_baseline(report, counts)
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiments, args.csv_dir, args.check_invariants, args.jobs
        )
    if args.command == "intended":
        return _cmd_intended(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

``rfd-repro`` (or ``python -m repro``) exposes the experiment drivers and
an ad-hoc simulation runner::

    rfd-repro list
    rfd-repro run F8            # reproduce Figure 8 and print its table
    rfd-repro run T1 F3 F7      # several experiments in one invocation
    rfd-repro run F8 --jobs 4   # sweep points across 4 worker processes
    rfd-repro run F8 --smoke --verify-digests benchmarks/results/f8_smoke_digests.json
    rfd-repro simulate --topology mesh --nodes 100 --pulses 3 --damping cisco
    rfd-repro trace --topology mesh --nodes 100 --pulses 3 --out run.jsonl
    rfd-repro lint --pass all src/   # detlint + semlint static analysis
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.core.params import VENDOR_PRESETS
from repro.experiments.registry import get_experiment, list_experiments
from repro.metrics.report import render_table
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfd-repro",
        description=(
            "Reproduction of 'Timer Interaction in Route Flap Damping' "
            "(ICDCS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments by id")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids, e.g. F8 F9 T1 — or 'all' for every artefact",
    )
    run.add_argument(
        "--csv-dir",
        default=None,
        help="also export each experiment's tables/series as CSV into this directory",
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "sweep every drained episode with the converged-state "
            "invariant oracle (fails the run on any violation)"
        ),
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweeps: 1 = sequential (default), "
            "0 = one per CPU, N = that many; results are digest-identical "
            "for every value"
        ),
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help=(
            "sweep points per task submitted to a worker (default: "
            "auto-sized to a few chunks per worker); results are "
            "digest-identical for every value"
        ),
    )
    run.add_argument(
        "--snapshot-transport",
        choices=["auto", "shm", "spill", "inline"],
        default="auto",
        help=(
            "how warm-state snapshots reach workers: content-addressed "
            "shared memory ('shm'), a content-addressed spill file "
            "('spill'), or pickled with each task ('inline'); 'auto' "
            "(default) picks shm where available, else spill"
        ),
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced-pulse-count sweeps (0..3 instead of 0..10) — a "
            "seconds-long wiring check for CI, not a figure reproduction"
        ),
    )
    run.add_argument(
        "--verify-digests",
        default=None,
        metavar="FILE",
        help=(
            "after each experiment, compare its sweep-point digests "
            "against this committed JSON expectation and fail on mismatch"
        ),
    )
    run.add_argument(
        "--write-digests",
        default=None,
        metavar="FILE",
        help="write the sweep-point digests of this run to FILE and exit 0",
    )

    intended = sub.add_parser(
        "intended", help="evaluate the Section 3 intended-behaviour model"
    )
    intended.add_argument("--pulses", type=int, default=10, help="max pulse count")
    intended.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    intended.add_argument("--tup", type=float, default=30.0, help="normal convergence t_up (s)")
    intended.add_argument(
        "--vendor", choices=list(VENDOR_PRESETS), default="cisco"
    )

    sim = sub.add_parser("simulate", help="run a single ad-hoc episode")
    sim.add_argument("--topology", choices=["mesh", "internet"], default="mesh")
    sim.add_argument("--nodes", type=int, default=100, help="topology size")
    sim.add_argument("--pulses", type=int, default=1, help="number of flap pulses")
    sim.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    sim.add_argument(
        "--damping",
        choices=["off", *VENDOR_PRESETS],
        default="cisco",
        help="damping parameter preset (or off)",
    )
    sim.add_argument("--rcn", action="store_true", help="enable RCN-enhanced damping")
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "accepted for symmetry with 'run'; a single ad-hoc episode "
            "always executes in-process (the value is only validated)"
        ),
    )
    sim.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "after the episode drains, run the converged-state invariant "
            "oracle (reachability, loop-freedom, decision consistency, "
            "drain) and fail on any violation"
        ),
    )
    sim.add_argument(
        "--audit-timers",
        action="store_true",
        help=(
            "attach the runtime timer audit (arm/cancel/fire accounting "
            "per handle) and fail on any lifecycle violation — leaked "
            "armed timers, double-arms, unmatched fires"
        ),
    )
    sim.add_argument(
        "--audit-alloc",
        action="store_true",
        help=(
            "attach the runtime allocation probe (tracemalloc net bytes "
            "per profiled sub-phase) and print the per-phase allocation "
            "report — the dynamic counterpart of the perflint pass"
        ),
    )
    sim.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "inject a deterministic fault plan (crashes, link failures, "
            "lossy links) into the measured episode — see "
            "docs/ROBUSTNESS.md and 'rfd-repro faults template'"
        ),
    )
    sim.add_argument(
        "--graceful-restart",
        type=float,
        default=None,
        metavar="SECS",
        dest="graceful_restart",
        help=(
            "give every router RFC-4724-style graceful restart with this "
            "restart time: neighbours of a crashed router retain its "
            "routes as stale instead of withdrawing them"
        ),
    )

    faults = sub.add_parser(
        "faults",
        help="create, inspect, and run deterministic fault plans",
        description=(
            "Fault plans are JSON schedules of link failures, router "
            "crashes (with optional graceful restart), session resets, "
            "lossy links, and seeded flap storms. Same seed + same plan "
            "replays to byte-identical digests, sequentially or under "
            "--jobs N — see docs/ROBUSTNESS.md."
        ),
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    ftemplate = faults_sub.add_parser(
        "template", help="write an example fault plan for a topology"
    )
    ftemplate.add_argument("--topology", choices=["mesh", "internet"], default="mesh")
    ftemplate.add_argument("--nodes", type=int, default=25, help="topology size")
    ftemplate.add_argument(
        "--out", default=None, metavar="FILE", help="write here (default: stdout)"
    )

    fdescribe = faults_sub.add_parser(
        "describe", help="validate a plan file and list its actions"
    )
    fdescribe.add_argument("plan", help="fault plan JSON file")

    frun = faults_sub.add_parser(
        "run", help="sweep pulse counts with a fault plan injected"
    )
    frun.add_argument("plan", help="fault plan JSON file")
    frun.add_argument("--topology", choices=["mesh", "internet"], default="mesh")
    frun.add_argument("--nodes", type=int, default=25, help="topology size")
    frun.add_argument("--pulses", type=int, default=3, help="sweep 0..N pulses")
    frun.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    frun.add_argument(
        "--damping",
        choices=["off", *VENDOR_PRESETS],
        default="cisco",
        help="damping parameter preset (or off)",
    )
    frun.add_argument("--rcn", action="store_true", help="enable RCN-enhanced damping")
    frun.add_argument("--seed", type=int, default=42)
    frun.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes: 1 = sequential (default), 0 = one per CPU; "
            "digests are identical for every value"
        ),
    )
    frun.add_argument(
        "--graceful-restart",
        type=float,
        default=None,
        metavar="SECS",
        dest="graceful_restart",
        help="give every router graceful restart with this restart time",
    )
    frun.add_argument(
        "--check-invariants",
        action="store_true",
        help="run the converged-state invariant oracle after each episode",
    )
    frun.add_argument(
        "--audit-timers",
        action="store_true",
        help="attach the runtime timer audit to each episode",
    )
    frun.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock bound per sweep point when running with --jobs > 1",
    )
    frun.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help="sweep points per worker task (default: auto-sized)",
    )
    frun.add_argument(
        "--snapshot-transport",
        choices=["auto", "shm", "spill", "inline"],
        default="auto",
        help="how warm-state snapshots reach workers (see 'run --help')",
    )
    frun.add_argument(
        "--digest-out",
        default=None,
        metavar="FILE",
        help="write the per-point run digests as JSON (determinism checks)",
    )

    trace = sub.add_parser(
        "trace",
        help="run one episode with causal tracing and summarize the DAG",
        description=(
            "Run a single scenario with the causal tracer attached, emit "
            "the trace as canonical JSONL, and print a charge-attribution "
            "summary (origin-flap / path-exploration / secondary-charging) "
            "cross-checked against the windowed attribution analysis — see "
            "docs/OBSERVABILITY.md."
        ),
    )
    trace.add_argument("--topology", choices=["mesh", "internet"], default="mesh")
    trace.add_argument("--nodes", type=int, default=100, help="topology size")
    trace.add_argument("--pulses", type=int, default=3, help="number of flap pulses")
    trace.add_argument("--interval", type=float, default=60.0, help="flap interval (s)")
    trace.add_argument(
        "--damping",
        choices=["off", *VENDOR_PRESETS],
        default="cisco",
        help="damping parameter preset (or off)",
    )
    trace.add_argument("--rcn", action="store_true", help="enable RCN-enhanced damping")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full trace as canonical JSONL to FILE",
    )
    trace.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        dest="summary_json",
        help="write the causal-attribution summary as JSON to FILE",
    )
    trace.add_argument(
        "--show",
        type=int,
        default=0,
        metavar="N",
        help="print the first N trace records (after --kinds filtering)",
    )
    trace.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2",
        help="comma-separated record kinds for --show (e.g. charge,reuse_expired)",
    )
    trace.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="export per-phase wall/event counters as JSON to FILE",
    )

    topo = sub.add_parser(
        "topo",
        help="Internet-scale topology pipeline: generate, ingest, inspect, bench",
        description=(
            "Generate seeded power-law AS graphs, ingest CAIDA-style "
            "AS-relationship files, print topology statistics, and run "
            "measured large-graph flap episodes (see docs/SCALING.md)."
        ),
    )
    topo_sub = topo.add_subparsers(dest="topo_command", required=True)

    tgen = topo_sub.add_parser(
        "gen", help="generate a seeded power-law AS graph and save it"
    )
    tgen.add_argument("--nodes", type=int, default=1000, help="AS count (default 1000)")
    tgen.add_argument(
        "--attachment", type=int, default=2,
        help="edges each new AS attaches with (default 2)",
    )
    tgen.add_argument(
        "--exponent", type=float, default=1.0,
        help="attachment kernel exponent: 1.0 = classic BA (default)",
    )
    tgen.add_argument(
        "--core", type=int, default=4, help="clique-core size (default 4)"
    )
    tgen.add_argument("--seed", type=int, default=0, help="generator seed (default 0)")
    tgen.add_argument(
        "--relationships", action="store_true",
        help="assign customer-provider / peer-peer relationships",
    )
    tgen.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the topology as JSON (save_topology format)",
    )
    tgen.add_argument(
        "--caida-out", default=None, metavar="FILE",
        help="also write a CAIDA-style AS-relationship file (needs --relationships)",
    )

    tingest = topo_sub.add_parser(
        "ingest", help="ingest a CAIDA-style AS-relationship file"
    )
    tingest.add_argument("path", help="AS-relationship file (provider|customer|-1 / peer|peer|0)")
    tingest.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the ingested topology as JSON (save_topology format)",
    )
    tingest.add_argument(
        "--no-relationships", action="store_true",
        help="keep only the graph (skip RelationshipMap construction/validation)",
    )
    tingest.add_argument(
        "--strict-connectivity", action="store_true",
        help="fail on disconnected input instead of keeping the largest component",
    )

    tstats = topo_sub.add_parser(
        "stats", help="summarise a topology (JSON or AS-relationship file)"
    )
    tstats.add_argument("path", help="topology JSON or AS-relationship file")
    tstats.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    tbench = topo_sub.add_parser(
        "bench",
        help="run a measured large-graph flap episode (wall clock, events/s, peak RSS)",
    )
    tbench.add_argument(
        "--nodes", type=int, default=1000,
        help="generate a power-law graph this size (default 1000)",
    )
    tbench.add_argument(
        "--topology-file", default=None, metavar="FILE",
        help="run on a saved topology JSON instead of generating one",
    )
    tbench.add_argument("--pulses", type=int, default=2, help="flap pulses (default 2)")
    tbench.add_argument(
        "--interval", type=float, default=120.0, help="seconds between flap events"
    )
    tbench.add_argument("--seed", type=int, default=0, help="simulation seed (default 0)")
    tbench.add_argument(
        "--topology-seed", type=int, default=3,
        help="generator seed when --topology-file is not given (default 3)",
    )
    tbench.add_argument(
        "--no-coalesce", action="store_true",
        help="schedule one engine event per message (the small-graph default)",
    )
    tbench.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the measurements as JSON ('-' for stdout)",
    )
    tbench.add_argument(
        "--write-digests", default=None, metavar="FILE",
        help="record this episode's metrics digest into FILE",
    )
    tbench.add_argument(
        "--verify-digests", default=None, metavar="FILE",
        help="fail unless this episode's metrics digest matches FILE",
    )

    lint = sub.add_parser(
        "lint",
        help="run the detlint/semlint/timerlint/perflint static-analysis passes",
        description=(
            "Check Python sources against the determinism (DET001..DET010), "
            "protocol-semantics (SEM001..SEM007), timer-lifecycle "
            "(TIM001..TIM010), and hot-path performance (PERF001..PERF010) "
            "rule catalogues — see docs/STATIC_ANALYSIS.md. PERF findings "
            "keep warning severity only inside the profile-derived hot set; "
            "elsewhere they downgrade to advisory info and never block. "
            "Exit-code contract (stable): 0 clean (no blocking findings per "
            "--fail-on), 1 blocking findings or parse errors remain, 2 on "
            "usage errors."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="output_format"
    )
    lint.add_argument(
        "--select", action="append", default=[], metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", default=[], metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    lint.add_argument(
        "--pass",
        choices=["det", "sem", "tim", "perf", "all"],
        default="all",
        dest="lint_pass",
        help=(
            "which analysis pass to run: det (determinism), sem (protocol "
            "semantics), tim (timer lifecycle), perf (hot-path "
            "performance), or all (default)"
        ),
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse files with N worker processes (default: 1, sequential)",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "enable the incremental cache in DIR (e.g. .lint_cache); "
            "unchanged files are served from the cache, findings are "
            "digest-identical to an uncached run"
        ),
    )
    lint.add_argument(
        "--hot-profile",
        default=None,
        metavar="FILE",
        help=(
            "profile.json consulted by the perf pass's hot-set resolver "
            "(default: benchmarks/results/profile.json; missing profile "
            "treats every phase as hot)"
        ),
    )
    lint.add_argument(
        "--show-info",
        action="store_true",
        help="list advisory info-severity findings in text output",
    )
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="warning",
        dest="fail_on",
        help=(
            "minimum severity that exits 1: 'warning' (default) fails on any "
            "finding, 'error' ignores warnings, 'never' always exits 0 "
            "(parse errors still fail regardless)"
        ),
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "compare findings against a baseline file; baselined findings "
            "are reported but do not fail the run"
        ),
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        driver = get_experiment(experiment_id)
        doc = (driver.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{experiment_id:>4}  {summary}")
    return 0


def _result_digests(result) -> Dict[str, Dict[str, str]]:
    """``{series_key: {pulses: digest}}`` for every sweep the experiment
    ran (empty for experiments without sweep data)."""
    sweeps = result.data.get("sweeps")
    if not isinstance(sweeps, dict):
        return {}
    digests: Dict[str, Dict[str, str]] = {}
    for key, series in sweeps.items():
        points = {
            str(point.pulses): point.digest
            for point in getattr(series, "points", [])
            if getattr(point, "digest", None)
        }
        if points:
            digests[str(key)] = points
    return digests


def _verify_digests(
    experiment_id: str,
    actual: Dict[str, Dict[str, str]],
    expected: Dict[str, Dict[str, Dict[str, str]]],
) -> List[str]:
    """Compare one experiment's digests against the expectation file's
    entry; returns human-readable mismatch descriptions (empty = pass)."""
    mismatches: List[str] = []
    wanted = expected.get(experiment_id)
    if wanted is None:
        return [f"{experiment_id}: no entry in the digest expectation file"]
    for series_key, points in sorted(wanted.items()):
        got_points = actual.get(series_key, {})
        for pulses, digest in sorted(points.items()):
            got = got_points.get(pulses)
            if got is None:
                mismatches.append(
                    f"{experiment_id}/{series_key}: missing point n={pulses}"
                )
            elif got != digest:
                mismatches.append(
                    f"{experiment_id}/{series_key} n={pulses}: "
                    f"digest {got[:16]}… != expected {digest[:16]}…"
                )
    return mismatches


def _cmd_run(
    experiment_ids: List[str],
    csv_dir: Optional[str],
    check_invariants: bool = False,
    jobs: int = 1,
    smoke: bool = False,
    verify_digests: Optional[str] = None,
    write_digests: Optional[str] = None,
    chunk_size: Optional[int] = None,
    snapshot_transport: str = "auto",
) -> int:
    if check_invariants:
        from repro.experiments.base import set_invariant_checking

        set_invariant_checking(True)
    if smoke:
        from repro.experiments.base import set_smoke_mode

        set_smoke_mode(True)
    if jobs != 1:
        # Validate eagerly so a bad value fails before any sweep starts;
        # drivers take no arguments, so the default-jobs switch carries it.
        from repro.experiments.base import set_default_jobs
        from repro.experiments.parallel import resolve_jobs

        resolve_jobs(jobs)
        set_default_jobs(jobs)
    if chunk_size is not None or snapshot_transport != "auto":
        from repro.experiments.base import set_sweep_tuning
        from repro.experiments.parallel import resolve_chunk_size
        from repro.experiments.snapstore import resolve_transport

        # Same eager validation as --jobs: fail before any sweep starts.
        if chunk_size is not None:
            resolve_chunk_size(chunk_size, 1, 1)
        resolve_transport(snapshot_transport)
        set_sweep_tuning(chunk_size, snapshot_transport)
    expected: Optional[Dict[str, Dict[str, Dict[str, str]]]] = None
    if verify_digests is not None:
        try:
            with open(verify_digests, "r", encoding="utf-8") as handle:
                expected = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"rfd-repro run: cannot read {verify_digests}: {exc}", file=sys.stderr)
            return 2
    if any(eid.lower() == "all" for eid in experiment_ids):
        experiment_ids = list_experiments()
    collected: Dict[str, Dict[str, Dict[str, str]]] = {}
    mismatches: List[str] = []
    for experiment_id in experiment_ids:
        driver = get_experiment(experiment_id)
        result = driver()
        print(result.render())
        digests = _result_digests(result)
        if digests:
            collected[result.experiment_id] = digests
        if expected is not None:
            mismatches.extend(
                _verify_digests(result.experiment_id, digests, expected)
            )
        if csv_dir is not None:
            from repro.experiments.export import export_result

            written = export_result(result, csv_dir)
            for path in written:
                print(f"wrote {path}")
        print()
    if write_digests is not None:
        with open(write_digests, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote digests for {len(collected)} experiment(s) to {write_digests}")
    if mismatches:
        for mismatch in mismatches:
            print(f"digest mismatch: {mismatch}", file=sys.stderr)
        return 1
    if expected is not None:
        print("all sweep digests match the committed expectation")
    return 0


def _cmd_intended(args: argparse.Namespace) -> int:
    from repro.core.intended import IntendedBehaviorModel

    params = VENDOR_PRESETS[args.vendor]
    model = IntendedBehaviorModel(params, flap_interval=args.interval, tup=args.tup)
    rows = []
    for n in range(0, args.pulses + 1):
        prediction = model.predict(n)
        rows.append(
            [
                n,
                round(prediction.penalty_at_final, 1),
                "yes" if prediction.suppressed else "no",
                prediction.suppression_pulse if prediction.suppression_pulse else "-",
                round(prediction.reuse_delay, 1),
                round(prediction.convergence_time, 1),
            ]
        )
    print(
        render_table(
            ["pulses", "penalty", "suppressed", "onset", "reuse_delay_s", "convergence_s"],
            rows,
            title=(
                f"intended behaviour ({args.vendor}, interval {args.interval:.0f}s, "
                f"t_up {args.tup:.0f}s)"
            ),
        )
    )
    return 0


def _adhoc_config(args: argparse.Namespace) -> ScenarioConfig:
    """The shared --topology/--nodes/--damping/... scenario config used
    by the ``simulate`` and ``trace`` subcommands."""
    if args.topology == "mesh":
        side = max(2, round(args.nodes ** 0.5))
        topology = mesh_topology(side, side)
    else:
        topology = internet_topology(args.nodes, seed=7)
    damping = None if args.damping == "off" else VENDOR_PRESETS[args.damping]
    return ScenarioConfig(
        topology=topology, damping=damping, rcn=args.rcn, seed=args.seed
    )


def _with_fault_options(
    config: ScenarioConfig,
    faults_path: Optional[str],
    graceful_restart: Optional[float],
) -> ScenarioConfig:
    """Apply ``--faults`` / ``--graceful-restart`` to an ad-hoc config."""
    from dataclasses import replace

    if faults_path is not None:
        from repro.faults import FaultPlan

        config = replace(config, faults=FaultPlan.load(faults_path))
    if graceful_restart is not None:
        from repro.bgp.graceful_restart import GracefulRestartConfig

        config = replace(
            config,
            graceful_restart=GracefulRestartConfig(restart_time=graceful_restart),
        )
    return config


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.experiments.parallel import resolve_jobs

    resolve_jobs(args.jobs)
    try:
        config = _with_fault_options(
            _adhoc_config(args), args.faults, args.graceful_restart
        )
    except (ConfigurationError, OSError) as exc:
        print(f"rfd-repro simulate: {exc}", file=sys.stderr)
        return 2
    topology = config.topology
    scenario = Scenario(config)
    audit = scenario.engine.enable_timer_audit() if args.audit_timers else None
    alloc_probe = None
    if args.audit_alloc:
        from repro.sim.allocprobe import AllocationProbe

        alloc_probe = AllocationProbe()
        alloc_probe.start()
        scenario.engine.set_phase_probe(alloc_probe)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(args.pulses, args.interval))
    if alloc_probe is not None:
        alloc_probe.stop()
    invariant_rows: List[List[object]] = []
    invariant_failures: List[str] = []
    audit_failures: List[str] = []
    if audit is not None:
        violations = audit.verify()
        invariant_rows.append(
            [
                "timer audit",
                f"ok ({audit.timers_seen} timers, {audit.transitions} transitions)"
                if not violations
                else f"{len(violations)} violation(s)",
            ]
        )
        audit_failures = [
            f"{v.kind} @ {v.time:.1f}s timer {v.timer}: {v.detail}"
            for v in violations
        ]
    if args.check_invariants:
        from repro.analysis.invariants import check_converged_invariants

        # Every PulseSchedule ends with the origin up, so the converged
        # network must be fully reachable and fully drained.
        inv = check_converged_invariants(scenario)
        invariant_rows.append(
            [
                "invariants",
                f"ok ({inv.routers_checked} routers)"
                if inv.ok
                else f"{len(inv.violations)} violation(s)",
            ]
        )
        invariant_failures = [str(v) for v in inv.violations]
    headers = ["metric", "value"]
    rows = [
        ["topology", topology.name],
        ["pulses", args.pulses],
        ["flap interval (s)", args.interval],
        ["damping", args.damping + (" + RCN" if args.rcn else "")],
        ["warm-up convergence (s)", round(result.warmup_convergence, 1)],
        ["convergence time (s)", round(result.convergence_time, 1)],
        ["message count", result.message_count],
        ["suppressions", result.summary.total_suppressions],
        ["peak damped links", result.summary.peak_damped_links],
        ["noisy / silent reuses", f"{result.summary.noisy_reuses} / {result.summary.silent_reuses}"],
        ["secondary charges", result.summary.secondary_charges],
    ]
    if scenario.fault_injector is not None:
        rows.append(["fault actions fired", scenario.fault_injector.actions_fired])
    if result.collector.drop_count:
        rows.append(["messages dropped", result.collector.drop_count])
        for reason, count in result.collector.drops_by_reason().items():
            rows.append([f"  dropped: {reason}", count])
    rows.extend(invariant_rows)
    print(render_table(headers, rows, title="simulation result"))
    if alloc_probe is not None:
        print(alloc_probe.describe())
    for failure in invariant_failures:
        print(f"invariant violation: {failure}", file=sys.stderr)
    for failure in audit_failures:
        print(f"timer-audit violation: {failure}", file=sys.stderr)
    if invariant_failures or audit_failures:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.attribution import analyze_run
    from repro.analysis.causality import analyze_trace, compare_with_attribution
    from repro.trace import JsonlSink, MemorySink, PhaseProfiler, Tracer, canonical_line
    from repro.trace.records import KNOWN_KINDS

    kinds: Optional[List[str]] = None
    if args.kinds is not None:
        kinds = [kind.strip() for kind in args.kinds.split(",") if kind.strip()]
        unknown = sorted(set(kinds) - KNOWN_KINDS)
        if unknown:
            print(
                f"rfd-repro trace: unknown kind(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(KNOWN_KINDS))})",
                file=sys.stderr,
            )
            return 2

    profiler = PhaseProfiler()
    config = _adhoc_config(args)
    with profiler.phase("build"):
        scenario = Scenario(config)
    tracer = Tracer(JsonlSink(args.out) if args.out is not None else MemorySink())
    profiler.bind(engine=scenario.engine, tracer=tracer)
    # The probe splits engine dispatch into labelled sub-phases
    # (decision_process, penalty_decay, mrai_flush, ...) — the breakdown
    # the perflint hot-set resolver consumes (profile schema v2).
    probe = profiler.attach_probe(scenario.engine)
    with profiler.phase("warm_up"):
        scenario.warm_up()
    probe.reset()  # profile the measured episode, not the warm-up
    with profiler.phase("episode"):
        result = scenario.run(
            PulseSchedule.regular(args.pulses, args.interval), tracer=tracer
        )
    # The trace/attribution analyses below walk every router's RIBs and
    # the recorded trace — the profile's rib_scan phase.
    with profiler.phase("rib_scan"):
        digest = tracer.close()
        causal = analyze_trace(tracer.records)
        windowed = analyze_run(result)
        comparison = compare_with_attribution(causal, windowed.secondary_fraction)

    summary = causal.to_json_dict()
    summary["digest"] = digest
    summary["windowed_comparison"] = comparison

    rows: List[List[object]] = [
        ["records", causal.records_total],
        ["trace digest", (digest or "")[:16]],
        ["charges (total)", causal.charges_total],
    ]
    for label, count in causal.charges_by_class.items():
        rows.append([f"  charge: {label}", count])
    rows.append(["postponements (total)", causal.postponements_total])
    for label, count in causal.postponements_by_class.items():
        rows.append([f"  postponed by: {label}", count])
    rows.extend(
        [
            ["reuse expiries (noisy / muffled)", f"{causal.reuse_noisy} / {causal.reuse_muffled}"],
            ["secondary fraction (trace)", round(causal.secondary_fraction, 4)],
            ["secondary fraction (windowed)", round(windowed.secondary_fraction, 4)],
            ["agreement gap", comparison["difference"]],
        ]
    )
    print(render_table(["metric", "value"], rows, title="causal trace summary"))

    if args.show > 0:
        shown = 0
        for record in tracer.records:
            if kinds is not None and record.kind not in kinds:
                continue
            print(canonical_line(record))
            shown += 1
            if shown >= args.show:
                break
    if args.out is not None:
        print(f"wrote trace to {args.out}")
    if args.summary_json is not None:
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote summary to {args.summary_json}")
    if args.profile is not None:
        profiler.export(args.profile)
        print(f"wrote profile to {args.profile}")
    return 0


def _template_plan(topology) -> "object":
    """A runnable example plan built from a concrete topology: one
    crash/restart, one link flap, one lossy window, one small storm."""
    from repro.faults import (
        FaultPlan,
        FlapStorm,
        LinkFault,
        LinkImpairment,
        RouterCrash,
        SessionReset,
    )

    edges = topology.edges
    # Crash a neighbour of the default ISP (nodes[0]) rather than the ISP
    # itself: taking the origin's attachment point down just partitions
    # the network, which makes a dull example.
    victim = topology.neighbors(topology.nodes[0])[0]
    return FaultPlan(
        name=f"example-{topology.name}",
        crashes=(RouterCrash(router=victim, at=150.0, down_for=30.0),),
        link_faults=(
            LinkFault(a=edges[0][0], b=edges[0][1], down_at=200.0, up_at=260.0),
        ),
        session_resets=(SessionReset(a=edges[1][0], b=edges[1][1], at=240.0),),
        impairments=(
            LinkImpairment(
                a=edges[0][0],
                b=edges[0][1],
                start=60.0,
                duration=120.0,
                loss=0.05,
                duplicate=0.02,
                extra_jitter=0.5,
            ),
        ),
        storms=(
            FlapStorm(
                name="storm0",
                links=(tuple(edges[2]),),
                start=300.0,
                flaps=3,
                min_interval=5.0,
                max_interval=15.0,
                down_time=2.0,
            ),
        ),
    )


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.faults import FaultPlan

    if args.faults_command == "template":
        if args.topology == "mesh":
            side = max(2, round(args.nodes ** 0.5))
            topology = mesh_topology(side, side)
        else:
            topology = internet_topology(args.nodes, seed=7)
        plan = _template_plan(topology)
        document = plan.dumps()
        if args.out is None:
            print(document, end="")
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"wrote example plan to {args.out}")
        return 0

    if args.faults_command == "describe":
        try:
            plan = FaultPlan.load(args.plan)
        except (ConfigurationError, OSError) as exc:
            print(f"rfd-repro faults: {exc}", file=sys.stderr)
            return 2
        rows: List[List[object]] = []
        for fault in plan.link_faults:
            window = f"down {fault.down_at:.0f}s" + (
                f" .. up {fault.up_at:.0f}s" if fault.up_at is not None else " (stays down)"
            )
            rows.append(["link-fault", f"{fault.a}-{fault.b}", window])
        for crash in plan.crashes:
            window = f"crash {crash.at:.0f}s" + (
                f" .. restart {crash.at + crash.down_for:.0f}s"
                if crash.down_for is not None
                else " (stays down)"
            )
            rows.append(["crash", crash.router, window])
        for reset in plan.session_resets:
            rows.append(["session-reset", f"{reset.a}-{reset.b}", f"at {reset.at:.0f}s"])
        for imp in plan.impairments:
            window = f"from {imp.start:.0f}s" + (
                f" for {imp.duration:.0f}s" if imp.duration is not None else " (episode end)"
            )
            rows.append(
                [
                    "impairment",
                    f"{imp.a}-{imp.b}",
                    f"{window}: loss={imp.loss} dup={imp.duplicate} "
                    f"jitter={imp.extra_jitter}",
                ]
            )
        for storm in plan.storms:
            rows.append(
                [
                    "storm",
                    storm.name,
                    f"{storm.flaps} flaps over {len(storm.links)} link(s) "
                    f"from {storm.start:.0f}s (stream {storm.stream_name})",
                ]
            )
        print(
            render_table(
                ["action", "target", "schedule"],
                rows,
                title=f"fault plan {plan.name!r} ({plan.action_count} action(s))",
            )
        )
        return 0

    # faults run
    from repro.errors import SimulationError
    from repro.experiments.parallel import execute_sweep

    try:
        config = _with_fault_options(
            _adhoc_config(args), args.plan, args.graceful_restart
        )
        counts = list(range(0, args.pulses + 1))
        outcomes = execute_sweep(
            config,
            counts,
            flap_interval=args.interval,
            jobs=args.jobs,
            check_invariants=args.check_invariants,
            audit_timers=args.audit_timers,
            point_timeout=args.point_timeout,
            chunk_size=args.chunk_size,
            snapshot_transport=args.snapshot_transport,
        )
    except (ConfigurationError, SimulationError, OSError) as exc:
        print(f"rfd-repro faults run: {exc}", file=sys.stderr)
        return 1
    rows = [
        [
            outcome.pulses,
            outcome.message_count,
            outcome.suppressions,
            outcome.secondary_charges,
            round(outcome.convergence_time, 1),
            outcome.digest[:16],
        ]
        for outcome in outcomes
    ]
    print(
        render_table(
            ["pulses", "messages", "suppressions", "secondary", "convergence_s", "digest"],
            rows,
            title=f"fault sweep ({args.plan}, jobs={args.jobs})",
        )
    )
    if args.digest_out is not None:
        digests = {str(outcome.pulses): outcome.digest for outcome in outcomes}
        with open(args.digest_out, "w", encoding="utf-8") as handle:
            json.dump(digests, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote digests to {args.digest_out}")
    return 0


def _load_any_topology(path: str):
    """Load ``path`` as topology JSON, falling back to the CAIDA-style
    AS-relationship format (the two interchange formats `topo` accepts)."""
    from repro.errors import TopologyError
    from repro.topology.io import load_topology
    from repro.topology.scale import ingest_as_relationships

    try:
        return load_topology(path)
    except TopologyError:
        return ingest_as_relationships(path)


def _scale_digest_key(result) -> str:
    return (
        f"{result.topology_name}/seed{result.seed}/pulses{result.pulses}"
        f"/coalesce{int(result.coalesce_delivery)}"
    )


def _cmd_topo(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.topology.io import load_topology, save_topology
    from repro.topology.scale import (
        ingest_as_relationships,
        powerlaw_topology,
        topology_stats,
        write_as_relationships,
    )

    try:
        if args.topo_command == "gen":
            if args.caida_out and not args.relationships:
                print(
                    "rfd-repro topo gen: --caida-out requires --relationships",
                    file=sys.stderr,
                )
                return 2
            topology = powerlaw_topology(
                args.nodes,
                attachment=args.attachment,
                exponent=args.exponent,
                core=args.core,
                seed=args.seed,
                with_relationships=args.relationships,
            )
            _print_stats_table(topology_stats(topology))
            if args.out:
                save_topology(topology, args.out)
                print(f"wrote topology to {args.out}")
            if args.caida_out:
                write_as_relationships(topology, args.caida_out)
                print(f"wrote AS relationships to {args.caida_out}")
            return 0

        if args.topo_command == "ingest":
            topology = ingest_as_relationships(
                args.path,
                largest_component=not args.strict_connectivity,
                with_relationships=not args.no_relationships,
            )
            _print_stats_table(topology_stats(topology))
            if args.out:
                save_topology(topology, args.out)
                print(f"wrote topology to {args.out}")
            return 0

        if args.topo_command == "stats":
            stats = topology_stats(_load_any_topology(args.path))
            if args.json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                _print_stats_table(stats)
            return 0

        if args.topo_command == "bench":
            return _cmd_topo_bench(args)
    except (ReproError, OSError) as exc:
        print(f"rfd-repro topo: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces the choices


def _print_stats_table(stats: Dict[str, object]) -> None:
    rows = [[key, stats[key]] for key in stats]
    print(render_table(["property", "value"], rows, title="topology stats"))


def _cmd_topo_bench(args: argparse.Namespace) -> int:
    from repro.experiments.scale import run_scale_episode
    from repro.topology.io import load_topology

    topology = None
    if args.topology_file:
        topology = load_topology(args.topology_file)
    result = run_scale_episode(
        topology=topology,
        nodes=args.nodes,
        pulses=args.pulses,
        interval=args.interval,
        seed=args.seed,
        topology_seed=args.topology_seed,
        coalesce_delivery=not args.no_coalesce,
    )
    payload = result.as_dict()
    rows = [[key, payload[key]] for key in payload]
    print(render_table(["metric", "value"], rows, title="scale episode"))
    if args.json == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote measurements to {args.json}")

    key = _scale_digest_key(result)
    if args.write_digests:
        try:
            with open(args.write_digests, "r", encoding="utf-8") as handle:
                digests = json.load(handle)
        except (OSError, json.JSONDecodeError):
            digests = {}
        digests[key] = result.digest
        with open(args.write_digests, "w", encoding="utf-8") as handle:
            json.dump(digests, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded digest for {key} in {args.write_digests}")
    if args.verify_digests:
        with open(args.verify_digests, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        if key not in expected:
            print(
                f"rfd-repro topo bench: no committed digest for {key} in "
                f"{args.verify_digests}",
                file=sys.stderr,
            )
            return 1
        if expected[key] != result.digest:
            print(
                f"rfd-repro topo bench: digest mismatch for {key}: "
                f"expected {expected[key]}, got {result.digest}",
                file=sys.stderr,
            )
            return 1
        print(f"scale digest matches the committed expectation ({key})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.lint import (
        apply_baseline,
        lint_paths,
        make_config,
        parse_baseline,
        render_baseline,
        render_json,
        render_rule_list,
        render_text,
    )

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.update_baseline and args.baseline is None:
        print(
            "rfd-repro lint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    config = make_config(
        select=tuple(args.select),
        ignore=tuple(args.ignore),
        passes=(args.lint_pass,),
        hot_profile=args.hot_profile,
    )
    if args.jobs < 1:
        print("rfd-repro lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        report = lint_paths(
            args.paths, config, cache_dir=args.cache_dir, jobs=args.jobs
        )
    except (ConfigurationError, FileNotFoundError) as exc:
        print(f"rfd-repro lint: {exc}", file=sys.stderr)
        return 2
    if report.cache_stats is not None:
        stats = report.cache_stats
        print(
            "lint cache: {}/{} local hits, {}/{} perf hits".format(
                stats["local_hits"],
                stats["local_hits"] + stats["local_misses"],
                stats["perf_hits"],
                stats["perf_hits"] + stats["perf_misses"],
            ),
            file=sys.stderr,
        )
    if args.baseline is not None:
        if args.update_baseline:
            with open(args.baseline, "w", encoding="utf-8") as handle:
                handle.write(render_baseline(report))
            print(
                f"wrote baseline with {report.finding_count} finding(s) "
                f"to {args.baseline}"
            )
            return 0
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                counts = parse_baseline(handle.read())
        except (ConfigurationError, OSError) as exc:
            print(f"rfd-repro lint: {exc}", file=sys.stderr)
            return 2
        report = apply_baseline(report, counts)
    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_info=args.show_info))
    # Exit contract: parse errors always fail; findings fail per --fail-on
    # ('warning' = any finding, 'error' = errors only, 'never' = report only).
    if report.parse_errors:
        return 1
    return 1 if report.blocking_findings(args.fail_on) else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiments,
            args.csv_dir,
            args.check_invariants,
            args.jobs,
            smoke=args.smoke,
            verify_digests=args.verify_digests,
            write_digests=args.write_digests,
            chunk_size=args.chunk_size,
            snapshot_transport=args.snapshot_transport,
        )
    if args.command == "intended":
        return _cmd_intended(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "topo":
        return _cmd_topo(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Damping parameters (RFC 2439) and the paper's Table 1 vendor presets.

A :class:`DampingParams` instance is an immutable, validated bundle of the
knobs a router operator sets: penalty increments per update kind, cut-off
and reuse thresholds, half-life, and the maximum hold-down time. Derived
quantities that the rest of the code needs constantly — the decay constant
``λ = ln2 / half_life`` and the penalty ceiling that enforces the max
hold-down — are computed once here.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigurationError


class UpdateKind(enum.Enum):
    """Classification of a received update for penalty purposes.

    The receiving router classifies each update against its current
    Adj-RIB-In entry:

    - ``WITHDRAWAL``: the peer withdrew the route,
    - ``REANNOUNCEMENT``: an announcement arriving while the rib-in entry
      is withdrawn (a route "coming back"),
    - ``ATTRIBUTE_CHANGE``: an announcement whose attributes (AS path)
      differ from the stored route,
    - ``DUPLICATE``: an announcement identical to the stored route —
      ignored entirely (no penalty, no processing).
    """

    WITHDRAWAL = "withdrawal"
    REANNOUNCEMENT = "reannouncement"
    ATTRIBUTE_CHANGE = "attribute_change"
    DUPLICATE = "duplicate"


@dataclass(frozen=True)
class DampingParams:
    """Validated route-flap-damping configuration (one router's settings).

    Attributes mirror the paper's Table 1:

    ``withdrawal_penalty``
        Penalty added per withdrawal (``P_W``; 1000 for both vendors).
    ``reannouncement_penalty``
        Penalty added per re-announcement (``P_A``; 0 Cisco, 1000 Juniper).
    ``attribute_change_penalty``
        Penalty added per attribute change (500 for both vendors).
    ``cutoff_threshold``
        Suppress the route once the penalty exceeds this (``P_cut``).
    ``reuse_threshold``
        Reuse the route once the penalty decays below this (``P_reuse``).
    ``half_life``
        Exponential-decay half-life in **seconds** (Table 1 lists minutes).
    ``max_hold_down``
        Maximum suppression duration in seconds, enforced by capping the
        penalty at ``reuse_threshold * 2^(max_hold_down / half_life)``.
    """

    withdrawal_penalty: float = 1000.0
    reannouncement_penalty: float = 0.0
    attribute_change_penalty: float = 500.0
    cutoff_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    half_life: float = 15.0 * 60.0
    max_hold_down: float = 60.0 * 60.0

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ConfigurationError(f"half_life must be > 0, got {self.half_life}")
        if self.max_hold_down <= 0:
            raise ConfigurationError(
                f"max_hold_down must be > 0, got {self.max_hold_down}"
            )
        if self.reuse_threshold <= 0:
            raise ConfigurationError(
                f"reuse_threshold must be > 0, got {self.reuse_threshold}"
            )
        if self.cutoff_threshold <= self.reuse_threshold:
            raise ConfigurationError(
                "cutoff_threshold must exceed reuse_threshold "
                f"({self.cutoff_threshold} <= {self.reuse_threshold})"
            )
        for name in (
            "withdrawal_penalty",
            "reannouncement_penalty",
            "attribute_change_penalty",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def decay_constant(self) -> float:
        """``λ`` in ``p(t) = p(t0) · exp(-λ (t - t0))``."""
        return math.log(2.0) / self.half_life

    @property
    def penalty_ceiling(self) -> float:
        """Largest penalty value ever stored.

        RFC 2439 enforces the maximum hold-down time by capping the
        penalty so it decays to the reuse threshold within
        ``max_hold_down`` seconds.
        """
        return self.reuse_threshold * math.pow(2.0, self.max_hold_down / self.half_life)

    def penalty_increment(self, kind: UpdateKind) -> float:
        """Penalty added for one update of the given kind.

        Called once per charged update — the branch ladder avoids
        rebuilding a lookup dict on every call (perflint PERF002).
        """
        if kind is UpdateKind.WITHDRAWAL:
            return self.withdrawal_penalty
        if kind is UpdateKind.REANNOUNCEMENT:
            return self.reannouncement_penalty
        if kind is UpdateKind.ATTRIBUTE_CHANGE:
            return self.attribute_change_penalty
        return 0.0

    def decay(self, penalty: float, elapsed: float) -> float:
        """Value of ``penalty`` after ``elapsed`` seconds of decay."""
        if elapsed < 0:
            raise ConfigurationError(f"elapsed must be >= 0, got {elapsed}")
        if penalty <= 0.0:
            return 0.0
        return penalty * math.exp(-self.decay_constant * elapsed)

    def time_to_reach(self, penalty: float, target: float) -> float:
        """Seconds for ``penalty`` to decay down to ``target``.

        Returns 0.0 when the penalty is already at or below the target.
        This is the paper's ``r = (1/λ) · ln(p / P_reuse)`` with a general
        target.
        """
        if target <= 0:
            raise ConfigurationError(f"target must be > 0, got {target}")
        if penalty <= target:
            return 0.0
        return math.log(penalty / target) / self.decay_constant

    def reuse_delay(self, penalty: float) -> float:
        """Seconds until a suppressed route with this penalty is reused."""
        return self.time_to_reach(penalty, self.reuse_threshold)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def with_overrides(self, **changes: float) -> "DampingParams":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, float]:
        """Flat dict of all parameters, for reports (Table 1)."""
        return {
            "withdrawal_penalty": self.withdrawal_penalty,
            "reannouncement_penalty": self.reannouncement_penalty,
            "attribute_change_penalty": self.attribute_change_penalty,
            "cutoff_threshold": self.cutoff_threshold,
            "reuse_threshold": self.reuse_threshold,
            "half_life_minutes": self.half_life / 60.0,
            "max_hold_down_minutes": self.max_hold_down / 60.0,
        }


#: Cisco default parameters (paper Table 1, left column).
CISCO_DEFAULTS = DampingParams(
    withdrawal_penalty=1000.0,
    reannouncement_penalty=0.0,
    attribute_change_penalty=500.0,
    cutoff_threshold=2000.0,
    reuse_threshold=750.0,
    half_life=15.0 * 60.0,
    max_hold_down=60.0 * 60.0,
)

#: Juniper default parameters (paper Table 1, right column).
JUNIPER_DEFAULTS = DampingParams(
    withdrawal_penalty=1000.0,
    reannouncement_penalty=1000.0,
    attribute_change_penalty=500.0,
    cutoff_threshold=3000.0,
    reuse_threshold=750.0,
    half_life=15.0 * 60.0,
    max_hold_down=60.0 * 60.0,
)

#: Vendor presets by name, for CLI and experiment configuration.
VENDOR_PRESETS: Dict[str, DampingParams] = {
    "cisco": CISCO_DEFAULTS,
    "juniper": JUNIPER_DEFAULTS,
}

"""Four-state classification of a network-wide damping episode.

Section 4.1 of the paper describes the states a damping network moves
through: **charging** (updates propagate and charge penalties),
**suppression** (quiet, but at least one noisy reuse timer pending),
**releasing** (reuse expirations trigger update waves), and **converged**.

The classifier works post-hoc on a finished run: it groups observed
update-delivery times into *bursts* separated by quiet gaps, labels the
burst(s) overlapping the flap window as charging, quiet gaps with
suppressed entries as suppression, later bursts as releasing, and the
tail as converged. The paper notes these states "may not be clearly
separated" in a large network; the classifier is a best-effort
segmentation used for annotating Figure 10-style plots and for
integration-test assertions.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple


class DampingPhase(enum.Enum):
    """One of the paper's four network-wide damping states."""

    CHARGING = "charging"
    SUPPRESSION = "suppression"
    RELEASING = "releasing"
    CONVERGED = "converged"


@dataclass(frozen=True)
class PhaseInterval:
    """A labelled ``[start, end)`` span of simulated time."""

    phase: DampingPhase
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _group_bursts(times: Sequence[float], gap: float) -> List[Tuple[float, float]]:
    """Group sorted event times into (start, end) bursts separated by more
    than ``gap`` seconds of silence."""
    bursts: List[Tuple[float, float]] = []
    start: Optional[float] = None
    prev: Optional[float] = None
    for t in times:
        if start is None:
            start = prev = t
            continue
        assert prev is not None
        if t - prev > gap:
            bursts.append((start, prev))
            start = t
        prev = t
    if start is not None and prev is not None:
        bursts.append((start, prev))
    return bursts


def suppressed_count_function(
    changes: Sequence[Tuple[float, int]],
) -> Callable[[float], int]:
    """Build ``count(t)`` from suppression-change deltas.

    ``changes`` is a time-ordered sequence of ``(time, delta)`` where
    delta is +1 when an entry becomes suppressed and -1 when it is reused.
    Returns a function giving the number of suppressed entries at any
    time.
    """
    times: List[float] = []
    counts: List[int] = []
    running = 0
    for time, delta in changes:
        running += delta
        times.append(time)
        counts.append(running)
    def count_at(t: float) -> int:
        idx = bisect.bisect_right(times, t) - 1
        return counts[idx] if idx >= 0 else 0
    return count_at


def classify_phases(
    update_times: Sequence[float],
    flap_times: Sequence[float],
    end_time: float,
    suppressed_count_at: Optional[Callable[[float], int]] = None,
    gap: float = 60.0,
) -> List[PhaseInterval]:
    """Segment a run into charging / suppression / releasing / converged.

    Parameters
    ----------
    update_times:
        Sorted delivery times of every update observed in the network.
    flap_times:
        Times of the origin's flap events (withdrawals and announcements).
    end_time:
        End of the observation window (e.g. simulation drain time).
    suppressed_count_at:
        Optional ``count(t)`` giving the number of suppressed entries at
        time ``t`` (see :func:`suppressed_count_function`). Quiet gaps
        with a zero count are classified as converged rather than
        suppression.
    gap:
        Silence longer than this separates bursts (seconds).
    """
    if not update_times:
        start = min(flap_times) if flap_times else 0.0
        return [PhaseInterval(DampingPhase.CONVERGED, start, end_time)]

    times = sorted(update_times)
    bursts = _group_bursts(times, gap)
    last_flap = max(flap_times) if flap_times else times[0]

    # Merge every burst that begins during the flap window (plus one gap of
    # slack for the final pulse's exploration) into the charging phase.
    charging_end = bursts[0][1]
    releasing_bursts: List[Tuple[float, float]] = []
    for burst_start, burst_end in bursts:
        if burst_start <= last_flap + gap or burst_start <= charging_end + gap:
            charging_end = max(charging_end, burst_end)
        else:
            releasing_bursts.append((burst_start, burst_end))

    intervals: List[PhaseInterval] = []
    charging_start = min(times[0], flap_times[0]) if flap_times else times[0]
    intervals.append(PhaseInterval(DampingPhase.CHARGING, charging_start, charging_end))

    cursor = charging_end
    for burst_start, burst_end in releasing_bursts:
        quiet_phase = DampingPhase.SUPPRESSION
        if suppressed_count_at is not None:
            midpoint = (cursor + burst_start) / 2.0
            if suppressed_count_at(midpoint) == 0:
                quiet_phase = DampingPhase.CONVERGED
        intervals.append(PhaseInterval(quiet_phase, cursor, burst_start))
        intervals.append(PhaseInterval(DampingPhase.RELEASING, burst_start, burst_end))
        cursor = burst_end

    if cursor < end_time:
        intervals.append(PhaseInterval(DampingPhase.CONVERGED, cursor, end_time))
    return intervals


def phase_durations(intervals: Sequence[PhaseInterval]) -> dict:
    """Total seconds spent in each phase across ``intervals``."""
    totals = {phase: 0.0 for phase in DampingPhase}
    for interval in intervals:
        totals[interval.phase] += interval.duration
    return totals


def releasing_fraction(intervals: Sequence[PhaseInterval]) -> float:
    """Fraction of the non-converged timeline spent releasing.

    The paper reports the releasing period accounts for ~70% of the total
    convergence time after a single pulse; this helper computes the same
    ratio from a classified run.
    """
    durations = phase_durations(intervals)
    active = (
        durations[DampingPhase.CHARGING]
        + durations[DampingPhase.SUPPRESSION]
        + durations[DampingPhase.RELEASING]
    )
    if active <= 0:
        return 0.0
    return durations[DampingPhase.RELEASING] / active

"""Lazy exponential-decay penalty bookkeeping.

RFC 2439 recommends *not* re-computing penalties on a clock tick; instead
the penalty is stored as ``(figure_of_merit, last_stamp)`` and decayed on
demand when it is next read or charged. :class:`PenaltyState` implements
exactly that, plus the ceiling that bounds suppression at the maximum
hold-down time.

One instance exists per (peer, prefix) Adj-RIB-In entry, which on a
10k-node graph means hundreds of thousands of live objects. The class is
therefore slotted and stores its charge history as two parallel
``array('d')`` columns (16 bytes per charge) instead of a list of tuple
objects; :attr:`history` materialises the tuple view on demand for the
figure plots and tests that read it.

This class is deliberately ignorant of suppression decisions — it only
does the arithmetic. :class:`repro.core.damping.DampingManager` layers the
suppress/reuse state machine on top.
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from repro.core.params import DampingParams, UpdateKind
from repro.errors import SimulationError


class PenaltyState:
    """Penalty figure-of-merit for one (peer, prefix) Adj-RIB-In entry."""

    __slots__ = ("params", "_value", "_stamp", "_hist_t", "_hist_v")

    def __init__(self, params: DampingParams, value: float = 0.0, stamp: float = 0.0) -> None:
        self.params = params
        self._value = value
        self._stamp = stamp
        self._hist_t: "array[float]" = array("d")
        self._hist_v: "array[float]" = array("d")

    @property
    def history(self) -> List[Tuple[float, float]]:
        """(time, value-after-charge) pairs, recorded at charge instants."""
        return list(zip(self._hist_t, self._hist_v))

    def value_at(self, now: float) -> float:
        """Current decayed penalty at simulated time ``now``."""
        if now < self._stamp:
            raise SimulationError(
                f"penalty queried at {now:.6f} before last stamp {self._stamp:.6f}"
            )
        return self.params.decay(self._value, now - self._stamp)

    def charge(self, now: float, kind: UpdateKind) -> float:
        """Apply one update of ``kind`` at time ``now``.

        Decays the stored value to ``now``, adds the configured increment,
        applies the hold-down ceiling, and returns the new penalty.
        """
        return self.add(now, self.params.penalty_increment(kind))

    def add(self, now: float, increment: float) -> float:
        """Apply a raw penalty increment at time ``now`` (ceiling-capped)."""
        if increment < 0:
            raise SimulationError(f"penalty increment must be >= 0, got {increment}")
        decayed = self.value_at(now)
        new_value = min(decayed + increment, self.params.penalty_ceiling)
        self._value = new_value
        self._stamp = now
        if increment > 0:
            self._hist_t.append(now)
            self._hist_v.append(new_value)
        return new_value

    def touch(self, now: float) -> float:
        """Re-anchor the stored value at ``now`` without charging.

        Useful when the caller wants subsequent reads to be cheap; returns
        the decayed value.
        """
        decayed = self.value_at(now)
        self._value = decayed
        self._stamp = now
        return decayed

    def reset(self, now: float) -> None:
        """Forget all accumulated penalty (e.g. on session reset)."""
        self._value = 0.0
        self._stamp = now

    def exceeds_cutoff(self, now: float) -> bool:
        """True when the decayed penalty is above the cut-off threshold."""
        return self.value_at(now) > self.params.cutoff_threshold

    def below_reuse(self, now: float) -> bool:
        """True when the decayed penalty is below the reuse threshold."""
        return self.value_at(now) < self.params.reuse_threshold

    def reuse_delay(self, now: float) -> float:
        """Seconds from ``now`` until the penalty decays to the reuse
        threshold (0.0 if already below)."""
        return self.params.reuse_delay(self.value_at(now))

    def sample_curve(self, start: float, end: float, step: float) -> List[Tuple[float, float]]:
        """Reconstruct the continuous penalty curve over ``[start, end]``.

        Combines the recorded charge history with analytic decay between
        charges, producing ``(time, value)`` samples every ``step``
        seconds. Used to plot the paper's Figures 3 and 7 without having
        sampled during the run.
        """
        if step <= 0:
            raise SimulationError(f"step must be > 0, got {step}")
        samples: List[Tuple[float, float]] = []
        events = [(t, v) for (t, v) in self.history if t <= end]
        t = start
        while t <= end + 1e-9:
            # Find the last charge at or before t.
            value = 0.0
            for when, after in events:
                if when <= t:
                    value = self.params.decay(after, t - when)
                else:
                    break
            samples.append((t, value))
            t += step
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PenaltyState(value={self._value:.1f}@{self._stamp:.2f})"

"""Per-router route-flap-damping state machine.

:class:`DampingManager` owns, for one router, the per-(peer, prefix)
penalty states, suppression flags, and reuse timers. The hosting BGP
router calls :meth:`record_update` for every received update and consults
:meth:`is_suppressed` in its decision process; the manager calls back into
the router when a reuse timer fires so the router can re-run path
selection (and report whether the expiry was *noisy* — i.e. changed the
Loc-RIB — which is the paper's key observable).

Charging can be gated by a filter (RCN history or the selective-damping
heuristic): the router decides *whether* an update charges, the manager
does the bookkeeping either way.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.params import DampingParams, UpdateKind
from repro.core.penalty import PenaltyState
from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.timers import Timer

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer

#: Callback fired when a reuse timer expires: (peer, prefix) -> noisy?
ReuseCallback = Callable[[str, str], bool]

EntryKey = Tuple[str, str]


@dataclass
class SuppressionRecord:
    """One completed (or ongoing) suppression interval for an entry."""

    peer: str
    prefix: str
    started: float
    penalty_at_start: float
    ended: Optional[float] = None
    noisy_reuse: Optional[bool] = None
    #: Times at which the reuse timer was pushed back by further charges
    #: while suppressed (secondary charging shows up here).
    recharges: List[float] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started


@dataclass
class ReuseEvent:
    """A reuse-timer expiry and its observed effect."""

    __slots__ = ("time", "peer", "prefix", "noisy")

    time: float
    peer: str
    prefix: str
    noisy: bool


@dataclass
class UpdateOutcome:
    """What :meth:`DampingManager.record_update` did with one update.

    Allocated once per processed update — slotted so the hot path does
    not grow a ``__dict__`` per outcome (perflint PERF006).
    """

    __slots__ = (
        "penalty",
        "charged",
        "suppressed",
        "newly_suppressed",
        "rescheduled_reuse",
    )

    penalty: float
    charged: bool
    suppressed: bool
    newly_suppressed: bool
    rescheduled_reuse: bool


class _Entry:
    """Damping state for one (peer, prefix)."""

    __slots__ = ("penalty", "suppressed", "timer", "current_record", "trace_timer")

    def __init__(self, params: DampingParams) -> None:
        self.penalty = PenaltyState(params)
        self.suppressed = False
        self.timer: Optional[Timer] = None
        self.current_record: Optional[SuppressionRecord] = None
        #: Trace-record id of whatever last (re)armed the reuse timer
        #: (``reuse_set`` / ``reuse_postponed``) — the causal parent of
        #: the eventual ``reuse_expired`` record.
        self.trace_timer: Optional[int] = None


class DampingManager:
    """Route-flap-damping bookkeeping for one router.

    Parameters
    ----------
    engine:
        The simulation engine (timers, current time).
    params:
        This router's damping configuration.
    owner:
        The hosting router's name (used in traces and errors).
    on_reuse:
        Called when a reuse timer fires, *after* the entry is marked
        reusable. Must return ``True`` if the expiry changed the router's
        Loc-RIB (a *noisy* reuse) and ``False`` otherwise (*silent*).
    """

    def __init__(
        self,
        engine: Engine,
        params: DampingParams,
        owner: str,
        on_reuse: ReuseCallback,
    ) -> None:
        self._engine = engine
        self.params = params
        self.owner = owner
        self._on_reuse = on_reuse
        self._entries: Dict[EntryKey, _Entry] = {}
        #: Completed and ongoing suppression intervals, in start order.
        self.suppressions: List[SuppressionRecord] = []
        #: Every reuse-timer expiry, in time order.
        self.reuse_events: List[ReuseEvent] = []
        #: Observers notified on suppression start/end:
        #: f(time, peer, prefix, suppressed_now).
        self.suppression_observers: List[Callable[[float, str, str, bool], None]] = []
        #: Causal tracer observing this manager (set by Tracer.attach).
        self.trace: Optional["Tracer"] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def entry_keys(self) -> List[EntryKey]:
        return list(self._entries)

    def is_suppressed(self, peer: str, prefix: str) -> bool:
        entry = self._entries.get((peer, prefix))
        return entry is not None and entry.suppressed

    def suppressed_entries(self) -> List[EntryKey]:
        """All currently suppressed (peer, prefix) pairs."""
        return [key for key, entry in self._entries.items() if entry.suppressed]

    def penalty_value(self, peer: str, prefix: str, now: Optional[float] = None) -> float:
        """Current decayed penalty for an entry (0.0 if never charged)."""
        entry = self._entries.get((peer, prefix))
        if entry is None:
            return 0.0
        return entry.penalty.value_at(self._engine.now if now is None else now)

    def penalty_state(self, peer: str, prefix: str) -> PenaltyState:
        """The raw :class:`PenaltyState` (created on demand) — used by
        metrics to reconstruct penalty curves."""
        return self._entry(peer, prefix).penalty

    def reuse_timer_expiry(self, peer: str, prefix: str) -> Optional[float]:
        """Absolute expiry time of the entry's pending reuse timer."""
        entry = self._entries.get((peer, prefix))
        if entry is None or entry.timer is None or not entry.timer.is_pending:
            return None
        return entry.timer.expiry

    def pending_reuse_timers(self) -> List[Tuple[EntryKey, float]]:
        """All pending reuse timers as ((peer, prefix), expiry) pairs."""
        result: List[Tuple[EntryKey, float]] = []
        for key, entry in self._entries.items():
            if entry.timer is not None and entry.timer.is_pending:
                assert entry.timer.expiry is not None
                result.append((key, entry.timer.expiry))
        return result

    def recharge_count(self) -> int:
        """Total reuse-timer postponements recorded while suppressed —
        this router's footprint of the paper's secondary charging."""
        return sum(len(record.recharges) for record in self.suppressions)

    def adopt_observers(self, predecessor: "DampingManager") -> None:
        """Carry observer/tracer wiring over from the manager this one
        replaces mid-episode.

        A router crash destroys its damping *state* (penalties,
        suppressions, reuse timers die with the control plane), but the
        metrics collector and causal tracer attached to the predecessor
        must keep observing the fresh instance — otherwise a restarted
        router's suppressions would silently vanish from digests.
        """
        self.suppression_observers.extend(predecessor.suppression_observers)
        self.trace = predecessor.trace

    def cancel_all_timers(self) -> int:
        """Disarm every pending reuse timer; returns how many were pending.

        Quiesces the manager before it is discarded or replaced (e.g.
        :meth:`~repro.bgp.router.BgpRouter.reset_damping` between warm-up
        and the measured episode). Without this, a replaced manager's
        armed timers keep firing into state nobody reads — the runtime
        shape of timerlint's TIM001 leak.
        """
        cancelled = 0
        for entry in self._entries.values():
            if entry.timer is not None and entry.timer.is_pending:
                entry.timer.cancel()
                cancelled += 1
        return cancelled

    # ------------------------------------------------------------------
    # update processing
    # ------------------------------------------------------------------

    def record_update(
        self,
        peer: str,
        prefix: str,
        kind: UpdateKind,
        charge: bool = True,
    ) -> UpdateOutcome:
        """Account for one received update.

        ``charge=False`` (set by an RCN or selective filter upstream)
        skips the penalty increment but still evaluates suppression
        against the decayed penalty — matching the paper's "the filter
        only prevents some updates from reaching the damping algorithm".
        """
        now = self._engine.now
        entry = self._entry(peer, prefix)
        increment = self.params.penalty_increment(kind) if charge else 0.0
        if charge:
            # add() with the increment computed above — charge() would
            # look the increment up a second time for the same update.
            penalty = entry.penalty.add(now, increment)
        else:
            penalty = entry.penalty.touch(now)

        trace = self.trace
        charge_rid: Optional[int] = None
        if trace is not None:
            charge_rid = trace.emit(
                "charge",
                now,
                node=self.owner,
                cause=trace.context,
                peer=peer,
                prefix=prefix,
                kind=kind.name.lower(),
                charged=charge,
                penalty=round(penalty, 6),
            )

        newly_suppressed = False
        rescheduled = False
        if entry.suppressed:
            # Only an update that actually raised the penalty can push the
            # reuse timer out; zero-increment kinds (e.g. Cisco
            # re-announcements) leave the existing schedule untouched.
            if increment > 0.0 and penalty > self.params.reuse_threshold:
                # Push the reuse timer out to the new decay horizon —
                # this is the "recharge" that secondary charging exploits.
                delay = self.params.reuse_delay(penalty)
                self._ensure_timer(peer, prefix, entry).reschedule(delay)
                rescheduled = True
                if entry.current_record is not None:
                    entry.current_record.recharges.append(now)
                if trace is not None:
                    entry.trace_timer = trace.emit(
                        "reuse_postponed",
                        now,
                        node=self.owner,
                        cause=charge_rid,
                        peer=peer,
                        prefix=prefix,
                        expiry=round(now + delay, 6),
                    )
        elif penalty > self.params.cutoff_threshold:
            self._suppress(peer, prefix, entry, penalty, cause_id=charge_rid)
            newly_suppressed = True

        return UpdateOutcome(
            penalty=penalty,
            charged=charge,
            suppressed=entry.suppressed,
            newly_suppressed=newly_suppressed,
            rescheduled_reuse=rescheduled,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _entry(self, peer: str, prefix: str) -> _Entry:
        key = (peer, prefix)
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(self.params)
            self._entries[key] = entry
        return entry

    def _ensure_timer(self, peer: str, prefix: str, entry: _Entry) -> Timer:
        if entry.timer is None:
            # functools.partial rather than a lambda so idle managers stay
            # picklable for warm-state snapshots.
            entry.timer = Timer(
                self._engine,
                functools.partial(self._reuse_fired, peer, prefix),
                # One allocation per (peer, prefix) lifetime, not per event.
                name=f"reuse:{self.owner}:{peer}:{prefix}",  # perflint: disable=PERF004
                actor=self.owner,
                tag="reuse",
            )
        return entry.timer

    def _suppress(
        self,
        peer: str,
        prefix: str,
        entry: _Entry,
        penalty: float,
        cause_id: Optional[int] = None,
    ) -> None:
        now = self._engine.now
        entry.suppressed = True
        # SuppressionRecord carries defaulted fields and a list factory, so
        # it cannot take __slots__ on this Python; suppressions are rare
        # relative to charges, so the dict cost is accepted.
        record = SuppressionRecord(  # perflint: disable=PERF006
            peer=peer, prefix=prefix, started=now, penalty_at_start=penalty
        )
        entry.current_record = record
        self.suppressions.append(record)
        delay = self.params.reuse_delay(penalty)
        if delay <= 0:
            raise SimulationError(
                f"{self.owner}: suppression with non-positive reuse delay "
                f"(penalty {penalty}, reuse {self.params.reuse_threshold})"
            )
        self._ensure_timer(peer, prefix, entry).reschedule(delay)
        trace = self.trace
        if trace is not None:
            suppress_rid = trace.emit(
                "suppress",
                now,
                node=self.owner,
                cause=cause_id,
                peer=peer,
                prefix=prefix,
                penalty=round(penalty, 6),
            )
            entry.trace_timer = trace.emit(
                "reuse_set",
                now,
                node=self.owner,
                cause=suppress_rid,
                peer=peer,
                prefix=prefix,
                expiry=round(now + delay, 6),
            )
        for observer in self.suppression_observers:
            observer(now, peer, prefix, True)

    def _reuse_fired(self, peer: str, prefix: str) -> None:
        now = self._engine.now
        entry = self._entries[(peer, prefix)]
        if not entry.suppressed:
            return
        entry.suppressed = False
        for observer in self.suppression_observers:
            observer(now, peer, prefix, False)
        trace = self.trace
        expired_rid: Optional[int] = None
        if trace is not None:
            expired_rid = trace.emit(
                "reuse_expired",
                now,
                node=self.owner,
                cause=entry.trace_timer,
                peer=peer,
                prefix=prefix,
            )
            entry.trace_timer = None
            # Everything the reuse triggers (re-selection, sends, and —
            # downstream — the secondary charges) descends from this record.
            trace.set_context(expired_rid)
        noisy = bool(self._on_reuse(peer, prefix))
        if trace is not None and expired_rid is not None:
            trace.amend(expired_rid, noisy=noisy)
        self.reuse_events.append(ReuseEvent(time=now, peer=peer, prefix=prefix, noisy=noisy))
        if entry.current_record is not None:
            entry.current_record.ended = now
            entry.current_record.noisy_reuse = noisy
            entry.current_record = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DampingManager({self.owner!r}, entries={len(self._entries)}, "
            f"suppressed={len(self.suppressed_entries())})"
        )

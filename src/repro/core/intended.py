"""The paper's Section 3: damping's *intended* behaviour in closed form.

The intended view treats the network as a single damping router (the
``ispAS``) fed directly by the flapping origin. Given the flap pattern and
the damping parameters, it predicts:

- the penalty at the ISP after each flap event,
  ``p(k) = p(k-1) · e^{-λ w(k)} + f(k)``,
- whether and at which pulse suppression triggers,
- the reuse delay after the final announcement,
  ``r = (1/λ) · ln(p / P_reuse)``,
- the intended convergence time ``t = r + t_up`` (or just ``t_up`` when
  suppression never triggers).

This produces the "Full Damping (calculation)" series of Figures 8, 13,
and 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.params import DampingParams, UpdateKind
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FlapEvent:
    """One event of the origin's flap pattern as seen by the ISP."""

    time: float
    kind: UpdateKind


@dataclass(frozen=True)
class IntendedPrediction:
    """Closed-form prediction for one pulse count."""

    pulses: int
    penalty_at_final: float
    suppressed: bool
    #: 1-based pulse index whose withdrawal first triggered suppression,
    #: or ``None`` when suppression never triggers.
    suppression_pulse: Optional[int]
    #: Seconds from the final announcement until the route is reusable.
    reuse_delay: float
    #: ``reuse_delay + t_up`` (or ``t_up`` when not suppressed).
    convergence_time: float


def pulse_events(pulses: int, flap_interval: float) -> List[FlapEvent]:
    """The event sequence for ``pulses`` withdrawal+announcement pairs.

    A *pulse* is a withdrawal followed ``flap_interval`` seconds later by
    a re-announcement; consecutive events are ``flap_interval`` apart, so
    consecutive withdrawals are ``2 · flap_interval`` apart (the paper's
    "flapping interval 60 seconds" methodology). The final event is always
    an announcement.
    """
    if pulses < 0:
        raise ConfigurationError(f"pulses must be >= 0, got {pulses}")
    if flap_interval <= 0:
        raise ConfigurationError(f"flap_interval must be > 0, got {flap_interval}")
    events: List[FlapEvent] = []
    for i in range(pulses):
        start = i * 2.0 * flap_interval
        events.append(FlapEvent(time=start, kind=UpdateKind.WITHDRAWAL))
        events.append(
            FlapEvent(time=start + flap_interval, kind=UpdateKind.REANNOUNCEMENT)
        )
    return events


class IntendedBehaviorModel:
    """Section 3's analytical model of a single damping router.

    Parameters
    ----------
    params:
        The ISP's damping configuration.
    flap_interval:
        Seconds between consecutive flap events (default 60, as in the
        paper's simulations).
    tup:
        The normal (damping-free) BGP convergence time ``t_up`` after a
        previously-unreachable destination is announced. The paper
        observes this is seconds-to-minutes and dominated by ``r``; it is
        a configurable constant here, usually measured from a no-damping
        run of the same topology.
    """

    def __init__(
        self,
        params: DampingParams,
        flap_interval: float = 60.0,
        tup: float = 30.0,
    ) -> None:
        if flap_interval <= 0:
            raise ConfigurationError(f"flap_interval must be > 0, got {flap_interval}")
        if tup < 0:
            raise ConfigurationError(f"tup must be >= 0, got {tup}")
        self.params = params
        self.flap_interval = flap_interval
        self.tup = tup

    # ------------------------------------------------------------------
    # penalty evolution
    # ------------------------------------------------------------------

    def penalty_trajectory(
        self, events: Iterable[FlapEvent]
    ) -> List[Tuple[float, float, bool]]:
        """Penalty after each event as ``(time, penalty, suppressed)``.

        Implements ``p(k) = p(k-1) e^{-λ w(k)} + f(k)`` with the hold-down
        ceiling, and tracks the ISP's suppression flag: once the penalty
        exceeds the cut-off the entry stays suppressed until the penalty
        decays below the reuse threshold.
        """
        params = self.params
        trajectory: List[Tuple[float, float, bool]] = []
        penalty = 0.0
        stamp = 0.0
        suppressed = False
        for event in events:
            decayed = params.decay(penalty, event.time - stamp)
            if suppressed and decayed < params.reuse_threshold:
                suppressed = False
            penalty = min(
                decayed + params.penalty_increment(event.kind), params.penalty_ceiling
            )
            stamp = event.time
            if not suppressed and penalty > params.cutoff_threshold:
                suppressed = True
            trajectory.append((event.time, penalty, suppressed))
        return trajectory

    def penalty_after_pulses(self, pulses: int) -> float:
        """Penalty at the ISP immediately after the final announcement."""
        events = pulse_events(pulses, self.flap_interval)
        if not events:
            return 0.0
        return self.penalty_trajectory(events)[-1][1]

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------

    def predict(self, pulses: int) -> IntendedPrediction:
        """Intended convergence behaviour for ``pulses`` pulses."""
        events = pulse_events(pulses, self.flap_interval)
        if not events:
            return IntendedPrediction(
                pulses=0,
                penalty_at_final=0.0,
                suppressed=False,
                suppression_pulse=None,
                reuse_delay=0.0,
                convergence_time=0.0,
            )
        trajectory = self.penalty_trajectory(events)
        final_time, final_penalty, suppressed = trajectory[-1]
        suppression_pulse: Optional[int] = None
        for index, (_, _, flag) in enumerate(trajectory):
            if flag:
                suppression_pulse = index // 2 + 1
                break
        reuse_delay = self.params.reuse_delay(final_penalty) if suppressed else 0.0
        convergence = reuse_delay + self.tup if suppressed else self.tup
        del final_time
        return IntendedPrediction(
            pulses=pulses,
            penalty_at_final=final_penalty,
            suppressed=suppressed,
            suppression_pulse=suppression_pulse,
            reuse_delay=reuse_delay,
            convergence_time=convergence,
        )

    def sweep(self, pulse_counts: Iterable[int]) -> List[IntendedPrediction]:
        """Predictions for a series of pulse counts (a figure's x-axis)."""
        return [self.predict(n) for n in pulse_counts]

    def critical_pulse_count(self, max_pulses: int = 64) -> Optional[int]:
        """Smallest pulse count that triggers suppression at the ISP
        (``n = 3`` with Cisco defaults and 60 s intervals)."""
        for n in range(1, max_pulses + 1):
            if self.predict(n).suppressed:
                return n
        return None

"""The paper's primary contribution: route flap damping, its analytical
"intended behaviour" model, RCN-enhanced damping, and the four-state
classification of network-wide damping dynamics.

Public surface:

- :class:`DampingParams` with :data:`CISCO_DEFAULTS` / :data:`JUNIPER_DEFAULTS`
  (the paper's Table 1),
- :class:`PenaltyState` — lazy exponential-decay penalty bookkeeping,
- :class:`DampingManager` — per-router suppression/reuse state machine,
- :class:`RootCause` / :class:`RootCauseHistory` — RCN filtering,
- :class:`SelectiveDampingFilter` — the Mao et al. comparator,
- :mod:`repro.core.intended` — Section 3 closed-form model,
- :mod:`repro.core.states` — charging/suppression/releasing/converged
  classification of a finished run.
"""

from repro.core.damping import DampingManager, ReuseEvent, SuppressionRecord
from repro.core.intended import IntendedBehaviorModel, IntendedPrediction
from repro.core.params import (
    CISCO_DEFAULTS,
    JUNIPER_DEFAULTS,
    DampingParams,
    UpdateKind,
)
from repro.core.penalty import PenaltyState
from repro.core.rcn import RootCause, RootCauseHistory
from repro.core.selective import SelectiveDampingFilter
from repro.core.states import DampingPhase, PhaseInterval, classify_phases

__all__ = [
    "CISCO_DEFAULTS",
    "JUNIPER_DEFAULTS",
    "DampingManager",
    "DampingParams",
    "DampingPhase",
    "IntendedBehaviorModel",
    "IntendedPrediction",
    "PenaltyState",
    "PhaseInterval",
    "ReuseEvent",
    "RootCause",
    "RootCauseHistory",
    "SelectiveDampingFilter",
    "SuppressionRecord",
    "UpdateKind",
    "classify_phases",
]

"""Root Cause Notification (RCN) for damping.

The paper's fix (Section 6): attach to every update the *root cause* that
triggered it — the identity of the flapping link, whether it went down or
up, and a per-link sequence number. A router then charges its damping
penalty only for root causes it has not seen before from that peer, so
path-exploration updates and reuse-triggered updates (which replay an
already-seen cause) stop charging penalties, eliminating false suppression
and secondary charging.

Two pieces live here:

- :class:`RootCause` — the immutable attribute carried by updates,
- :class:`RootCauseHistory` — the per-peer bounded history and the
  ``should_charge`` filter placed in front of the damping algorithm.

The filter only gates *penalty increments*; every update is still handed
to the BGP decision process unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RootCause:
    """``RC = {[u v], status, seq_num}`` from the paper.

    ``link`` is the root-cause link as an ordered ``(u, v)`` pair —
    ``u`` is the node that detected the event. ``status`` is ``"down"``
    or ``"up"``. ``seq`` orders causes generated at the same link.
    """

    link: Tuple[str, str]
    status: str
    seq: int

    def __post_init__(self) -> None:
        if self.status not in ("down", "up"):
            raise ConfigurationError(f"status must be 'down' or 'up', got {self.status!r}")
        if self.seq < 0:
            raise ConfigurationError(f"seq must be >= 0, got {self.seq}")

    @property
    def key(self) -> Tuple[Tuple[str, str], str, int]:
        """Hashable identity used by histories."""
        return (self.link, self.status, self.seq)

    def __str__(self) -> str:
        return f"{{[{self.link[0]} {self.link[1]}], {self.status}, {self.seq}}}"


class RootCauseGenerator:
    """Stamps fresh root causes for events detected at one link.

    The node adjacent to a flapping link owns one generator and calls
    :meth:`next_cause` each time the link changes state.
    """

    def __init__(self, link: Tuple[str, str]) -> None:
        self._link = link
        self._seq = 0

    def next_cause(self, status: str) -> RootCause:
        """Produce the next root cause for a ``status`` change."""
        self._seq += 1
        return RootCause(link=self._link, status=status, seq=self._seq)

    @property
    def last_seq(self) -> int:
        return self._seq


class RootCauseHistory:
    """Per-peer bounded history of seen root causes.

    ``should_charge(peer, cause)`` returns ``True`` exactly once per
    (peer, cause) pair — the first time the cause is seen — and records
    it. The history is bounded (FIFO eviction) because the paper
    specifies "a recent history"; the default of 1024 entries is far more
    than a single-prefix simulation ever produces, so eviction only
    matters under adversarial workloads.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._seen: Dict[str, "OrderedDict[Tuple[Tuple[str, str], str, int], None]"] = {}
        self.filtered_count = 0
        self.charged_count = 0

    def should_charge(self, peer: str, cause: Optional[RootCause]) -> bool:
        """Decide whether an update from ``peer`` with ``cause`` attached
        should increase the damping penalty.

        Updates without a root cause (mixed/partial deployment) always
        charge, preserving plain-damping behaviour for legacy updates.
        """
        if cause is None:
            self.charged_count += 1
            return True
        history = self._seen.setdefault(peer, OrderedDict())
        if cause.key in history:
            history.move_to_end(cause.key)
            self.filtered_count += 1
            return False
        history[cause.key] = None
        while len(history) > self._capacity:
            history.popitem(last=False)
        self.charged_count += 1
        return True

    def has_seen(self, peer: str, cause: RootCause) -> bool:
        """True if ``cause`` is currently recorded for ``peer``."""
        history = self._seen.get(peer)
        return history is not None and cause.key in history

    def peer_history_size(self, peer: str) -> int:
        return len(self._seen.get(peer, ()))

    def clear(self) -> None:
        self._seen.clear()
        self.filtered_count = 0
        self.charged_count = 0

"""Selective route flap damping — the Mao et al. (2002) comparator.

The paper contrasts RCN with "selective route flap damping": each
announcement carries a *relative preference* compared with the sender's
previous announcement, and the receiver skips the penalty when the
update looks like path exploration. The heuristic: during path
exploration after a failure, a router announces monotonically *less
preferred* paths (longer AS paths); a genuine flap shows up as a
withdrawal or as a preference improvement back to the original path.

The paper notes this heuristic "does not detect all path exploration
updates and does not address the problem of secondary charging" — we
implement it faithfully, including those blind spots, so the comparison
benches show the gap RCN closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.params import UpdateKind


@dataclass(frozen=True)
class RelativePreference:
    """Sender-attached comparison with the previous announcement.

    ``direction`` is ``-1`` (worse than the path announced before),
    ``0`` (first announcement / incomparable), or ``+1`` (better).
    ``path_length`` carries the announced AS-path length so receivers can
    sanity-check the claim.
    """

    __slots__ = ("direction", "path_length")

    direction: int
    path_length: int


class SelectiveDampingFilter:
    """Receiver-side penalty filter for selective damping.

    ``should_charge`` returns ``False`` for announcements tagged as
    *worse* than their predecessor (the path-exploration signature) and
    ``True`` for everything else: withdrawals, improvements, and first
    announcements. Reuse-triggered announcements typically arrive as
    *improvements* (the suppressed best path coming back), so they are
    charged — this is exactly the secondary-charging blind spot the paper
    points out.
    """

    def __init__(self) -> None:
        self.filtered_count = 0
        self.charged_count = 0
        # Last seen path length per (peer,) to validate sender claims.
        self._last_len: Dict[str, Optional[int]] = {}

    def should_charge(
        self,
        peer: str,
        kind: UpdateKind,
        preference: Optional[RelativePreference],
    ) -> bool:
        """Decide whether this update should increase the penalty."""
        if kind is UpdateKind.WITHDRAWAL:
            # Withdrawals are never exploration artefacts at the sender —
            # they always charge.
            self._last_len[peer] = None
            self.charged_count += 1
            return True
        if preference is None:
            self.charged_count += 1
            self._record(peer, None)
            return True
        exploring = preference.direction < 0 and self._is_consistent(peer, preference)
        self._record(peer, preference.path_length)
        if exploring:
            self.filtered_count += 1
            return False
        self.charged_count += 1
        return True

    def _is_consistent(self, peer: str, preference: RelativePreference) -> bool:
        """Check the sender's 'worse' claim against observed path lengths."""
        last = self._last_len.get(peer)
        if last is None:
            return True
        return preference.path_length >= last

    def _record(self, peer: str, path_length: Optional[int]) -> None:
        self._last_len[peer] = path_length

    def clear(self) -> None:
        self._last_len.clear()
        self.filtered_count = 0
        self.charged_count = 0


def compare_paths(previous_length: Optional[int], new_length: int) -> RelativePreference:
    """Sender-side helper: build the relative-preference tag for a new
    announcement given the previously announced path length."""
    if previous_length is None:
        return RelativePreference(direction=0, path_length=new_length)
    if new_length > previous_length:
        return RelativePreference(direction=-1, path_length=new_length)
    if new_length < previous_length:
        return RelativePreference(direction=1, path_length=new_length)
    return RelativePreference(direction=0, path_length=new_length)

"""Plain-text rendering of tables and series for the benchmark harness.

Every benchmark prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent and
dependency-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_series(
    series: Sequence[Tuple[float, float]],
    title: Optional[str] = None,
    width: int = 50,
    max_points: int = 40,
) -> str:
    """Render a (time, value) series as a labelled ASCII bar chart.

    Long series are downsampled by max-pooling so bursts stay visible.
    """
    if not series:
        return f"{title or 'series'}: (empty)"
    points = _downsample(series, max_points)
    peak = max(v for _, v in points)
    scale = (width / peak) if peak > 0 else 0.0
    lines: List[str] = []
    if title:
        lines.append(title)
    for time, value in points:
        bar = "#" * int(round(value * scale))
        lines.append(f"{time:>10.1f}s |{bar:<{width}}| {value:g}")
    return "\n".join(lines)


def _downsample(
    series: Sequence[Tuple[float, float]], max_points: int
) -> List[Tuple[float, float]]:
    if len(series) <= max_points:
        return list(series)
    chunk = len(series) / max_points
    result: List[Tuple[float, float]] = []
    for i in range(max_points):
        lo = int(i * chunk)
        hi = max(lo + 1, int((i + 1) * chunk))
        window = series[lo:hi]
        time = window[0][0]
        value = max(v for _, v in window)
        result.append((time, value))
    return result


def render_comparison(
    label_a: str,
    series_a: Sequence[Tuple[int, float]],
    label_b: str,
    series_b: Sequence[Tuple[int, float]],
    x_label: str = "pulses",
    title: Optional[str] = None,
) -> str:
    """Two series over the same integer x-axis, side by side."""
    xs = sorted({x for x, _ in series_a} | {x for x, _ in series_b})
    map_a = dict(series_a)
    map_b = dict(series_b)
    rows = [
        [x, map_a.get(x, float("nan")), map_b.get(x, float("nan"))] for x in xs
    ]
    return render_table([x_label, label_a, label_b], rows, title=title)

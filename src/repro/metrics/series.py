"""Time-series utilities for figure reproduction.

The paper's Figure 10 plots update counts in 5-second bins and the
number-of-links-being-suppressed step function; these helpers turn raw
event timestamps and ±1 deltas into those series.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def bin_counts(
    times: Sequence[float],
    bin_width: float,
    start: float = 0.0,
    end: float = None,  # type: ignore[assignment]
) -> List[Tuple[float, int]]:
    """Count events per ``bin_width``-second bin over ``[start, end)``.

    Returns ``(bin_start, count)`` for every bin, including empty ones,
    so the series plots with a continuous x-axis.
    """
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be > 0, got {bin_width}")
    if end is None:
        end = max(times) + bin_width if times else start + bin_width
    if end <= start:
        return []
    bin_count = int((end - start) / bin_width) + 1
    counts = [0] * bin_count
    for t in times:
        if t < start or t >= start + bin_count * bin_width:
            continue
        counts[int((t - start) / bin_width)] += 1
    return [(start + i * bin_width, counts[i]) for i in range(bin_count)]


def to_step_series(
    deltas: Sequence[Tuple[float, int]], initial: int = 0
) -> List[Tuple[float, int]]:
    """Cumulative step function from time-ordered ``(time, delta)`` pairs."""
    series: List[Tuple[float, int]] = []
    running = initial
    for time, delta in deltas:
        running += delta
        if series and abs(series[-1][0] - time) < 1e-12:
            series[-1] = (time, running)
        else:
            series.append((time, running))
    return series


def step_series_at(series: Sequence[Tuple[float, int]], time: float, initial: int = 0) -> int:
    """Value of a step series at ``time`` (``initial`` before the first step)."""
    times = [t for t, _ in series]
    idx = bisect.bisect_right(times, time) - 1
    if idx < 0:
        return initial
    return series[idx][1]


def sample_step_series(
    series: Sequence[Tuple[float, int]],
    start: float,
    end: float,
    step: float,
    initial: int = 0,
) -> List[Tuple[float, int]]:
    """Sample a step series on a regular grid (for plotting/reporting)."""
    if step <= 0:
        raise ConfigurationError(f"step must be > 0, got {step}")
    samples: List[Tuple[float, int]] = []
    t = start
    while t <= end + 1e-9:
        samples.append((t, step_series_at(series, t, initial)))
        t += step
    return samples


def series_peak(series: Sequence[Tuple[float, int]]) -> Tuple[float, int]:
    """The (time, value) of the maximum of a series (first peak wins)."""
    if not series:
        return (0.0, 0)
    best = series[0]
    for point in series[1:]:
        if point[1] > best[1]:
            best = point
    return best

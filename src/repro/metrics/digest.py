"""Stable digests of a run's observable behaviour.

A simulation is only trustworthy as an experiment substrate if it is
bit-for-bit reproducible: same seed, same code → same behaviour. A
:func:`run_digest` hashes everything externally observable about an
episode (update deliveries with microsecond-rounded timestamps,
suppression state changes, reuse expiries), giving regression tests a
single value to pin and making "did this refactor change behaviour?"
a one-line check.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.metrics.collector import MetricsCollector


def _round_time(value: float) -> int:
    """Microsecond-rounded integer timestamp (stable across platforms)."""
    return int(round(value * 1_000_000))


def collector_fingerprint_lines(collector: MetricsCollector) -> List[str]:
    """The canonical line-per-event rendering that gets hashed."""
    lines: List[str] = []
    for update in collector.updates:
        kind = "W" if update.is_withdrawal else "A"
        lines.append(
            f"U {_round_time(update.time)} {update.src}>{update.dst} "
            f"{update.prefix} {kind}"
        )
    for time, delta, router, peer in collector.suppression_changes:
        sign = "+" if delta > 0 else "-"
        lines.append(f"S {_round_time(time)} {router}:{peer} {sign}")
    for event in collector.reuse_events():
        noise = "noisy" if event.noisy else "silent"
        lines.append(f"R {_round_time(event.time)} {event.peer}:{event.prefix} {noise}")
    # Drop lines only appear when something was dropped, so fault-free
    # runs keep their historical digests byte-identical.
    for drop in collector.drops:
        kind = "W" if drop.is_withdrawal else "A"
        lines.append(
            f"D {_round_time(drop.time)} {drop.src}>{drop.dst} "
            f"{drop.prefix} {kind} {drop.reason}"
        )
    return lines


def run_digest(collector: MetricsCollector) -> str:
    """Hex SHA-256 digest of the run observed by ``collector``."""
    hasher = hashlib.sha256()
    for line in collector_fingerprint_lines(collector):
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()

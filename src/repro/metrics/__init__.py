"""Instrumentation: the paper's two headline metrics (convergence time,
message count) plus the time series its figures plot (update counts in
5-second bins, damped-link counts, penalty traces, silent/noisy reuse
classification)."""

from repro.metrics.collector import MetricsCollector, UpdateRecord
from repro.metrics.convergence import ConvergenceSummary, summarize_convergence
from repro.metrics.series import bin_counts, step_series_at, to_step_series

__all__ = [
    "ConvergenceSummary",
    "MetricsCollector",
    "UpdateRecord",
    "bin_counts",
    "step_series_at",
    "summarize_convergence",
    "to_step_series",
]

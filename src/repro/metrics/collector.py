"""The metrics collector.

One :class:`MetricsCollector` observes a whole simulation: it hooks the
network's message-delivery path (the paper counts "the total number of
updates observed in the network"), and each damping router's
suppression-state changes (the paper's "damped link count" — a node
suppressing routes from a neighbour counts as one damped link).

The collector is attached at the start of the *measured* episode — after
warm-up — so warm-up traffic never pollutes the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.messages import UpdateMessage
from repro.bgp.router import BgpRouter
from repro.core.damping import ReuseEvent
from repro.net.message import Message
from repro.net.network import Network
from repro.metrics.series import bin_counts, step_series_at, to_step_series
from repro.sim.events import ScheduleTie


@dataclass(frozen=True)
class UpdateRecord:
    """One observed update delivery."""

    time: float
    src: str
    dst: str
    is_withdrawal: bool
    prefix: str = ""


@dataclass(frozen=True)
class DropRecord:
    """One observed message drop (down link, loss impairment, dead node)."""

    time: float
    src: str
    dst: str
    reason: str
    is_withdrawal: bool
    prefix: str = ""


class MetricsCollector:
    """Network-wide observation of one simulation episode."""

    def __init__(self) -> None:
        self.updates: List[UpdateRecord] = []
        #: Every dropped message (lost, on a down link, or addressed to a
        #: crashed node), in drop order.
        self.drops: List[DropRecord] = []
        #: Time-ordered ``(time, delta, router, peer)`` suppression changes
        #: (+1 on suppress, -1 on reuse).
        self.suppression_changes: List[Tuple[float, int, str, str]] = []
        #: Same-instant same-router event ties recorded by the engine's
        #: opt-in schedule-race detector (empty unless enabled).
        self.schedule_ties: List[ScheduleTie] = []
        self._routers: List[BgpRouter] = []
        self._network: Optional[Network] = None
        self._attached = False
        self.attach_time: float = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, network: Network, routers: Iterable[BgpRouter]) -> None:
        """Start observing ``network`` and the given routers' damping."""
        if self._attached:
            raise RuntimeError("collector already attached")
        self._attached = True
        self._network = network
        self.attach_time = network.engine.now
        network.add_delivery_hook(self._on_delivery)
        network.add_drop_hook(self._on_drop)
        if network.engine.tie_detection_enabled:
            network.engine.add_tie_observer(self.schedule_ties.append)
        for router in routers:
            self._routers.append(router)
            if router.damping is not None:
                router.damping.suppression_observers.append(
                    self._make_suppression_observer(router.name)
                )

    def _make_suppression_observer(self, router_name: str):
        def observer(time: float, peer: str, prefix: str, suppressed: bool) -> None:
            del prefix
            delta = 1 if suppressed else -1
            self.suppression_changes.append((time, delta, router_name, peer))

        return observer

    def _on_delivery(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, UpdateMessage):
            return
        assert message.delivered_at is not None
        self.updates.append(
            UpdateRecord(
                time=message.delivered_at,
                src=message.src,
                dst=message.dst,
                is_withdrawal=payload.is_withdrawal,
                prefix=payload.prefix,
            )
        )

    def _on_drop(self, message: Message, reason: str) -> None:
        payload = message.payload
        if not isinstance(payload, UpdateMessage):
            return
        assert self._network is not None  # hooks only exist after attach
        self.drops.append(
            DropRecord(
                time=self._network.engine.now,
                src=message.src,
                dst=message.dst,
                reason=reason,
                is_withdrawal=payload.is_withdrawal,
                prefix=payload.prefix,
            )
        )

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------

    @property
    def message_count(self) -> int:
        """Total updates observed (the paper's message-count metric)."""
        return len(self.updates)

    @property
    def drop_count(self) -> int:
        """Total update messages dropped during the episode."""
        return len(self.drops)

    def drops_by_reason(self) -> Dict[str, int]:
        """Drop counts keyed by drop reason (sorted)."""
        counts: Dict[str, int] = {}
        for record in self.drops:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def update_times(self) -> List[float]:
        return [u.time for u in self.updates]

    @property
    def last_update_time(self) -> Optional[float]:
        if not self.updates:
            return None
        return self.updates[-1].time

    def convergence_time(self, reference_time: float) -> float:
        """Seconds from ``reference_time`` (the origin's final
        announcement) to the last observed update."""
        last = self.last_update_time
        if last is None or last <= reference_time:
            return 0.0
        return last - reference_time

    def updates_after(self, time: float) -> int:
        return sum(1 for u in self.updates if u.time >= time)

    # ------------------------------------------------------------------
    # figure series
    # ------------------------------------------------------------------

    def update_series(self, bin_width: float = 5.0, start: float = 0.0,
                      end: Optional[float] = None) -> List[Tuple[float, int]]:
        """Update deliveries per bin (Figure 10 top row)."""
        return bin_counts(self.update_times, bin_width, start=start, end=end)

    def damped_link_deltas(self) -> List[Tuple[float, int]]:
        return [(time, delta) for time, delta, _, _ in self.suppression_changes]

    def damped_link_series(self) -> List[Tuple[float, int]]:
        """Number of suppressed (router, peer) entries over time
        (Figure 10 bottom row)."""
        return to_step_series(self.damped_link_deltas())

    def damped_links_at(self, time: float) -> int:
        return step_series_at(self.damped_link_series(), time)

    def peak_damped_links(self) -> int:
        series = self.damped_link_series()
        return max((count for _, count in series), default=0)

    @property
    def total_suppressions(self) -> int:
        """Number of suppression episodes started during the run."""
        return sum(1 for _, delta, _, _ in self.suppression_changes if delta > 0)

    def routers_with_suppressions(self) -> List[str]:
        return sorted({r for _, delta, r, _ in self.suppression_changes if delta > 0})

    # ------------------------------------------------------------------
    # reuse-timer observations (via the routers' damping managers)
    # ------------------------------------------------------------------

    def reuse_events(self) -> List[ReuseEvent]:
        """Every reuse-timer expiry across all routers, in time order."""
        events: List[ReuseEvent] = []
        for router in self._routers:
            if router.damping is not None:
                events.extend(router.damping.reuse_events)
        events.sort(key=lambda e: e.time)
        return events

    def noisy_reuse_count(self) -> int:
        return sum(1 for e in self.reuse_events() if e.noisy)

    def silent_reuse_count(self) -> int:
        return sum(1 for e in self.reuse_events() if not e.noisy)

    def secondary_charge_count(self) -> int:
        """Total reuse-timer postponements observed while suppressed —
        the footprint of secondary charging."""
        total = 0
        for router in self._routers:
            if router.damping is None:
                continue
            for record in router.damping.suppressions:
                total += len(record.recharges)
        return total

    # ------------------------------------------------------------------
    # schedule-race observations (engine tie detector, opt-in)
    # ------------------------------------------------------------------

    @property
    def tie_count(self) -> int:
        """Number of same-instant same-router ties observed."""
        return len(self.schedule_ties)

    def ties_by_tag_pair(self) -> Dict[Tuple[str, str], int]:
        """Tie counts keyed by the (anchor, tied) event-tag pair — the
        granularity at which benign-tie allowlists are expressed."""
        counts: Dict[Tuple[str, str], int] = {}
        for tie in self.schedule_ties:
            counts[tie.tags] = counts.get(tie.tags, 0) + 1
        return dict(sorted(counts.items()))

    def ties_by_actor(self) -> Dict[str, int]:
        """Tie counts per router, for locating ordering hot spots."""
        counts: Dict[str, int] = {}
        for tie in self.schedule_ties:
            counts[tie.actor] = counts.get(tie.actor, 0) + 1
        return dict(sorted(counts.items()))

    def suppression_records(self) -> Dict[str, list]:
        """Per-router suppression episodes (for detailed analysis)."""
        return {
            router.name: list(router.damping.suppressions)
            for router in self._routers
            if router.damping is not None
        }

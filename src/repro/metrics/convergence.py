"""Convergence bookkeeping and run summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class ConvergenceSummary:
    """Headline numbers for one simulated flapping episode."""

    pulses: int
    convergence_time: float
    message_count: int
    peak_damped_links: int
    total_suppressions: int
    noisy_reuses: int
    silent_reuses: int
    secondary_charges: int

    def as_row(self) -> List[object]:
        """Row form used by the report tables."""
        return [
            self.pulses,
            round(self.convergence_time, 1),
            self.message_count,
            self.peak_damped_links,
            self.total_suppressions,
            self.noisy_reuses,
            self.silent_reuses,
            self.secondary_charges,
        ]

    @staticmethod
    def headers() -> List[str]:
        return [
            "pulses",
            "conv_time_s",
            "messages",
            "peak_damped",
            "suppressions",
            "noisy_reuse",
            "silent_reuse",
            "secondary_charges",
        ]


def summarize_convergence(
    collector: MetricsCollector,
    pulses: int,
    final_announcement_time: Optional[float],
) -> ConvergenceSummary:
    """Build a :class:`ConvergenceSummary` from a finished run.

    ``final_announcement_time`` is the origin's last 'up' event — the
    zero of the paper's convergence clock. ``None`` (no pulses were sent)
    yields zero convergence time.
    """
    if final_announcement_time is None:
        convergence = 0.0
    else:
        convergence = collector.convergence_time(final_announcement_time)
    return ConvergenceSummary(
        pulses=pulses,
        convergence_time=convergence,
        message_count=collector.message_count,
        peak_damped_links=collector.peak_damped_links(),
        total_suppressions=collector.total_suppressions,
        noisy_reuses=collector.noisy_reuse_count(),
        silent_reuses=collector.silent_reuse_count(),
        secondary_charges=collector.secondary_charge_count(),
    )

"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still distinguishing configuration mistakes from
runtime protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class TimerError(SimulationError):
    """A timer was started, cancelled, or fired in an invalid state."""


class SimulationStalled(SimulationError):
    """The engine detected no-progress: the event queue keeps producing
    work without advancing virtual time (or past the event budget).

    ``diagnostics`` carries a structured
    :class:`repro.sim.watchdog.StallDiagnostics` snapshot — the clock,
    event counts, a sample of the next pending events, and the
    pending-timer inventory from the :class:`repro.sim.timers.TimerAudit`
    when one is attached — so a wedged simulation fails with an
    actionable inventory instead of hanging.
    """

    def __init__(self, message: str, diagnostics: object = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class TopologyError(ReproError):
    """A topology could not be constructed or violates an invariant."""


class ProtocolError(ReproError):
    """A BGP message or RIB operation violated protocol invariants."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced no result."""

"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still distinguishing configuration mistakes from
runtime protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class TimerError(SimulationError):
    """A timer was started, cancelled, or fired in an invalid state."""


class TopologyError(ReproError):
    """A topology could not be constructed or violates an invariant."""


class ProtocolError(ReproError):
    """A BGP message or RIB operation violated protocol invariants."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced no result."""

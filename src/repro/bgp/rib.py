"""Routing Information Bases.

A BGP router keeps three kinds of tables (paper Figure 2):

- :class:`AdjRibIn` — one per peer, the routes as received (plus the
  root-cause attribute of the installing update, needed when a reused
  route is re-announced under RCN),
- :class:`LocRib` — the selected best route per prefix,
- :class:`AdjRibOut` — one per peer, the routes most recently announced
  to that peer (``None`` after an explicit withdrawal).

:meth:`AdjRibIn.classify` maps an incoming update onto the damping
update kinds of :class:`repro.core.params.UpdateKind`: withdrawal,
re-announcement, attribute change, or duplicate — the receiving-side
classification both vendors use for penalty increments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.attrs import Route
from repro.core.params import UpdateKind
from repro.core.rcn import RootCause


class RibInEntry:
    """State of one (peer, prefix) slot in an Adj-RIB-In.

    ``route`` is ``None`` while the peer has the prefix withdrawn.
    ``ever_announced`` distinguishes a *first* announcement (no damping
    penalty — there was nothing to flap) from a *re*-announcement.

    A plain slotted class rather than a dataclass: one entry lives per
    (peer, prefix) for the whole run, so the per-instance ``__dict__``
    would dominate the table's footprint (perflint PERF006).
    """

    __slots__ = ("route", "root_cause", "ever_announced")

    def __init__(
        self,
        route: Optional[Route] = None,
        root_cause: Optional[RootCause] = None,
        ever_announced: bool = False,
    ) -> None:
        self.route = route
        self.root_cause = root_cause
        self.ever_announced = ever_announced


class AdjRibIn:
    """Routes received from one peer, by prefix."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._entries: Dict[str, RibInEntry] = {}

    def entry(self, prefix: str) -> Optional[RibInEntry]:
        return self._entries.get(prefix)

    def route(self, prefix: str) -> Optional[Route]:
        entry = self._entries.get(prefix)
        return entry.route if entry is not None else None

    def prefixes(self) -> List[str]:
        return list(self._entries)

    def classify(self, prefix: str, as_path: Optional[Tuple[str, ...]]) -> Optional[UpdateKind]:
        """Classify an incoming update against the stored state.

        Returns ``None`` for updates that carry no information and should
        be ignored entirely: a withdrawal for a prefix the peer never
        announced (or already withdrew), or the very first announcement.
        """
        entry = self._entries.get(prefix)
        if as_path is None:
            if entry is None or entry.route is None:
                return None
            return UpdateKind.WITHDRAWAL
        if entry is None or not entry.ever_announced:
            return None
        if entry.route is None:
            return UpdateKind.REANNOUNCEMENT
        stored = entry.route.as_path
        if stored is as_path or stored == as_path:
            return UpdateKind.DUPLICATE
        return UpdateKind.ATTRIBUTE_CHANGE

    def apply(
        self,
        prefix: str,
        as_path: Optional[Tuple[str, ...]],
        root_cause: Optional[RootCause],
    ) -> RibInEntry:
        """Install an announcement or withdrawal and return the entry."""
        entry = self._entries.get(prefix)
        if entry is None:
            entry = RibInEntry()
            self._entries[prefix] = entry
        if as_path is None:
            entry.route = None
        else:
            entry.route = Route(prefix=prefix, as_path=as_path, learned_from=self.peer)
            entry.ever_announced = True
        entry.root_cause = root_cause
        return entry

    def __len__(self) -> int:
        return len(self._entries)


class LocRib:
    """The best route per prefix, as selected by the decision process."""

    def __init__(self) -> None:
        self._routes: Dict[str, Route] = {}

    def route(self, prefix: str) -> Optional[Route]:
        return self._routes.get(prefix)

    def set_route(self, prefix: str, route: Optional[Route]) -> bool:
        """Install (or clear, with ``None``) the best route.

        Returns ``True`` when the Loc-RIB actually changed.
        """
        current = self._routes.get(prefix)
        if route is None:
            if current is None:
                return False
            del self._routes[prefix]
            return True
        if current is not None and current == route:
            return False
        self._routes[prefix] = route
        return True

    def prefixes(self) -> List[str]:
        return list(self._routes)

    def __iter__(self) -> Iterator[Tuple[str, Route]]:
        return iter(self._routes.items())

    def __len__(self) -> int:
        return len(self._routes)


@dataclass
class RibOutEntry:
    """Last state announced to a peer for one prefix."""

    route: Optional[Route] = None
    #: AS-path length of the last announcement, kept across withdrawals so
    #: the selective-damping preference tag can compare successive
    #: announcements.
    last_announced_length: Optional[int] = None


class AdjRibOut:
    """Routes most recently sent to one peer, by prefix."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._entries: Dict[str, RibOutEntry] = {}

    def entry(self, prefix: str) -> RibOutEntry:
        existing = self._entries.get(prefix)
        if existing is None:
            existing = RibOutEntry()
            self._entries[prefix] = existing
        return existing

    def announced_route(self, prefix: str) -> Optional[Route]:
        existing = self._entries.get(prefix)
        return existing.route if existing is not None else None

    def has_announced(self, prefix: str) -> bool:
        return self.announced_route(prefix) is not None

    def record_announcement(self, prefix: str, route: Route) -> None:
        entry = self.entry(prefix)
        entry.route = route
        entry.last_announced_length = route.path_length

    def record_withdrawal(self, prefix: str) -> None:
        entry = self.entry(prefix)
        entry.route = None

    def prefixes(self) -> List[str]:
        return list(self._entries)

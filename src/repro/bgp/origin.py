"""The flapping origin AS.

:class:`OriginRouter` is a stub AS that originates exactly one prefix and
exposes the flap API the paper's workload drives: :meth:`flap_down`
(withdraw) and :meth:`flap_up` (re-announce). Each flap event is stamped
with a fresh :class:`~repro.core.rcn.RootCause` on the
``[originAS, ispAS]`` link, with a monotonically increasing sequence
number — exactly the paper's Section 6.1 example.

The origin runs the normal BGP machinery (it *is* a router), but with
MRAI disabled so flap timing is controlled purely by the workload, and
with damping off — the paper damps updates *received from* the origin at
the ISP, never at the origin itself.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bgp.mrai import MraiConfig
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.rcn import RootCause, RootCauseGenerator
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class OriginRouter(BgpRouter):
    """The unstable customer AS of the paper's Figure 1."""

    def __init__(
        self,
        name: str,
        engine: Engine,
        rng: RngRegistry,
        prefix: str,
        isp: str,
    ) -> None:
        config = RouterConfig(
            damping=None,
            rcn_enabled=False,
            attach_root_cause=True,
            mrai=MraiConfig(base=0.0),
        )
        super().__init__(name, engine, rng, config=config)
        if not prefix:
            raise ConfigurationError("origin prefix must be non-empty")
        self.prefix = prefix
        self.isp = isp
        self._cause_generator = RootCauseGenerator((name, isp))
        self.is_up = False
        #: (time, status) history of flap events, for metrics and the
        #: intended-behaviour comparison.
        self.flap_log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # flap API
    # ------------------------------------------------------------------

    def bring_up(self, stamp_cause: bool = True) -> Optional[RootCause]:
        """Announce the prefix (initial announcement or re-announcement)."""
        cause = self._cause_generator.next_cause("up") if stamp_cause else None
        self.is_up = True
        self.flap_log.append((self.engine.now, "up"))
        self.originate(self.prefix, cause)
        return cause

    def take_down(self, stamp_cause: bool = True) -> Optional[RootCause]:
        """Withdraw the prefix."""
        cause = self._cause_generator.next_cause("down") if stamp_cause else None
        self.is_up = False
        self.flap_log.append((self.engine.now, "down"))
        self.withdraw_origination(self.prefix, cause)
        return cause

    # Paper-flavoured aliases.
    flap_up = bring_up
    flap_down = take_down

    @property
    def last_announcement_time(self) -> Optional[float]:
        """Time of the most recent 'up' event (the convergence clock's zero)."""
        for time, status in reversed(self.flap_log):
            if status == "up":
                return time
        return None

    @property
    def flap_times(self) -> List[float]:
        return [time for time, _ in self.flap_log]

"""Routing policies: shortest-path and no-valley (Gao–Rexford).

A policy answers two questions for a router:

- ``local_pref(peer, route)`` — how much the decision process should
  prefer routes learned from ``peer`` (higher wins),
- ``permits_export(route, to_peer)`` — whether the best route may be
  announced to ``to_peer``.

:class:`ShortestPathPolicy` is the paper's default: constant preference,
export to everyone (AS-path loop prevention is handled separately by the
router). :class:`NoValleyPolicy` implements the widely deployed
commercial-relationship policy used for the paper's Figure 15: prefer
customer routes over peer routes over provider routes, and only routes
learned from customers (or self-originated) are exported to everyone —
routes learned from peers or providers go to customers only, so no AS
transits traffic for a third party.
"""

from __future__ import annotations

import enum
from typing import Callable, Mapping, Tuple

from repro.bgp.attrs import Route
from repro.errors import ConfigurationError


class Relationship(enum.Enum):
    """The business relationship a router has with one neighbour,
    from the router's own point of view."""

    CUSTOMER = "customer"  # the neighbour is my customer
    PEER = "peer"
    PROVIDER = "provider"  # the neighbour is my provider


#: ``relationship(router, neighbor) -> Relationship``
RelationshipFunction = Callable[[str, str], Relationship]


class RoutingPolicy:
    """Base class; behaves as shortest-path unless methods are overridden."""

    def local_pref(self, router: str, peer: str, route: Route) -> int:
        """Preference of ``route`` learned from ``peer`` (higher wins)."""
        del router, peer, route
        return 100

    def permits_export(self, router: str, route: Route, to_peer: str) -> bool:
        """May ``router`` announce ``route`` to ``to_peer``?

        The route's ``learned_from`` names the peer it came from, or the
        router itself for self-originated prefixes.
        """
        del router, route, to_peer
        return True

    @property
    def name(self) -> str:
        return type(self).__name__


class ShortestPathPolicy(RoutingPolicy):
    """The paper's default: no preference differences, export everywhere."""


class NoValleyPolicy(RoutingPolicy):
    """Gao–Rexford no-valley export with prefer-customer selection.

    Parameters
    ----------
    relationship:
        Function (or mapping lookup, see :meth:`from_mapping`) giving each
        router's relationship with each neighbour.
    prefer_customer:
        When ``True`` (the default, and standard practice), local
        preference is 300/200/100 for customer/peer/provider routes; when
        ``False`` the preference is constant and only the export rule
        applies.
    """

    _PREFS = {
        Relationship.CUSTOMER: 300,
        Relationship.PEER: 200,
        Relationship.PROVIDER: 100,
    }

    def __init__(self, relationship: RelationshipFunction, prefer_customer: bool = True) -> None:
        self._relationship = relationship
        self._prefer_customer = prefer_customer

    @classmethod
    def from_mapping(
        cls,
        relationships: Mapping[Tuple[str, str], Relationship],
        prefer_customer: bool = True,
    ) -> "NoValleyPolicy":
        """Build from a ``{(router, neighbor): Relationship}`` mapping."""

        def lookup(router: str, neighbor: str) -> Relationship:
            try:
                return relationships[(router, neighbor)]
            except KeyError:
                raise ConfigurationError(
                    f"no relationship configured between {router!r} and {neighbor!r}"
                ) from None

        return cls(lookup, prefer_customer=prefer_customer)

    def local_pref(self, router: str, peer: str, route: Route) -> int:
        del route
        if not self._prefer_customer:
            return 100
        return self._PREFS[self._relationship(router, peer)]

    def permits_export(self, router: str, route: Route, to_peer: str) -> bool:
        if route.learned_from == router:
            return True  # self-originated: export to everyone
        learned_rel = self._relationship(router, route.learned_from)
        if learned_rel is Relationship.CUSTOMER:
            return True  # customer routes: export to everyone
        # Peer/provider routes: only to customers (no valleys, no
        # peer-to-peer transit).
        return self._relationship(router, to_peer) is Relationship.CUSTOMER

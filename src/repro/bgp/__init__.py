"""A path-vector (BGP-like) routing protocol for the simulator.

Each :class:`BgpRouter` is one AS: it keeps per-peer Adj-RIB-In tables, a
Loc-RIB with the selected best route, and per-peer Adj-RIB-Out tables;
announcements are rate-limited by a jittered per-peer MRAI timer;
withdrawals propagate immediately. Route flap damping (and optionally the
RCN or selective-damping penalty filters) plug into update processing.

The protocol is single-prefix-friendly but fully general: all tables are
keyed by prefix.
"""

from repro.bgp.attrs import Route
from repro.bgp.messages import UpdateMessage
from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.paths import PathTable, global_path_table, intern_path
from repro.bgp.policy import NoValleyPolicy, RoutingPolicy, ShortestPathPolicy
from repro.bgp.router import BgpRouter, RouterConfig

__all__ = [
    "BgpRouter",
    "MraiConfig",
    "NoValleyPolicy",
    "OriginRouter",
    "PathTable",
    "Route",
    "global_path_table",
    "intern_path",
    "RouterConfig",
    "RoutingPolicy",
    "ShortestPathPolicy",
    "UpdateMessage",
]

"""RFC-4724-style graceful restart: helper-side stale-route retention.

When a BGP speaker crashes, its neighbours normally treat every route
learned from it as implicitly withdrawn — a withdrawal wave that
propagates, triggers path exploration, and (with damping deployed)
charges penalties far from the failure. Graceful restart (RFC 4724)
avoids the wave: a *helper* neighbour keeps the crashed peer's routes in
its Adj-RIB-In marked **stale** — still usable by the decision process —
and arms a restart timer. If the peer comes back and re-announces a
route before the timer expires, the stale mark is simply cleared (a
same-path re-announcement classifies as a duplicate, so damping never
charges); whatever is still stale when the timer fires is withdrawn then.

This module holds the helper-side state machine,
:class:`GracefulRestartHelper`, owned by each
:class:`~repro.bgp.router.BgpRouter`; whether GR applies to a given
crash is decided by the *crashed* peer's advertised
:class:`GracefulRestartConfig` (carried through
:meth:`repro.net.network.Network.crash_router`). The damping interaction
this enables — does GR suppress or amplify secondary charging? — is the
experiment :mod:`repro.experiments.gr_faults` runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.timers import Timer

#: Helper callback fired when a peer's restart timer expires with routes
#: still stale: ``f(peer, sorted_stale_prefixes, trace_cause_id)``.
StaleExpiryCallback = Callable[[str, List[str], Optional[int]], None]


@dataclass(frozen=True)
class GracefulRestartConfig:
    """Graceful-restart capability advertised by one router.

    ``restart_time`` is RFC 4724's Restart Time: how long helpers retain
    this router's routes as stale before flushing them. The default
    matches the 120 s commonly shipped by implementations.
    """

    restart_time: float = 120.0

    def __post_init__(self) -> None:
        if self.restart_time <= 0:
            raise ConfigurationError(
                f"restart_time must be > 0, got {self.restart_time}"
            )


class _PeerRestartState:
    """Helper-side state for one crashed peer."""

    __slots__ = ("stale", "timer", "trace_cause")

    def __init__(self, timer: Timer) -> None:
        #: Prefixes still marked stale (retained but not yet refreshed).
        self.stale: set = set()
        self.timer = timer
        #: Trace-record id of the crash/fault that started the hold
        #: (causal parent of the eventual stale-expiry withdrawals).
        self.trace_cause: Optional[int] = None


class GracefulRestartHelper:
    """Per-router helper-mode bookkeeping, one restart timer per peer.

    State machine per peer::

        idle --peer_crashed--> helping (routes stale, timer armed)
        helping --note_update(last stale prefix)--> idle (timer cancelled)
        helping --timer expiry--> idle (remaining stale flushed via
                                        the owner's expiry callback)

    The helper never touches RIBs itself: the owning router marks which
    prefixes entered helper mode and processes the expiry flush, so all
    Loc-RIB mutation stays in :class:`~repro.bgp.router.BgpRouter`.
    """

    def __init__(
        self,
        engine: Engine,
        owner: str,
        on_stale_expired: StaleExpiryCallback,
    ) -> None:
        self._engine = engine
        self.owner = owner
        self._on_stale_expired = on_stale_expired
        self._peers: Dict[str, _PeerRestartState] = {}
        #: Stale-expiry flushes that actually withdrew something.
        self.expiry_flushes = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def helping(self, peer: str) -> bool:
        """True while ``peer``'s routes are being retained as stale."""
        return peer in self._peers

    def is_stale(self, peer: str, prefix: str) -> bool:
        state = self._peers.get(peer)
        return state is not None and prefix in state.stale

    def stale_prefixes(self, peer: str) -> List[str]:
        state = self._peers.get(peer)
        if state is None:
            return []
        return sorted(state.stale)

    def stale_count(self) -> int:
        """Total stale (peer, prefix) entries currently retained."""
        return sum(len(state.stale) for state in self._peers.values())

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def peer_crashed(
        self,
        peer: str,
        prefixes: Iterable[str],
        config: GracefulRestartConfig,
        trace_cause: Optional[int] = None,
    ) -> int:
        """Enter helper mode for ``peer``: retain ``prefixes`` as stale
        and (re)arm the restart timer. Returns the stale count."""
        state = self._peers.get(peer)
        if state is None:
            # functools.partial rather than a lambda so idle helpers stay
            # picklable for warm-state snapshots.
            timer = Timer(
                self._engine,
                functools.partial(self._expired, peer),
                name=f"gr-stale:{self.owner}:{peer}",
                actor=self.owner,
                tag="gr-stale",
            )
            state = _PeerRestartState(timer)
            self._peers[peer] = state
        state.stale.update(prefixes)
        state.trace_cause = trace_cause
        if not state.stale:
            # Nothing to retain: don't arm a timer that would fire into
            # an empty flush (and drop the empty helper state).
            del self._peers[peer]
            return 0
        state.timer.reschedule(config.restart_time)
        return len(state.stale)

    def note_update(self, peer: str, prefix: str) -> None:
        """An update (announcement or withdrawal) from ``peer`` refreshed
        ``prefix``: clear its stale mark. When the last stale prefix is
        refreshed the helper leaves helper mode and disarms the timer."""
        state = self._peers.get(peer)
        if state is None:
            return
        state.stale.discard(prefix)
        if not state.stale:
            state.timer.cancel()
            del self._peers[peer]

    def cancel_all_timers(self) -> int:
        """Disarm every pending restart timer and forget helper state;
        returns how many timers were pending (quiesce hook — without it
        a discarded helper's timers would fire into dead state, the
        runtime shape of timerlint TIM001)."""
        cancelled = 0
        for state in self._peers.values():
            if state.timer.is_pending:
                state.timer.cancel()
                cancelled += 1
        self._peers.clear()
        return cancelled

    def _expired(self, peer: str) -> None:
        state = self._peers.pop(peer, None)
        if state is None or not state.stale:
            return
        self.expiry_flushes += 1
        self._on_stale_expired(peer, sorted(state.stale), state.trace_cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GracefulRestartHelper({self.owner!r}, "
            f"helping={sorted(self._peers)}, stale={self.stale_count()})"
        )


__all__ = [
    "GracefulRestartConfig",
    "GracefulRestartHelper",
    "StaleExpiryCallback",
]

"""Per-peer MRAI (Minimum Route Advertisement Interval) rate limiting.

BGP spaces successive announcements to the same peer by the MRAI. This is
what turns a withdrawal into minutes of visible path exploration: each
router switches to a progressively worse alternate, but may only tell its
neighbours about the change every ~30 jittered seconds.

The limiter is *state-based*, like real implementations: while the timer
runs, the router only marks the prefix dirty; when the timer fires it
announces whatever the *current* best route is (skipping the send entirely
if the Adj-RIB-Out is already up to date). Withdrawals bypass the timer by
default (Cisco behaviour, and the setting used in SSFNet-era studies);
set ``apply_to_withdrawals`` to rate-limit them too.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.errors import ConfigurationError, TimerError
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.timers import Timer

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class MraiConfig:
    """MRAI settings for one router.

    ``base`` is the nominal interval in seconds; each arming draws a
    multiplicative jitter from ``[jitter_low, jitter_high]`` (the
    3/4-to-1 spread recommended by RFC 4271 and used by SSFNet).
    ``base = 0`` disables rate limiting entirely.
    """

    base: float = 30.0
    jitter_low: float = 0.75
    jitter_high: float = 1.0
    apply_to_withdrawals: bool = False

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError(f"MRAI base must be >= 0, got {self.base}")
        if not (0.0 < self.jitter_low <= self.jitter_high):
            raise ConfigurationError(
                f"need 0 < jitter_low <= jitter_high, got "
                f"[{self.jitter_low}, {self.jitter_high}]"
            )

    @property
    def enabled(self) -> bool:
        return self.base > 0.0


class MraiLimiter:
    """Rate limiter for one router's announcements, one timer per peer.

    The hosting router supplies ``flush(peer, prefixes)``: called when the
    peer's timer expires with the set of dirty prefixes; the router then
    sends whatever delta its Adj-RIB-Out requires. The limiter restarts
    the timer only when the flush reports that something was actually
    sent, so an idle router's timers go quiet and the event queue drains.
    """

    def __init__(
        self,
        engine: Engine,
        config: MraiConfig,
        owner: str,
        rng: RngRegistry,
        flush: Callable[[str, Set[str]], bool],
    ) -> None:
        self._engine = engine
        self.config = config
        self.owner = owner
        self._rng = rng.stream(f"mrai:{owner}")
        self._flush = flush
        self._timers: Dict[str, Timer] = {}
        self._dirty: Dict[str, Set[str]] = {}
        #: Causal tracer observing this limiter (set by Tracer.attach).
        self.trace: Optional["Tracer"] = None
        #: Per-peer trace id of the record whose handling last deferred a
        #: prefix — the causal parent of the eventual ``mrai_flush``.
        self._defer_cause: Dict[str, Optional[int]] = {}

    def _interval(self) -> float:
        return self.config.base * self._rng.uniform(
            self.config.jitter_low, self.config.jitter_high
        )

    def may_send_now(self, peer: str) -> bool:
        """True when an announcement to ``peer`` may go out immediately."""
        if not self.config.enabled:
            return True
        timer = self._timers.get(peer)
        return timer is None or not timer.is_pending

    def note_sent(self, peer: str) -> None:
        """Record that an announcement was just sent to ``peer`` and start
        the hold-off timer."""
        if not self.config.enabled:
            return
        timer = self._timers.get(peer)
        if timer is None:
            # functools.partial rather than a lambda so idle limiters stay
            # picklable for warm-state snapshots.
            timer = Timer(
                self._engine,
                functools.partial(self._expired, peer),
                # One allocation per peer lifetime, not per sent update.
                name=f"mrai:{self.owner}->{peer}",  # perflint: disable=PERF004
                actor=self.owner,
                tag="mrai",
            )
            self._timers[peer] = timer
        timer.reschedule(self._interval())

    def defer(self, peer: str, prefix: str) -> None:
        """Mark ``prefix`` dirty for ``peer``; it will be re-evaluated when
        the peer's timer expires.

        Only valid while the peer is held off (``may_send_now`` False) —
        deferring with no pending timer would strand the prefix, since
        nothing would ever flush it.
        """
        if self.may_send_now(peer):
            raise TimerError(
                f"{self.owner}: defer({peer!r}, {prefix!r}) while the peer "
                f"may send — send immediately instead"
            )
        self._dirty.setdefault(peer, set()).add(prefix)
        if self.trace is not None:
            # The last deferral before the flush is its direct cause.
            self._defer_cause[peer] = self.trace.context

    def pending_prefixes(self, peer: str) -> Set[str]:
        return set(self._dirty.get(peer, ()))

    def has_pending(self) -> bool:
        """True when any peer still has deferred prefixes."""
        return any(self._dirty.values())

    def cancel_all_timers(self) -> int:
        """Disarm every pending MRAI timer; returns how many were pending.

        Deferred prefixes stay recorded, so a later :meth:`note_sent`
        re-arms normally. This is the quiesce hook for session teardown
        or limiter replacement — an armed timer surviving its limiter
        would flush ``_dirty`` state nobody owns (timerlint TIM001's
        runtime shape).
        """
        cancelled = 0
        for timer in self._timers.values():
            if timer.is_pending:
                timer.cancel()
                cancelled += 1
        return cancelled

    def reset_peer(self, peer: str) -> None:
        """Forget all MRAI state for ``peer``: disarm its timer and drop
        any deferred prefixes.

        Used when the session to ``peer`` is destroyed by a crash rather
        than bounced: deferred prefixes belong to the dead session (a
        restarted peer gets a full re-advertisement instead), so keeping
        them — as :meth:`cancel_all_timers` deliberately does — would
        replay stale deltas into the fresh session.
        """
        timer = self._timers.get(peer)
        if timer is not None and timer.is_pending:
            timer.cancel()
        self._dirty.pop(peer, None)
        self._defer_cause.pop(peer, None)

    def _expired(self, peer: str) -> None:
        dirty = self._dirty.pop(peer, set())
        if not dirty:
            return
        trace = self.trace
        if trace is not None:
            flush_rid = trace.emit(
                "mrai_flush",
                self._engine.now,
                node=self.owner,
                cause=self._defer_cause.pop(peer, None),
                peer=peer,
                prefixes=sorted(dirty),
            )
            trace.set_context(flush_rid)
        sent = self._flush(peer, dirty)
        if sent:
            self.note_sent(peer)

"""Route attributes.

A :class:`Route` is what lives in RIB tables: the destination prefix, the
AS path as received (the sending peer's ASN first, the originating ASN
last), and the peer it was learned from. Routes are immutable and
value-compared, which makes "did this update change anything?"
(duplicate detection, Adj-RIB-Out deltas) a simple equality test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bgp.paths import intern_path
from repro.errors import ProtocolError


@dataclass(frozen=True)
class Route:
    """One path to ``prefix`` as stored in a RIB.

    ``as_path[0]`` is the ASN of the neighbour that announced the route
    (BGP speakers prepend themselves when announcing); ``as_path[-1]`` is
    the originating AS. ``learned_from`` is the peer whose Adj-RIB-In the
    route sits in — for routes in Loc-RIB it records where the best route
    came from; for self-originated routes it equals the local ASN.
    """

    prefix: str
    as_path: Tuple[str, ...]
    learned_from: str

    def __post_init__(self) -> None:
        if not self.prefix:
            raise ProtocolError("route prefix must be non-empty")
        if not self.as_path:
            raise ProtocolError(f"route for {self.prefix!r} must have a non-empty AS path")
        # Flyweight the path: equal paths share one tuple object, so the
        # equality tests below (and in the RIBs) usually short-circuit on
        # identity, and large-graph runs store each distinct path once.
        object.__setattr__(self, "as_path", intern_path(self.as_path))

    @property
    def path_length(self) -> int:
        """Number of ASes in the path (the decision-process metric)."""
        return len(self.as_path)

    @property
    def origin_as(self) -> str:
        """The AS that originated the prefix."""
        return self.as_path[-1]

    @property
    def next_hop_as(self) -> str:
        """The neighbouring AS the path goes through."""
        return self.as_path[0]

    def contains(self, asn: str) -> bool:
        """True when ``asn`` appears in the AS path (loop detection)."""
        return asn in self.as_path

    def prepended_by(self, asn: str) -> "Route":
        """The route as this router would announce it: ``asn`` prepended.

        Raises :class:`ProtocolError` if prepending would create a loop,
        which would indicate a bug in the caller's loop prevention.
        """
        if asn in self.as_path:
            raise ProtocolError(
                f"prepending {asn!r} to {self.as_path!r} would create a loop"
            )
        return Route(
            prefix=self.prefix,
            as_path=(asn,) + self.as_path,
            learned_from=asn,
        )

    def same_attributes(self, other: "Route") -> bool:
        """Attribute-level equality (ignores which peer it came from)."""
        # Interned paths make the identity check the common success case.
        return self.prefix == other.prefix and (
            self.as_path is other.as_path or self.as_path == other.as_path
        )

    def __str__(self) -> str:
        return f"{self.prefix} via [{' '.join(self.as_path)}]"

"""The BGP speaker.

:class:`BgpRouter` ties the whole protocol together: update
classification against Adj-RIB-In, damping (with optional RCN or
selective-damping penalty filters), the decision process, root-cause
propagation, policy-filtered export with per-peer MRAI rate limiting, and
origination of local prefixes.

Processing pipeline for a received update (paper Sections 2 and 6):

1. classify against the peer's Adj-RIB-In (withdrawal / re-announcement /
   attribute change / duplicate / first announcement),
2. install into Adj-RIB-In (remembering the update's root cause),
3. damping: ask the configured filter whether this update *charges*, then
   let the :class:`~repro.core.damping.DampingManager` update the penalty
   and the suppression state — a newly suppressed entry immediately drops
   out of the candidate set,
4. re-run the decision process; if the Loc-RIB changed, remember the
   triggering root cause and synchronise every peer's Adj-RIB-Out
   (withdrawals immediately, announcements through MRAI).

Reuse-timer expiries re-run step 4 with the *stored* root cause of the
reused route and report to the damping manager whether the expiry was
noisy (Loc-RIB changed) or silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.bgp.attrs import Route
from repro.bgp.decision import select_best
from repro.bgp.graceful_restart import GracefulRestartConfig, GracefulRestartHelper
from repro.bgp.messages import UpdateMessage
from repro.bgp.mrai import MraiConfig, MraiLimiter
from repro.bgp.policy import RoutingPolicy, ShortestPathPolicy
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib
from repro.core.damping import DampingManager
from repro.core.params import DampingParams, UpdateKind
from repro.core.rcn import RootCause, RootCauseHistory
from repro.core.selective import SelectiveDampingFilter, compare_paths
from repro.net.message import Message
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.trace.tracer import Tracer

#: Local preference assigned to self-originated routes — always wins.
_SELF_ORIGINATED_PREF = 1_000_000


@dataclass(frozen=True)
class RouterConfig:
    """Per-router protocol configuration.

    ``damping`` enables route flap damping when set; ``rcn_enabled`` and
    ``selective_enabled`` choose the penalty filter placed in front of the
    damping algorithm (at most one should be set). ``attach_root_cause``
    controls whether this router stamps/propagates RCN attributes on the
    updates it sends — kept separate from ``rcn_enabled`` so partial
    deployments can propagate causes without using them.
    """

    damping: Optional[DampingParams] = None
    rcn_enabled: bool = False
    selective_enabled: bool = False
    attach_root_cause: bool = True
    mrai: MraiConfig = dataclass_field(default_factory=MraiConfig)
    #: Whether the implicit withdrawals of a BGP session going down charge
    #: the damping penalty. RFC 2439 leaves this to the implementation;
    #: off by default so topology maintenance does not look like flapping.
    charge_on_session_reset: bool = False
    #: Graceful-restart capability this router advertises. When set, a
    #: crash of this router puts its neighbours into RFC-4724 helper mode
    #: (stale-route retention under a restart timer) instead of an
    #: immediate withdrawal wave; ``None`` means crashes are hard resets.
    graceful_restart: Optional[GracefulRestartConfig] = None

    @property
    def damping_enabled(self) -> bool:
        return self.damping is not None


@dataclass
class RouterStats:
    """Protocol counters for one router."""

    updates_received: int = 0
    announcements_received: int = 0
    withdrawals_received: int = 0
    duplicates_ignored: int = 0
    updates_sent: int = 0
    announcements_sent: int = 0
    withdrawals_sent: int = 0
    best_path_changes: int = 0
    crashes: int = 0
    restarts: int = 0
    #: Stale routes withdrawn because a peer's graceful-restart timer
    #: expired before the peer refreshed them.
    stale_routes_flushed: int = 0


class BgpRouter(Node):
    """One AS running the path-vector protocol with optional damping."""

    def __init__(
        self,
        name: str,
        engine: Engine,
        rng: RngRegistry,
        policy: Optional[RoutingPolicy] = None,
        config: Optional[RouterConfig] = None,
    ) -> None:
        super().__init__(name)
        self.engine = engine
        self.config = config or RouterConfig()
        self.policy = policy or ShortestPathPolicy()
        self.stats = RouterStats()

        self.loc_rib = LocRib()
        #: Simulated time of the most recent Loc-RIB change per prefix —
        #: the per-router convergence instant used by distance analyses.
        self.last_best_change: Dict[str, float] = {}
        self._rib_in: Dict[str, AdjRibIn] = {}
        self._rib_out: Dict[str, AdjRibOut] = {}
        self._originated: Set[str] = set()
        #: Root cause of the most recent event that changed the Loc-RIB,
        #: per prefix — copied into outgoing updates.
        self._current_cause: Dict[str, Optional[RootCause]] = {}

        self.damping: Optional[DampingManager] = None
        if self.config.damping is not None:
            self.damping = DampingManager(
                engine, self.config.damping, name, self._on_reuse
            )
        self.rcn_history = RootCauseHistory()
        self.selective_filter = SelectiveDampingFilter()
        self.mrai = MraiLimiter(engine, self.config.mrai, name, rng, self._mrai_flush)
        #: Helper-side graceful-restart state for *crashed peers* (whether
        #: GR applies is decided by the crashed peer's advertised config).
        self.gr_helper = GracefulRestartHelper(engine, name, self._gr_stale_expired)
        #: Peers currently crashed: no session exists, so exports are
        #: withheld until the peer restarts and gets a full re-sync.
        self._crashed_peers: Set[str] = set()
        #: Causal tracer observing this router (set by Tracer.attach).
        self.trace: Optional["Tracer"] = None

    @property
    def graceful_restart_config(self) -> Optional[GracefulRestartConfig]:
        """The GR capability this router advertises to its neighbours."""
        return self.config.graceful_restart

    # ------------------------------------------------------------------
    # table access
    # ------------------------------------------------------------------

    def rib_in(self, peer: str) -> AdjRibIn:
        table = self._rib_in.get(peer)
        if table is None:
            table = AdjRibIn(peer)
            self._rib_in[peer] = table
        return table

    def rib_out(self, peer: str) -> AdjRibOut:
        table = self._rib_out.get(peer)
        if table is None:
            table = AdjRibOut(peer)
            self._rib_out[peer] = table
        return table

    def best_route(self, prefix: str) -> Optional[Route]:
        """The current Loc-RIB entry for ``prefix`` (``None`` if unreachable)."""
        return self.loc_rib.route(prefix)

    def has_route(self, prefix: str) -> bool:
        return self.loc_rib.route(prefix) is not None

    # ------------------------------------------------------------------
    # origination
    # ------------------------------------------------------------------

    def originate(self, prefix: str, cause: Optional[RootCause] = None) -> None:
        """Start originating ``prefix`` locally (announce to peers)."""
        self._originated.add(prefix)
        self._reselect(prefix, cause)

    def withdraw_origination(self, prefix: str, cause: Optional[RootCause] = None) -> None:
        """Stop originating ``prefix`` (withdraw from peers)."""
        self._originated.discard(prefix)
        self._reselect(prefix, cause)

    def originates(self, prefix: str) -> bool:
        return prefix in self._originated

    # ------------------------------------------------------------------
    # update processing
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, UpdateMessage):
            raise TypeError(f"{self.name}: unexpected payload {payload!r}")
        self.process_update(message.src, payload)

    def process_update(self, peer: str, update: UpdateMessage) -> None:
        """Run the full receive pipeline for one update from ``peer``."""
        self.stats.updates_received += 1
        if update.is_withdrawal:
            self.stats.withdrawals_received += 1
        else:
            self.stats.announcements_received += 1

        # A restarted peer refreshing a retained route clears its stale
        # mark *before* classification: a same-path re-announcement then
        # falls through to the DUPLICATE early-return below — no penalty
        # charge, which is exactly graceful restart's damping benefit.
        if self.gr_helper.helping(peer):
            self.gr_helper.note_update(peer, update.prefix)

        # Receiver-side loop protection (sender-side split horizon should
        # already prevent this; drop defensively).
        if update.as_path is not None and self.name in update.as_path:
            return

        table = self.rib_in(peer)
        kind = table.classify(update.prefix, update.as_path)
        if kind is UpdateKind.DUPLICATE:
            self.stats.duplicates_ignored += 1
            return
        if kind is None and update.is_withdrawal:
            return  # withdrawal for a route the peer never announced

        table.apply(update.prefix, update.as_path, update.root_cause)

        if self.damping is not None and kind is not None:
            charge = self._should_charge(peer, kind, update)
            kind_for_penalty = self._penalty_kind(kind, update)
            self.damping.record_update(
                peer, update.prefix, kind_for_penalty, charge=charge
            )

        self._reselect(update.prefix, update.root_cause)

    def _should_charge(self, peer: str, kind: UpdateKind, update: UpdateMessage) -> bool:
        if self.config.rcn_enabled:
            return self.rcn_history.should_charge(peer, update.root_cause)
        if self.config.selective_enabled:
            return self.selective_filter.should_charge(peer, kind, update.preference)
        return True

    def _penalty_kind(self, kind: UpdateKind, update: UpdateMessage) -> UpdateKind:
        """The update kind used for the penalty increment.

        Plain damping penalises the *perceived* update (the receiver-side
        classification). RCN-enhanced damping penalises the *flap itself*
        (paper Section 7: "applying the damping penalty to the flap
        itself, as opposed to the perceived result of a flap"): a 'down'
        root cause charges the withdrawal penalty, an 'up' root cause the
        re-announcement penalty, regardless of how the flap manifests at
        this router.
        """
        if self.config.rcn_enabled and update.root_cause is not None:
            if update.root_cause.status == "down":
                return UpdateKind.WITHDRAWAL
            return UpdateKind.REANNOUNCEMENT
        return kind

    # ------------------------------------------------------------------
    # decision process
    # ------------------------------------------------------------------

    def _candidates(self, prefix: str) -> List[Tuple[str, Route]]:
        candidates: List[Tuple[str, Route]] = []
        if prefix in self._originated:
            candidates.append(
                (self.name, Route(prefix=prefix, as_path=(self.name,), learned_from=self.name))
            )
        for peer, table in self._rib_in.items():
            route = table.route(prefix)
            if route is None:
                continue
            if route.contains(self.name):
                continue
            if self.damping is not None and self.damping.is_suppressed(peer, prefix):
                continue
            candidates.append((peer, route))
        return candidates

    def _local_pref(self, peer: str, route: Route) -> int:
        if peer == self.name:
            return _SELF_ORIGINATED_PREF
        return self.policy.local_pref(self.name, peer, route)

    def _reselect(self, prefix: str, cause: Optional[RootCause]) -> bool:
        """Re-run path selection; on change, record the cause and export.

        Returns ``True`` when the Loc-RIB changed.
        """
        best = select_best(self._candidates(prefix), self._local_pref)
        changed = self.loc_rib.set_route(prefix, best[1] if best else None)
        if changed:
            self.stats.best_path_changes += 1
            self.last_best_change[prefix] = self.engine.now
            self._current_cause[prefix] = cause
            if self.trace is not None:
                route = self.loc_rib.route(prefix)
                self.trace.emit(
                    "select",
                    self.engine.now,
                    node=self.name,
                    cause=self.trace.context,
                    prefix=prefix,
                    path=list(route.as_path) if route is not None else None,
                )
            self._export(prefix)
        return changed

    def _on_reuse(self, peer: str, prefix: str) -> bool:
        """Damping reuse-timer callback; returns True when noisy."""
        entry = self.rib_in(peer).entry(prefix)
        cause = entry.root_cause if entry is not None else None
        return self._reselect(prefix, cause)

    # ------------------------------------------------------------------
    # export path
    # ------------------------------------------------------------------

    def _desired_announcement(self, peer: str, prefix: str) -> Optional[Route]:
        """The route this router should currently be announcing to
        ``peer`` for ``prefix``, or ``None`` (withdraw / nothing)."""
        best = self.loc_rib.route(prefix)
        if best is None:
            return None
        if best.learned_from == self.name:
            announced_path = best.as_path  # self-originated, already starts with us
        else:
            announced_path = (self.name,) + best.as_path
        if peer in announced_path:
            return None  # sender-side loop prevention (covers learned-from peer)
        if not self.policy.permits_export(self.name, best, peer):
            return None
        return Route(prefix=prefix, as_path=announced_path, learned_from=self.name)

    def _export(self, prefix: str) -> None:
        for peer in self.neighbors:
            self._sync_peer(peer, prefix)

    def _sync_peer(self, peer: str, prefix: str) -> None:
        """Bring ``peer``'s Adj-RIB-Out in line with the Loc-RIB, sending
        a withdrawal immediately or an announcement through MRAI."""
        if peer in self._crashed_peers:
            return  # no session; the peer gets a full re-sync on restart
        desired = self._desired_announcement(peer, prefix)
        table = self.rib_out(peer)
        current = table.announced_route(prefix)
        if desired is None:
            if current is None:
                return
            if self.config.mrai.apply_to_withdrawals and not self.mrai.may_send_now(peer):
                self.mrai.defer(peer, prefix)
                return
            self._send_withdrawal(peer, prefix)
            if self.config.mrai.apply_to_withdrawals:
                self.mrai.note_sent(peer)
            return
        if current is not None and (
            current.as_path is desired.as_path or current.as_path == desired.as_path
        ):
            return
        if not self.mrai.may_send_now(peer):
            self.mrai.defer(peer, prefix)
            return
        self._send_announcement(peer, desired)
        self.mrai.note_sent(peer)

    def _mrai_flush(self, peer: str, prefixes: Set[str]) -> bool:
        """MRAI expiry: re-evaluate each deferred prefix against current
        state and send whatever delta remains. Returns True if anything
        was sent (the limiter then restarts the timer)."""
        table = self.rib_out(peer)
        sent = False
        for prefix in sorted(prefixes):
            desired = self._desired_announcement(peer, prefix)
            current = table.announced_route(prefix)
            if desired is None:
                if current is not None:
                    self._send_withdrawal(peer, prefix)
                    sent = True
            elif current is None or (
                current.as_path is not desired.as_path
                and current.as_path != desired.as_path
            ):
                self._send_announcement(peer, desired)
                sent = True
        return sent

    def _send_announcement(self, peer: str, route: Route) -> None:
        table = self.rib_out(peer)
        entry = table.entry(route.prefix)
        preference = compare_paths(entry.last_announced_length, route.path_length)
        cause = self._current_cause.get(route.prefix) if self.config.attach_root_cause else None
        update = UpdateMessage(
            prefix=route.prefix,
            as_path=route.as_path,
            root_cause=cause,
            preference=preference,
        )
        table.record_announcement(route.prefix, route)
        self.stats.updates_sent += 1
        self.stats.announcements_sent += 1
        self.send(peer, update)

    def _send_withdrawal(self, peer: str, prefix: str) -> None:
        cause = self._current_cause.get(prefix) if self.config.attach_root_cause else None
        update = UpdateMessage(prefix=prefix, as_path=None, root_cause=cause)
        self.rib_out(peer).record_withdrawal(prefix)
        self.stats.updates_sent += 1
        self.stats.withdrawals_sent += 1
        self.send(peer, update)

    # ------------------------------------------------------------------
    # session life cycle
    # ------------------------------------------------------------------

    def on_link_state(self, neighbor: str, up: bool) -> None:
        """BGP session handling for a physical link event.

        Down: every route learned from the neighbour becomes an implicit
        withdrawal (optionally charged — see
        :attr:`RouterConfig.charge_on_session_reset`), and the
        Adj-RIB-Out for the neighbour is forgotten since the session's
        state is gone. Up: the current Loc-RIB is re-advertised to the
        neighbour, as a fresh session exchange would.

        Damping state deliberately survives the session bounce: penalties
        keep decaying and suppressed entries stay suppressed, exactly as
        a real router's damping history does.
        """
        if up:
            self._session_up(neighbor)
        else:
            self._session_down(neighbor)

    def _session_down(self, peer: str) -> None:
        self._withdraw_peer_routes(peer, list(self.rib_in(peer).prefixes()))
        # The peer's view of us is gone with the session.
        self._rib_out[peer] = AdjRibOut(peer)

    def _session_up(self, peer: str) -> None:
        for prefix, _ in list(self.loc_rib):
            self._sync_peer(peer, prefix)

    def _withdraw_peer_routes(self, peer: str, prefixes: List[str]) -> None:
        """Treat each of ``prefixes`` learned from ``peer`` as implicitly
        withdrawn (session loss or graceful-restart stale expiry)."""
        table = self.rib_in(peer)
        for prefix in prefixes:
            entry = table.entry(prefix)
            if entry is None or entry.route is None:
                continue
            kind = table.classify(prefix, None)
            table.apply(prefix, None, entry.root_cause)
            if (
                self.damping is not None
                and kind is not None
                and self.config.charge_on_session_reset
            ):
                self.damping.record_update(peer, prefix, kind)
            self._reselect(prefix, entry.root_cause)

    # ------------------------------------------------------------------
    # crash / restart life cycle (fault injection)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the control plane: RIBs, damping state, MRAI state, and
        helper-mode state all die with the process. Locally originated
        prefixes are remembered (they are configuration, not control
        state) and re-announced on :meth:`restart`.

        Called by :meth:`repro.net.network.Network.crash_router`, which
        also notifies the neighbours; while crashed, the network drops
        messages addressed to this router.
        """
        super().crash()
        self.stats.crashes += 1
        # Quiesce every timer this router owns before discarding the
        # state behind it (armed timers surviving their owner are the
        # runtime shape of timerlint TIM001).
        for peer in self.neighbors:
            self.mrai.reset_peer(peer)
        if self.damping is not None:
            self.damping.cancel_all_timers()
        self.gr_helper.cancel_all_timers()
        self._rib_in.clear()
        self._rib_out.clear()
        self.loc_rib = LocRib()
        self._current_cause.clear()
        self.rcn_history = RootCauseHistory()
        self.selective_filter.clear()

    def restart(self) -> None:
        """Come back up with fresh control state and re-originate local
        prefixes. Damping penalties did not survive the crash: a fresh
        :class:`~repro.core.damping.DampingManager` replaces the dead one
        (observers and tracer wiring carry over so metrics keep seeing
        this router)."""
        super().restart()
        self.stats.restarts += 1
        if self.config.damping is not None and self.damping is not None:
            predecessor = self.damping
            self.damping = DampingManager(
                self.engine, self.config.damping, self.name, self._on_reuse
            )
            self.damping.adopt_observers(predecessor)
        for prefix in sorted(self._originated):
            self._reselect(prefix, None)

    def on_peer_crash(
        self, peer: str, graceful: Optional[GracefulRestartConfig] = None
    ) -> None:
        """The session to ``peer`` died with the peer's control plane.

        Hard crash (``graceful is None``): identical to a session loss —
        implicit withdrawal of everything learned from the peer. With
        graceful restart, routes learned from the peer stay in the
        Adj-RIB-In marked *stale* (still eligible for the decision
        process) under the peer's restart timer; see
        :mod:`repro.bgp.graceful_restart`.
        """
        self._crashed_peers.add(peer)
        # Deferred MRAI deltas belong to the dead session; the restarted
        # peer gets a full re-sync instead.
        self.mrai.reset_peer(peer)
        if graceful is None:
            self._session_down(peer)
            return
        table = self.rib_in(peer)
        prefixes = []
        for prefix in table.prefixes():
            entry = table.entry(prefix)
            if entry is not None and entry.route is not None:
                prefixes.append(prefix)
        self.gr_helper.peer_crashed(
            peer,
            prefixes,
            graceful,
            trace_cause=self.trace.context if self.trace is not None else None,
        )
        # The peer's view of us died either way.
        self._rib_out[peer] = AdjRibOut(peer)

    def on_peer_restart(self, peer: str) -> None:
        """``peer`` is back: re-establish the session and advertise our
        current table. Stale routes (if we are a GR helper for the peer)
        stay retained until refreshed or their restart timer expires."""
        self._crashed_peers.discard(peer)
        self._session_up(peer)

    def _gr_stale_expired(
        self, peer: str, prefixes: List[str], trace_cause: Optional[int]
    ) -> None:
        """The GR restart timer fired with routes still stale: flush them
        as implicit withdrawals (charged per ``charge_on_session_reset``,
        like any other session-loss withdrawal)."""
        self.stats.stale_routes_flushed += len(prefixes)
        trace = self.trace
        if trace is not None:
            rid = trace.emit(
                "gr_expire",
                self.engine.now,
                node=self.name,
                cause=trace_cause,
                peer=peer,
                prefixes=list(prefixes),
            )
            # The flush's withdrawals/charges descend from the expiry.
            trace.set_context(rid)
        self._withdraw_peer_routes(peer, prefixes)

    # ------------------------------------------------------------------
    # experiment support
    # ------------------------------------------------------------------

    def reset_damping(self) -> None:
        """Forget all accumulated penalties and suppressions.

        Called by scenarios after the warm-up phase so that the measured
        flapping episode starts from a clean damping state (the paper's
        "every node learns a stable route" precondition). RIB contents,
        the RCN history, and protocol counters are preserved.
        """
        if self.config.damping is not None and self.damping is not None:
            # Quiesce the old manager first: its armed reuse timers would
            # otherwise keep firing into the discarded instance (TIM001's
            # runtime shape; scenarios call this post-drain, but the reset
            # must be safe mid-flight too).
            self.damping.cancel_all_timers()
            self.damping = DampingManager(
                self.engine, self.config.damping, self.name, self._on_reuse
            )
        self.selective_filter.clear()

    def dump_state(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """Structured snapshot of this router's tables for one prefix (or
        all prefixes when ``prefix`` is ``None``) — debugging, assertions,
        and trace tooling.

        The snapshot contains plain data only (names, path tuples,
        floats), so it can be compared, serialised, or diffed freely.
        """
        prefixes: Set[str] = set()
        if prefix is not None:
            prefixes.add(prefix)
        else:
            prefixes.update(self.loc_rib.prefixes())
            prefixes.update(self._originated)
            for table in self._rib_in.values():
                prefixes.update(table.prefixes())

        now = self.engine.now
        snapshot: Dict[str, object] = {
            "router": self.name,
            "time": now,
            "alive": self.alive,
            "prefixes": {},
        }
        for p in sorted(prefixes):
            best = self.loc_rib.route(p)
            rib_in: Dict[str, object] = {}
            for peer, table in sorted(self._rib_in.items()):
                entry = table.entry(p)
                if entry is None:
                    continue
                rib_in[peer] = {
                    "path": entry.route.as_path if entry.route else None,
                    "ever_announced": entry.ever_announced,
                    "stale": self.gr_helper.is_stale(peer, p),
                    "suppressed": (
                        self.damping.is_suppressed(peer, p)
                        if self.damping is not None
                        else False
                    ),
                    "penalty": (
                        self.damping.penalty_value(peer, p, now)
                        if self.damping is not None
                        else 0.0
                    ),
                }
            rib_out = {
                peer: (route.as_path if route is not None else None)
                for peer, table in sorted(self._rib_out.items())
                for route in [table.announced_route(p)]
            }
            snapshot["prefixes"][p] = {  # type: ignore[index]
                "best": best.as_path if best else None,
                "originated": p in self._originated,
                "rib_in": rib_in,
                "rib_out": rib_out,
            }
        return snapshot

    def suppressed_entry_count(self) -> int:
        """Number of currently suppressed (peer, prefix) entries."""
        if self.damping is None:
            return 0
        return len(self.damping.suppressed_entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.config.damping_enabled:
            flags.append("damping")
        if self.config.rcn_enabled:
            flags.append("rcn")
        if self.config.selective_enabled:
            flags.append("selective")
        return f"BgpRouter({self.name!r}, {'+'.join(flags) or 'plain'})"

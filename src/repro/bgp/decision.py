"""The BGP decision process.

Given the usable candidate routes for a prefix (one per peer, already
filtered for suppression and loops by the router), pick the best:

1. highest local preference (assigned by the routing policy — constant
   under shortest-path routing, relationship-based under no-valley),
2. shortest AS path,
3. lowest peer name (a deterministic stand-in for router-ID tie-breaking).

The comparison is a total order over candidates, so selection is
deterministic and independent of iteration order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.bgp.attrs import Route

#: ``local_pref(peer, route) -> int`` — supplied by the routing policy.
LocalPrefFunction = Callable[[str, Route], int]


def preference_key(
    peer: str, route: Route, local_pref: LocalPrefFunction
) -> Tuple[int, int, str]:
    """Sort key such that the *minimum* is the best route."""
    return (-local_pref(peer, route), route.path_length, peer)


def select_best(
    candidates: Sequence[Tuple[str, Route]],
    local_pref: LocalPrefFunction,
) -> Optional[Tuple[str, Route]]:
    """Pick the best ``(peer, route)`` from ``candidates``.

    Returns ``None`` when there are no candidates (the prefix is
    unreachable).
    """
    best: Optional[Tuple[str, Route]] = None
    best_key: Optional[Tuple[int, int, str]] = None
    for peer, route in candidates:
        key = preference_key(peer, route, local_pref)
        if best_key is None or key < best_key:
            best_key = key
            best = (peer, route)
    return best


def rank_candidates(
    candidates: Sequence[Tuple[str, Route]],
    local_pref: LocalPrefFunction,
) -> List[Tuple[str, Route]]:
    """All candidates ordered best-first (useful for tests and debugging)."""
    # Decorate-sort-undecorate instead of a key lambda: no per-call
    # closure allocation, and the enumerate index breaks preference ties
    # without ever comparing Route objects.
    decorated = sorted(
        (preference_key(peer, route, local_pref), index, peer, route)
        for index, (peer, route) in enumerate(candidates)
    )
    return [(peer, route) for _key, _index, peer, route in decorated]

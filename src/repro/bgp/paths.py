"""Flyweight interning of AS paths.

At 10k+ nodes a flap episode materialises millions of :class:`Route`
objects whose AS paths are drawn from a far smaller population — every
router on a propagation tree re-announces the *same* path suffix with
one AS prepended. Storing each path tuple once and sharing the object
cuts resident memory roughly in half on large graphs and makes
path-equality checks (duplicate detection, Adj-RIB-Out deltas, Loc-RIB
no-op updates) pointer comparisons in the common case.

:class:`PathTable` maps path tuples to dense small integers. Interning
is append-only: the id of a path never changes for the lifetime of the
table, and pickling preserves the id assignment exactly (the table
pickles as its ordered path list and rebuilds the same mapping), which
is what lets warm-state snapshots round-trip without perturbing ids.

The canonical-object contract is deliberately *observation-free*:
``canonical(p) == p`` always, so code that compares, hashes, slices or
iterates paths behaves identically whether or not its inputs were
interned. Digest identity on every existing figure is the regression
test for that contract (see docs/SCALING.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

Path = Tuple[str, ...]


class PathTable:
    """Append-only intern table mapping AS-path tuples to dense ids."""

    __slots__ = ("_ids", "_paths")

    def __init__(self, paths: Iterable[Path] = ()) -> None:
        self._ids: Dict[Path, int] = {}
        self._paths: List[Path] = []
        for path in paths:
            self.intern(path)

    def intern(self, path: Path) -> int:
        """The id for ``path``, assigning the next dense id if new."""
        path_id = self._ids.get(path)
        if path_id is None:
            path = tuple(path)
            path_id = len(self._paths)
            self._paths.append(path)
            self._ids[path] = path_id
        return path_id

    def canonical(self, path: Path) -> Path:
        """The one shared tuple object equal to ``path``.

        Interns ``path`` on first sight; all later calls with an equal
        tuple return the same object, so ``==`` can short-circuit to
        ``is`` for interned paths.
        """
        return self._paths[self.intern(path)]

    def resolve(self, path_id: int) -> Path:
        """The path tuple registered under ``path_id``."""
        return self._paths[path_id]

    def id_of(self, path: Path) -> int:
        """The id of an already-interned path (KeyError if unknown)."""
        return self._ids[path]

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, path: object) -> bool:
        return path in self._ids

    def stats(self) -> Dict[str, int]:
        """Occupancy counters for diagnostics (``topo stats``/SCALING.md)."""
        return {
            "paths": len(self._paths),
            "hops": sum(len(p) for p in self._paths),
        }

    def __reduce__(self) -> Tuple[type, Tuple[Tuple[Path, ...]]]:
        # Pickle as the ordered path list: rebuilding in order reassigns
        # identical ids, so snapshots restored in a worker resolve the
        # same id -> path mapping they were captured with.
        return (PathTable, (tuple(self._paths),))


# One process-wide table: the flyweight pool is only useful if every
# Route construction in the process shares it. Sweep workers each build
# their own as routes are re-interned on construction after unpickling.
_GLOBAL_TABLE = PathTable()


def global_path_table() -> PathTable:
    """The process-wide intern table used by :class:`repro.bgp.attrs.Route`."""
    return _GLOBAL_TABLE


def intern_path(path: Path) -> Path:
    """Canonicalize ``path`` through the process-wide table."""
    return _GLOBAL_TABLE.canonical(path)

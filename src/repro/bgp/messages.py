"""BGP update messages.

One :class:`UpdateMessage` carries either an announcement (``as_path`` set)
or a withdrawal (``as_path`` is ``None``) for a single prefix, plus the
optional attributes this reproduction studies: the Root Cause Notification
(:class:`repro.core.rcn.RootCause`) and the selective-damping relative
preference tag.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.rcn import RootCause
from repro.core.selective import RelativePreference
from repro.errors import ProtocolError

_update_ids = itertools.count(1)


@dataclass(frozen=True)
class UpdateMessage:
    """A single-prefix BGP UPDATE.

    ``as_path`` is the path as announced by the sender (sender's ASN
    first); ``None`` means the prefix is withdrawn. ``root_cause`` is
    propagated whether or not receivers use it for damping — only the
    damping filter is switched by configuration, as in the paper.
    """

    prefix: str
    as_path: Optional[Tuple[str, ...]]
    root_cause: Optional[RootCause] = None
    preference: Optional[RelativePreference] = None
    update_id: int = field(default_factory=lambda: next(_update_ids))

    def __post_init__(self) -> None:
        if not self.prefix:
            raise ProtocolError("update prefix must be non-empty")
        if self.as_path is not None and not self.as_path:
            raise ProtocolError("announcement must carry a non-empty AS path")

    @property
    def is_withdrawal(self) -> bool:
        return self.as_path is None

    @property
    def is_announcement(self) -> bool:
        return self.as_path is not None

    def __str__(self) -> str:
        if self.is_withdrawal:
            body = "withdraw"
        else:
            assert self.as_path is not None
            body = f"announce [{' '.join(self.as_path)}]"
        rc = f" rc={self.root_cause}" if self.root_cause else ""
        return f"UPDATE({self.prefix}: {body}{rc})"

"""Unit tests for the RFC-4724-style helper-side state machine."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.bgp.graceful_restart import GracefulRestartConfig, GracefulRestartHelper
from repro.errors import ConfigurationError
from repro.sim.engine import Engine


def _helper(engine: Engine) -> Tuple[GracefulRestartHelper, List[Tuple[str, List[str], Optional[int]]]]:
    flushes: List[Tuple[str, List[str], Optional[int]]] = []

    def on_expired(peer: str, prefixes: List[str], cause: Optional[int]) -> None:
        flushes.append((peer, prefixes, cause))

    return GracefulRestartHelper(engine, "r1", on_expired), flushes


def test_config_requires_positive_restart_time():
    with pytest.raises(ConfigurationError):
        GracefulRestartConfig(restart_time=0.0)


def test_peer_crashed_enters_helper_mode(engine):
    helper, _ = _helper(engine)
    config = GracefulRestartConfig(restart_time=60.0)
    assert helper.peer_crashed("r2", ["p0", "p1"], config) == 2
    assert helper.helping("r2")
    assert helper.is_stale("r2", "p0")
    assert helper.stale_prefixes("r2") == ["p0", "p1"]
    assert helper.stale_count() == 2


def test_crash_with_no_routes_does_not_enter_helper_mode(engine):
    helper, _ = _helper(engine)
    assert helper.peer_crashed("r2", [], GracefulRestartConfig()) == 0
    assert not helper.helping("r2")
    # No timer armed for an empty retention: nothing ever fires.
    engine.run_until_idle(max_time=1_000.0)
    assert helper.expiry_flushes == 0


def test_refresh_clears_stale_and_last_refresh_leaves_helper_mode(engine):
    helper, flushes = _helper(engine)
    helper.peer_crashed("r2", ["p0", "p1"], GracefulRestartConfig(restart_time=60.0))
    helper.note_update("r2", "p0")
    assert not helper.is_stale("r2", "p0")
    assert helper.helping("r2")
    helper.note_update("r2", "p1")
    assert not helper.helping("r2")
    # Timer was cancelled: no flush ever fires.
    engine.run_until_idle(max_time=1_000.0)
    assert flushes == []


def test_expiry_flushes_remaining_stale_sorted(engine):
    helper, flushes = _helper(engine)
    helper.peer_crashed(
        "r2", ["pz", "pa"], GracefulRestartConfig(restart_time=30.0), trace_cause=7
    )
    engine.run_until_idle(max_time=100.0)
    assert flushes == [("r2", ["pa", "pz"], 7)]
    assert helper.expiry_flushes == 1
    assert not helper.helping("r2")


def test_note_update_for_unknown_peer_is_noop(engine):
    helper, _ = _helper(engine)
    helper.note_update("stranger", "p0")  # must not raise


def test_second_crash_rearms_timer_and_merges_stale(engine):
    helper, flushes = _helper(engine)
    helper.peer_crashed("r2", ["p0"], GracefulRestartConfig(restart_time=50.0))
    # Advance the clock to t=30 (run_until_idle only moves the clock to
    # executed events, so give it one), then bounce the peer again: the
    # hold is re-armed from t=30, so nothing flushes at the original
    # t=50 deadline and the eventual flush carries both prefixes.
    engine.schedule_at(30.0, lambda: None, actor="test", tag="tick")
    engine.run_until_idle(max_time=30.0)
    helper.peer_crashed("r2", ["p1"], GracefulRestartConfig(restart_time=50.0))
    engine.run_until_idle(max_time=70.0)
    assert flushes == []
    engine.run_until_idle(max_time=100.0)
    assert flushes == [("r2", ["p0", "p1"], None)]


def test_cancel_all_timers_quiesces_helper(engine):
    helper, flushes = _helper(engine)
    helper.peer_crashed("r2", ["p0"], GracefulRestartConfig(restart_time=10.0))
    helper.peer_crashed("r3", ["p1"], GracefulRestartConfig(restart_time=10.0))
    assert helper.cancel_all_timers() == 2
    assert helper.stale_count() == 0
    engine.run_until_idle(max_time=100.0)
    assert flushes == []

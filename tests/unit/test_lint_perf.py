"""Unit tests for the perflint (PERF0xx) catalogue and its hot-set model.

Every rule gets a seeded fixture that must fire and compliant code that
must stay silent. Severity scoping is exercised both ways: the same
hazard is a ``warning`` inside the computed hot set (phase roots,
callback registrations, their transitive callees) and an advisory
``info`` outside it. The :class:`~repro.lint.perf.HotSetResolver` is
tested directly against synthetic profiles (v2 sub-phases, the v1
``episode`` shim, missing/corrupt profiles), and the suppression parser
is exercised for all four comment prefixes.
"""

from __future__ import annotations

import ast
import json
import textwrap

import pytest

from repro.lint import (
    HotSetResolver,
    ProjectGraph,
    lint_source,
    make_config,
    summarize_file,
)
from repro.lint.perf import PERF_RULE_IDS, PHASE_ROOTS

#: A profile path that never exists: the resolver then treats every
#: profiled phase as hot, so heat depends only on the call graph.
NO_PROFILE = "/nonexistent/profile.json"


def perf_config(**kwargs):
    kwargs.setdefault("hot_profile", NO_PROFILE)
    return make_config(passes=("perf",), **kwargs)


def perf_findings(source: str, module: str = "repro.sample.fixture", **kwargs):
    report = lint_source(
        textwrap.dedent(source),
        path="fixture.py",
        config=perf_config(**kwargs),
        module=module,
    )
    assert not report.parse_errors
    return report.findings


def perf_ids(source: str, module: str = "repro.sample.fixture") -> set:
    return {f.rule_id for f in perf_findings(source, module=module)}


def graph_of(source: str, module: str, path: str = "fixture.py") -> ProjectGraph:
    tree = ast.parse(textwrap.dedent(source))
    return ProjectGraph([summarize_file(tree, path, module)])


# ----------------------------------------------------------------------
# PERF001 — closure/lambda allocation
# ----------------------------------------------------------------------


class TestPERF001:
    def test_fires_on_lambda_and_nested_def(self):
        findings = perf_findings(
            """
            def outer(items):
                key = lambda item: item.penalty

                def helper(item):
                    return item.peer

                return sorted(items, key=key), helper
            """
        )
        perf001 = [f for f in findings if f.rule_id == "PERF001"]
        assert len(perf001) == 2
        assert any("lambda" in f.message for f in perf001)
        assert any("helper" in f.message for f in perf001)

    def test_quiet_on_module_level_functions(self):
        assert "PERF001" not in perf_ids(
            """
            def key(item):
                return item.penalty

            def outer(items):
                return sorted(items, key=key)
            """
        )


# ----------------------------------------------------------------------
# PERF002 — container displays per call / per iteration
# ----------------------------------------------------------------------


class TestPERF002:
    def test_fires_on_container_inside_loop(self):
        assert "PERF002" in perf_ids(
            """
            def classify(items):
                out = []
                for item in items:
                    out.append({"peer": item})
                return out
            """
        )

    def test_fires_on_comprehension_inside_loop(self):
        assert "PERF002" in perf_ids(
            """
            def scan(routers):
                total = 0
                for router in routers:
                    total += len([p for p in router])
                return total
            """
        )

    def test_fires_on_wide_dict_rebuilt_per_call(self):
        assert "PERF002" in perf_ids(
            """
            def describe(a, b, c):
                return {"a": a, "b": b, "c": c}
            """
        )

    def test_quiet_on_small_dict_outside_loops(self):
        assert "PERF002" not in perf_ids(
            """
            def describe(a, b):
                return {"a": a, "b": b}
            """
        )


# ----------------------------------------------------------------------
# PERF003 — repeated attribute chains in loops
# ----------------------------------------------------------------------


class TestPERF003:
    def test_fires_on_repeated_chain(self):
        findings = perf_findings(
            """
            class Sweep:
                def total(self, items):
                    total = 0.0
                    for item in items:
                        if item > self.params.cutoff:
                            total += self.params.cutoff
                    return total
            """
        )
        messages = [f.message for f in findings if f.rule_id == "PERF003"]
        assert len(messages) == 1
        assert "self.params.cutoff" in messages[0]

    def test_quiet_when_bound_to_local_before_loop(self):
        assert "PERF003" not in perf_ids(
            """
            class Sweep:
                def total(self, items):
                    cutoff = self.params.cutoff
                    total = 0.0
                    for item in items:
                        if item > cutoff:
                            total += cutoff
                    return total
            """
        )

    def test_quiet_when_chain_rooted_at_loop_target(self):
        assert "PERF003" not in perf_ids(
            """
            def walk(entries):
                out = []
                for entry in entries:
                    out.append(entry.route.prefix + entry.route.prefix)
                return out
            """
        )


# ----------------------------------------------------------------------
# PERF004 — eager string formatting
# ----------------------------------------------------------------------


class TestPERF004:
    def test_fires_on_fstring_format_and_percent(self):
        ids = [
            f.rule_id
            for f in perf_findings(
                """
                def fmt(peer, prefix):
                    a = f"peer {peer}"
                    b = "prefix {}".format(prefix)
                    c = "pair %s" % peer
                    return a, b, c
                """
            )
            if f.rule_id == "PERF004"
        ]
        assert len(ids) == 3

    def test_exempts_raise_and_assert_statements(self):
        assert "PERF004" not in perf_ids(
            """
            def guard(peer, delay):
                assert delay >= 0, f"negative delay for {peer}"
                if delay > 3600:
                    raise ValueError("delay {} too large".format(delay))
            """
        )


# ----------------------------------------------------------------------
# PERF005 — module-level default containers copied per call
# ----------------------------------------------------------------------


class TestPERF005:
    def test_fires_on_dict_factory_and_copy_method(self):
        findings = perf_findings(
            """
            DEFAULTS = {"suppress": 2000.0}

            def with_overrides(overrides):
                merged = dict(DEFAULTS)
                merged.update(overrides)
                return merged

            def snapshot():
                return DEFAULTS.copy()
            """
        )
        assert sum(1 for f in findings if f.rule_id == "PERF005") == 2

    def test_quiet_on_non_constant_names(self):
        assert "PERF005" not in perf_ids(
            """
            def merge(base, overrides):
                merged = dict(base)
                merged.update(overrides)
                return merged
            """
        )


# ----------------------------------------------------------------------
# PERF006 — non-__slots__ instantiation
# ----------------------------------------------------------------------


class TestPERF006:
    def test_fires_on_same_file_class_without_slots(self):
        assert "PERF006" in perf_ids(
            """
            class Outcome:
                def __init__(self, value):
                    self.value = value

            def record(value):
                return Outcome(value)
            """
        )

    def test_quiet_on_slotted_class(self):
        assert "PERF006" not in perf_ids(
            """
            class Outcome:
                __slots__ = ("value",)

                def __init__(self, value):
                    self.value = value

            def record(value):
                return Outcome(value)
            """
        )

    def test_quiet_on_unknown_names(self):
        # No same-file definition -> no claim about its layout.
        assert "PERF006" not in perf_ids(
            """
            def fail(message):
                return ValueError(message)
            """
        )


# ----------------------------------------------------------------------
# PERF007 — list growth by concatenation
# ----------------------------------------------------------------------


class TestPERF007:
    def test_fires_on_augmented_and_rebinding_concat(self):
        findings = perf_findings(
            """
            def gather(items):
                out = []
                for item in items:
                    out += [item]
                return out

            def gather_slow(items):
                out = []
                for item in items:
                    out = out + [item]
                return out
            """
        )
        assert sum(1 for f in findings if f.rule_id == "PERF007") == 2

    def test_quiet_on_append(self):
        assert "PERF007" not in perf_ids(
            """
            def gather(items):
                out = []
                for item in items:
                    out.append(item)
                return out
            """
        )


# ----------------------------------------------------------------------
# PERF008 — materialized membership tests
# ----------------------------------------------------------------------


class TestPERF008:
    def test_fires_on_keys_view_and_list_materialization(self):
        findings = perf_findings(
            """
            def probe(table, key):
                if key in table.keys():
                    return True
                return key in list(table)
            """
        )
        assert sum(1 for f in findings if f.rule_id == "PERF008") == 2

    def test_quiet_on_direct_mapping_test(self):
        assert "PERF008" not in perf_ids(
            """
            def probe(table, key):
                return key in table
            """
        )


# ----------------------------------------------------------------------
# PERF009 — eagerly formatted logging
# ----------------------------------------------------------------------


class TestPERF009:
    def test_fires_on_fstring_logger_argument(self):
        assert "PERF009" in perf_ids(
            """
            def trace(log, peer, penalty):
                log.debug(f"peer {peer} penalty {penalty}")
            """
        )

    def test_quiet_on_lazy_percent_arguments(self):
        assert "PERF009" not in perf_ids(
            """
            def trace(log, peer, penalty):
                log.debug("peer %s penalty %s", peer, penalty)
            """
        )


# ----------------------------------------------------------------------
# PERF010 — constant containers rebuilt per call
# ----------------------------------------------------------------------


class TestPERF010:
    def test_fires_on_tuple_needing_runtime_construction(self):
        assert "PERF010" in perf_ids(
            """
            def is_edge(value):
                return value in (float("inf"), float("-inf"))
            """
        )

    def test_fires_on_constant_re_compile(self):
        assert "PERF010" in perf_ids(
            """
            import re

            def parse(text):
                return re.compile(r"[0-9]+").match(text)
            """
        )

    def test_quiet_on_pure_literal_displays(self):
        # The compiler folds these; no per-call allocation.
        assert "PERF010" not in perf_ids(
            """
            def is_small(value):
                return value in (1, 2, 3)
            """
        )


# ----------------------------------------------------------------------
# severity scoping by the hot set
# ----------------------------------------------------------------------


class TestHotSetSeverity:
    def test_phase_root_fixture_is_warning(self):
        # ``repro.sim.engine.Engine._execute`` is a timer_dispatch phase
        # root; with no profile on disk every phase is hot.
        findings = perf_findings(
            """
            class Engine:
                def _execute(self, event):
                    return f"event {event}"
            """,
            module="repro.sim.engine",
        )
        perf004 = [f for f in findings if f.rule_id == "PERF004"]
        assert len(perf004) == 1
        assert perf004[0].severity == "warning"
        assert "hot function" in perf004[0].message

    def test_unprofiled_fixture_is_info(self):
        findings = perf_findings(
            """
            def helper(event):
                return f"event {event}"
            """
        )
        perf004 = [f for f in findings if f.rule_id == "PERF004"]
        assert len(perf004) == 1
        assert perf004[0].severity == "info"
        assert "outside the profiled hot set" in perf004[0].message

    def test_callback_registration_makes_function_hot(self):
        findings = perf_findings(
            """
            class Owner:
                def arm(self, engine):
                    engine.schedule(5.0, self._fire, tag="reuse")

                def _fire(self):
                    return f"tick {self}"
            """
        )
        perf004 = [f for f in findings if f.rule_id == "PERF004"]
        assert len(perf004) == 1
        assert perf004[0].severity == "warning"

    def test_hot_callees_inherit_heat_transitively(self):
        findings = perf_findings(
            """
            def select_best(candidates, local_pref):
                return shared_helper(candidates)

            def shared_helper(candidates):
                return f"best of {candidates}"

            def unrelated(candidates):
                return f"copy of {candidates}"
            """,
            module="repro.bgp.decision",
        )
        severities = {
            f.line: f.severity for f in findings if f.rule_id == "PERF004"
        }
        assert len(severities) == 2
        assert sorted(severities.values()) == ["info", "warning"]

    def test_info_findings_never_block(self):
        report = lint_source(
            textwrap.dedent(
                """
                def helper(event):
                    return f"event {event}"
                """
            ),
            path="fixture.py",
            config=perf_config(),
            module="repro.sample.fixture",
        )
        assert report.findings
        assert not report.blocking_findings("warning")
        assert report.info_count == len(report.findings)


# ----------------------------------------------------------------------
# HotSetResolver against synthetic profiles
# ----------------------------------------------------------------------

_GRAPH_SOURCE = """
def select_best(candidates, local_pref):
    return shared_helper(candidates)

def shared_helper(candidates):
    return candidates

def unrelated(candidates):
    return list(candidates)
"""


class TestHotSetResolver:
    def graph(self) -> ProjectGraph:
        return graph_of(_GRAPH_SOURCE, "repro.bgp.decision")

    def test_threshold_filters_phases(self):
        resolver = HotSetResolver(
            self.graph(),
            {"decision_process": 0.60, "penalty_decay": 0.01},
            threshold=0.05,
        )
        assert resolver.hot_phases() == ["decision_process"]

    def test_setup_phases_never_count_as_hot(self):
        resolver = HotSetResolver(
            self.graph(), {"build": 0.90, "workload": 0.10}, threshold=0.05
        )
        assert resolver.hot_phases() == []

    def test_v1_episode_label_means_all_phases(self):
        resolver = HotSetResolver(self.graph(), {"episode": 1.0}, threshold=0.05)
        assert resolver.hot_phases() == sorted(PHASE_ROOTS)

    def test_missing_profile_means_all_phases(self):
        resolver = HotSetResolver(self.graph(), None, threshold=0.05)
        assert resolver.hot_phases() == sorted(PHASE_ROOTS)

    def test_hot_set_closes_over_call_graph(self):
        resolver = HotSetResolver(
            self.graph(), {"decision_process": 1.0}, threshold=0.05
        )
        hot = resolver.hot_set()
        assert "repro.bgp.decision.select_best" in hot
        assert "repro.bgp.decision.shared_helper" in hot
        assert "repro.bgp.decision.unrelated" not in hot

    def test_from_config_reads_profile_file(self, tmp_path):
        profile = tmp_path / "profile.json"
        profile.write_text(
            json.dumps(
                {
                    "schema": 2,
                    "phases": [
                        {"phase": "decision_process", "wall_seconds": 9.0},
                        {"phase": "penalty_decay", "wall_seconds": 1.0},
                        {"phase": "mrai_flush", "wall_seconds": 0.01},
                    ],
                }
            )
        )
        config = make_config(
            passes=("perf",), hot_profile=str(profile), hot_threshold=0.05
        )
        resolver = HotSetResolver.from_config(config, self.graph())
        assert resolver.hot_phases() == ["decision_process", "penalty_decay"]

    def test_from_config_corrupt_profile_falls_back_to_all_hot(self, tmp_path):
        profile = tmp_path / "profile.json"
        profile.write_text("{not json")
        config = make_config(passes=("perf",), hot_profile=str(profile))
        resolver = HotSetResolver.from_config(config, self.graph())
        assert resolver.hot_phases() == sorted(PHASE_ROOTS)

    def test_cold_profile_downgrades_phase_root_to_info(self, tmp_path):
        # A profile that spends everything in mrai_flush leaves the
        # decision-process roots cold -> info severity.
        profile = tmp_path / "profile.json"
        profile.write_text(
            json.dumps(
                {
                    "schema": 2,
                    "phases": [{"phase": "mrai_flush", "wall_seconds": 1.0}],
                }
            )
        )
        findings = perf_findings(
            """
            def select_best(candidates, local_pref):
                return f"best of {candidates}"
            """,
            module="repro.bgp.decision",
            hot_profile=str(profile),
        )
        perf004 = [f for f in findings if f.rule_id == "PERF004"]
        assert len(perf004) == 1
        assert perf004[0].severity == "info"


# ----------------------------------------------------------------------
# catalogue completeness
# ----------------------------------------------------------------------


def test_catalogue_ids_are_sequential():
    assert PERF_RULE_IDS == tuple(f"PERF{n:03d}" for n in range(1, 11))


@pytest.mark.parametrize("rule_id", PERF_RULE_IDS)
def test_every_perf_rule_is_registered(rule_id):
    from repro.lint import all_rule_ids

    assert rule_id in all_rule_ids()


# ----------------------------------------------------------------------
# suppression prefixes (pass-scoped and generic)
# ----------------------------------------------------------------------

_HOT_FSTRING = """
class Engine:
    def _execute(self, event):
        return f"event {event}"  # {directive}
"""


def _suppression_report(directive: str):
    return lint_source(
        textwrap.dedent(_HOT_FSTRING.replace("{directive}", directive)),
        path="fixture.py",
        config=perf_config(),
        module="repro.sim.engine",
    )


class TestSuppressionPrefixes:
    def test_perflint_prefix_suppresses_perf_finding(self):
        report = _suppression_report("perflint: disable=PERF004")
        assert "PERF004" not in {f.rule_id for f in report.findings}
        assert "PERF004" in {f.rule_id for f in report.suppressed}

    def test_generic_lint_prefix_suppresses_perf_finding(self):
        report = _suppression_report("lint: disable=PERF004")
        assert "PERF004" not in {f.rule_id for f in report.findings}
        assert "PERF004" in {f.rule_id for f in report.suppressed}

    def test_foreign_pass_prefix_is_inert(self):
        # A semlint-scoped directive must not silence a PERF finding.
        report = _suppression_report("semlint: disable=PERF004")
        assert "PERF004" in {f.rule_id for f in report.findings}

    def test_perflint_disable_all_scopes_to_perf_pass_only(self):
        source = """
        import time

        class Engine:
            def _execute(self, event):
                stamp = time.time()
                return f"event {event} at {stamp}"  # perflint: disable=all
        """
        report = lint_source(
            textwrap.dedent(source),
            path="fixture.py",
            config=make_config(passes=("all",), hot_profile=NO_PROFILE),
            module="repro.sim.engine",
        )
        found = {f.rule_id for f in report.findings}
        suppressed = {f.rule_id for f in report.suppressed}
        assert "PERF004" in suppressed
        assert "PERF004" not in found
        # The determinism finding from the other pass survives.
        assert "DET001" in found

    def test_semlint_prefix_suppresses_sem_finding(self):
        source = """
        def should_suppress(entry):
            return entry.penalty > 3000.0{directive}
        """
        config = make_config(passes=("sem",))
        noisy = lint_source(
            textwrap.dedent(source.replace("{directive}", "")),
            path="fixture.py",
            config=config,
            module="repro.core.fixture",
        )
        assert "SEM003" in {f.rule_id for f in noisy.findings}
        silenced = lint_source(
            textwrap.dedent(
                source.replace("{directive}", "  # semlint: disable=SEM003")
            ),
            path="fixture.py",
            config=config,
            module="repro.core.fixture",
        )
        assert "SEM003" not in {f.rule_id for f in silenced.findings}
        assert "SEM003" in {f.rule_id for f in silenced.suppressed}

    def test_timerlint_prefix_suppresses_tim_finding(self):
        source = """
        def arm(engine, callback):
            engine.schedule(12.5, callback)
        """
        config = make_config(passes=("tim",))
        noisy = lint_source(
            textwrap.dedent(source),
            path="fixture.py",
            config=config,
            module="repro.sample.fixture",
        )
        tim_ids = {f.rule_id for f in noisy.findings if f.rule_id.startswith("TIM")}
        assert tim_ids, "expected a timerlint finding to exercise the prefix"
        target = sorted(tim_ids)[0]
        silenced = lint_source(
            textwrap.dedent(source).replace(
                "engine.schedule(12.5, callback)",
                f"engine.schedule(12.5, callback)  # timerlint: disable={target}",
            ),
            path="fixture.py",
            config=config,
            module="repro.sample.fixture",
        )
        assert target not in {f.rule_id for f in silenced.findings}
        assert target in {f.rule_id for f in silenced.suppressed}

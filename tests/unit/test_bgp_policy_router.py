"""No-valley policy exercised through the router's export machinery.

The policy unit tests check the rules in isolation; these check that
`BgpRouter` actually consults them: a route learned from a provider must
reach customers only, customer routes go everywhere, and local-pref
makes a longer customer path beat a shorter provider path.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bgp.messages import UpdateMessage
from repro.bgp.mrai import MraiConfig
from repro.bgp.policy import NoValleyPolicy, Relationship
from repro.bgp.router import BgpRouter, RouterConfig
from repro.net.link import LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class PeerStub(Node):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.updates: List[UpdateMessage] = []

    def handle_message(self, message: Message) -> None:
        self.updates.append(message.payload)


@pytest.fixture
def setup():
    engine = Engine()
    rng = RngRegistry(13)
    network = Network(engine, rng)
    relationships = {
        ("R", "cust1"): Relationship.CUSTOMER,
        ("R", "cust2"): Relationship.CUSTOMER,
        ("R", "peerA"): Relationship.PEER,
        ("R", "prov"): Relationship.PROVIDER,
    }
    policy = NoValleyPolicy.from_mapping(relationships)
    router = BgpRouter(
        "R", engine, rng, policy=policy, config=RouterConfig(mrai=MraiConfig(base=0.0))
    )
    network.add_node(router)
    peers = {}
    for name in ("cust1", "cust2", "peerA", "prov"):
        peer = PeerStub(name)
        network.add_node(peer)
        network.add_link("R", name, LinkConfig(base_delay=0.001, jitter=0.0))
        peers[name] = peer
    return engine, router, peers


def announce(engine, peers, from_peer, path):
    peers[from_peer].send("R", UpdateMessage(prefix="p0", as_path=path))
    engine.run(until=engine.now + 1.0)


def recipients(peers):
    return {name for name, peer in peers.items()
            if any(u.is_announcement for u in peer.updates)}


def test_provider_route_exported_to_customers_only(setup):
    engine, router, peers = setup
    announce(engine, peers, "prov", ("prov", "origin"))
    assert recipients(peers) == {"cust1", "cust2"}


def test_peer_route_exported_to_customers_only(setup):
    engine, router, peers = setup
    announce(engine, peers, "peerA", ("peerA", "origin"))
    assert recipients(peers) == {"cust1", "cust2"}


def test_customer_route_exported_everywhere(setup):
    engine, router, peers = setup
    announce(engine, peers, "cust1", ("cust1", "origin"))
    assert recipients(peers) == {"cust2", "peerA", "prov"}


def test_self_originated_exported_everywhere(setup):
    engine, router, peers = setup
    router.originate("p0")
    engine.run(until=engine.now + 1.0)
    assert recipients(peers) == {"cust1", "cust2", "peerA", "prov"}


def test_prefer_customer_beats_shorter_provider_path(setup):
    engine, router, peers = setup
    announce(engine, peers, "prov", ("prov", "origin"))  # 2 hops
    announce(engine, peers, "cust1", ("cust1", "x", "y", "origin"))  # 4 hops
    best = router.best_route("p0")
    assert best.learned_from == "cust1"


def test_switch_to_customer_route_withdraws_from_peer(setup):
    """When the best route moves from provider-learned to
    customer-learned, peers that had no route must now hear one — and
    when it moves back, the customer-only restriction reapplies."""
    engine, router, peers = setup
    announce(engine, peers, "prov", ("prov", "origin"))
    assert not any(u.is_announcement for u in peers["peerA"].updates)
    announce(engine, peers, "cust1", ("cust1", "z", "origin"))
    # Customer route now best: peerA hears it.
    assert any(u.is_announcement for u in peers["peerA"].updates)
    # Customer withdraws: best falls back to the provider route, which
    # may not be exported to the peer — peerA must receive a withdrawal.
    peers["cust1"].send("R", UpdateMessage(prefix="p0", as_path=None))
    engine.run(until=engine.now + 1.0)
    assert peers["peerA"].updates[-1].is_withdrawal
    assert router.best_route("p0").learned_from == "prov"


def test_no_valley_blocks_peer_to_provider_leak(setup):
    """A peer route must never reach the provider even across multiple
    best-path changes."""
    engine, router, peers = setup
    announce(engine, peers, "peerA", ("peerA", "origin"))
    announce(engine, peers, "peerA", ("peerA", "w", "origin"))
    announce(engine, peers, "peerA", ("peerA", "origin"))
    assert not any(u.is_announcement for u in peers["prov"].updates)

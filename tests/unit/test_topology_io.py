"""Unit tests for topology serialization."""

from __future__ import annotations

import json

import pytest

from repro.errors import TopologyError
from repro.topology.internet import internet_topology
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.mesh import mesh_topology


def test_round_trip_mesh(tmp_path):
    original = mesh_topology(4, 5)
    path = tmp_path / "mesh.json"
    save_topology(original, path)
    loaded = load_topology(path)
    assert loaded.name == original.name
    assert loaded.nodes == original.nodes
    assert loaded.edges == original.edges
    assert loaded.metadata == original.metadata
    assert loaded.relationships is None


def test_round_trip_with_relationships(tmp_path):
    original = internet_topology(30, seed=4, with_relationships=True)
    path = tmp_path / "internet.json"
    save_topology(original, path)
    loaded = load_topology(path)
    assert loaded.edges == original.edges
    assert loaded.relationships is not None
    for u, v in original.edges:
        assert loaded.relationships.relationship(u, v) is (
            original.relationships.relationship(u, v)
        )


def test_loaded_topology_usable_in_scenario(tmp_path):
    from repro.core.params import CISCO_DEFAULTS
    from repro.workload.scenarios import ScenarioConfig, run_episode

    original = mesh_topology(3, 3)
    path = tmp_path / "t.json"
    save_topology(original, path)
    loaded = load_topology(path)
    result = run_episode(
        ScenarioConfig(topology=loaded, damping=CISCO_DEFAULTS, seed=1), pulses=1
    )
    assert result.message_count > 0


def test_file_is_valid_json(tmp_path):
    path = tmp_path / "t.json"
    save_topology(mesh_topology(3, 3), path)
    document = json.loads(path.read_text())
    assert document["format_version"] == 1
    assert len(document["nodes"]) == 9


def test_bad_format_version_rejected():
    document = topology_to_dict(mesh_topology(3, 3))
    document["format_version"] = 99
    with pytest.raises(TopologyError):
        topology_from_dict(document)


def test_malformed_edge_rejected():
    document = topology_to_dict(mesh_topology(3, 3))
    document["edges"].append(["only-one"])
    with pytest.raises(TopologyError):
        topology_from_dict(document)


def test_unknown_relationship_kind_rejected():
    document = topology_to_dict(internet_topology(10, seed=1, with_relationships=True))
    document["relationships"][0]["kind"] = "frenemy"
    with pytest.raises(TopologyError):
        topology_from_dict(document)


def test_non_json_file_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("not json at all {")
    with pytest.raises(TopologyError):
        load_topology(path)


def test_relationship_cycle_rejected_on_load():
    document = {
        "format_version": 1,
        "name": "cycle",
        "nodes": ["a", "b", "c"],
        "edges": [["a", "b"], ["b", "c"], ["a", "c"]],
        "metadata": {},
        "relationships": [
            {"kind": "provider", "provider": "a", "customer": "b"},
            {"kind": "provider", "provider": "b", "customer": "c"},
            {"kind": "provider", "provider": "c", "customer": "a"},
        ],
    }
    with pytest.raises(TopologyError):
        topology_from_dict(document)

"""Unit tests for recharge attribution (secondary-charging analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.attribution import (
    AttributionReport,
    attribute_recharges,
    suppression_extension_seconds,
)
from repro.core.damping import ReuseEvent, SuppressionRecord
from repro.core.params import CISCO_DEFAULTS
from repro.errors import ConfigurationError


def record(recharges, started=0.0, ended=None, penalty=3000.0):
    return SuppressionRecord(
        peer="p",
        prefix="d",
        started=started,
        penalty_at_start=penalty,
        ended=ended,
        recharges=list(recharges),
    )


def reuse(time, noisy=True):
    return ReuseEvent(time=time, peer="x", prefix="d", noisy=noisy)


def test_recharge_after_noisy_reuse_is_secondary_charging():
    report = attribute_recharges(
        {"r1": [record([1010.0])]},
        [reuse(1000.0)],
        flap_times=[0.0, 60.0],
        window=60.0,
    )
    assert report.total == 1
    assert report.reuse_caused == 1
    assert report.attributions[0].cause == "reuse"
    assert report.attributions[0].reuse_time == 1000.0
    assert report.secondary_fraction == 1.0


def test_recharge_during_flapping_attributed_to_flap():
    report = attribute_recharges(
        {"r1": [record([65.0])]},
        [],
        flap_times=[0.0, 60.0],
        window=60.0,
    )
    assert report.flap_caused == 1
    assert report.secondary_fraction == 0.0


def test_overlapping_causes_are_mixed():
    report = attribute_recharges(
        {"r1": [record([70.0])]},
        [reuse(50.0)],
        flap_times=[60.0],
        window=60.0,
    )
    assert report.mixed == 1
    assert report.secondary_fraction == 1.0  # reuse is a possible cause


def test_silent_reuses_cannot_cause_recharges():
    report = attribute_recharges(
        {"r1": [record([1010.0])]},
        [reuse(1000.0, noisy=False)],
        flap_times=[0.0],
        window=60.0,
    )
    assert report.unattributed == 1


def test_cause_outside_window_is_unattributed():
    report = attribute_recharges(
        {"r1": [record([2000.0])]},
        [reuse(1000.0)],
        flap_times=[0.0],
        window=60.0,
    )
    assert report.unattributed == 1


def test_latest_cause_wins():
    report = attribute_recharges(
        {"r1": [record([1050.0])]},
        [reuse(1000.0), reuse(1040.0)],
        flap_times=[],
        window=60.0,
    )
    assert report.attributions[0].reuse_time == 1040.0


def test_fanout_by_reuse_event():
    records = {
        "r1": [record([1010.0, 2010.0])],
        "r2": [record([1015.0])],
    }
    report = attribute_recharges(
        records, [reuse(1000.0), reuse(2000.0)], flap_times=[], window=60.0
    )
    fanout = report.fanout_by_reuse_event()
    assert fanout[0] == (1000.0, 2)
    assert fanout[1] == (2000.0, 1)


def test_attributions_sorted_by_time():
    records = {
        "r1": [record([500.0])],
        "r2": [record([100.0])],
    }
    report = attribute_recharges(records, [reuse(90.0), reuse(490.0)], [], window=60.0)
    times = [a.time for a in report.attributions]
    assert times == sorted(times)


def test_empty_report():
    report = AttributionReport()
    assert report.total == 0
    assert report.secondary_fraction == 0.0
    assert report.fanout_by_reuse_event() == []


def test_window_validation():
    with pytest.raises(ConfigurationError):
        attribute_recharges({}, [], [], window=0.0)


class TestSuppressionExtension:
    def test_no_recharge_no_extension(self):
        rec = record([], started=0.0, penalty=3000.0)
        rec.ended = CISCO_DEFAULTS.reuse_delay(3000.0)
        assert suppression_extension_seconds([rec], CISCO_DEFAULTS) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_extension_measured(self):
        baseline = CISCO_DEFAULTS.reuse_delay(3000.0)
        rec = record([100.0], started=0.0, penalty=3000.0, ended=baseline + 500.0)
        assert suppression_extension_seconds([rec], CISCO_DEFAULTS) == pytest.approx(
            500.0, rel=1e-6
        )

    def test_ongoing_suppression_ignored(self):
        rec = record([100.0], started=0.0, penalty=3000.0, ended=None)
        assert suppression_extension_seconds([rec], CISCO_DEFAULTS) == 0.0

    def test_sums_over_records(self):
        baseline = CISCO_DEFAULTS.reuse_delay(3000.0)
        records = [
            record([], started=0.0, penalty=3000.0, ended=baseline + 100.0),
            record([], started=0.0, penalty=3000.0, ended=baseline + 200.0),
        ]
        assert suppression_extension_seconds(records, CISCO_DEFAULTS) == pytest.approx(
            300.0, rel=1e-6
        )


def test_end_to_end_attribution_on_real_run():
    """On a real single-pulse mesh run, most recharges are attributable
    to reuse waves — the paper's secondary-charging claim, verified
    causally rather than by timing alone."""
    from repro.analysis.attribution import analyze_run
    from repro.experiments.base import run_point, small_mesh_config

    result = run_point(small_mesh_config(seed=3), pulses=1)
    report = analyze_run(result)
    assert report.total == result.summary.secondary_charges
    # After the origin's final announcement (+window), flaps can no longer
    # explain recharges — reuse waves must.
    late = [a for a in report.attributions if a.time > result.flap_times[-1] + 60.0]
    assert late, "expected late recharges in a damping run"
    assert all(a.cause in ("reuse", "unattributed") for a in late)
    assert any(a.cause == "reuse" for a in late)

"""Unit tests for the sweep executor's pool-failure hardening.

Real worker death (OOM kill, segfault) and wedged workers are
nondeterministic to provoke, so these tests substitute fake pools for
``ProcessPoolExecutor`` in the module namespace: the fakes run chunks
inline (same process, same initializer contract) while simulating the
pool-level failures the executor must survive — a broken pool with
salvageable completed futures, a chunk that never finishes, and a
deterministic episode error that must *not* be retried. The persistent
pool manager keys warm pools on the executor class, so each fake class
gets its own pools and never aliases the real spawn pools.
"""

from __future__ import annotations

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from typing import List

import pytest

import repro.experiments.parallel as parallel_mod
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.parallel import (
    PointOutcome,
    _salvage_chunks,
    execute_sweep,
    shutdown_worker_pools,
)


class _InlinePool:
    """Runs submitted chunks synchronously in-process; honours the
    initializer contract the real pool manager uses."""

    instances: List["_InlinePool"] = []

    def __init__(self, max_workers, mp_context=None, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        self.submitted = 0
        type(self).instances.append(self)

    def submit(self, fn, *args):
        self.submitted += 1
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _BreaksAfterFirstPool(_InlinePool):
    """First instance completes its first submission then breaks every
    later future; subsequent instances behave normally. Models a worker
    dying mid-sweep with completed chunks left to salvage."""

    def submit(self, fn, *args):
        if type(self).instances[0] is self and self.submitted >= 1:
            self.submitted += 1
            future: Future = Future()
            future.set_exception(BrokenProcessPool("worker died"))
            return future
        return super().submit(fn, *args)


class _NeverFinishesPool(_InlinePool):
    """Every future stays pending forever: a wedged worker."""

    def submit(self, fn, *args):
        self.submitted += 1
        return Future()


@pytest.fixture(autouse=True)
def _reset_fakes():
    # Warm pools persist across execute_sweep calls by design; drain the
    # manager so no test inherits (or leaks) a parked fake pool.
    shutdown_worker_pools()
    _InlinePool.instances = []
    _BreaksAfterFirstPool.instances = []
    _NeverFinishesPool.instances = []
    yield
    shutdown_worker_pools()


def test_execute_sweep_validates_retry_and_timeout_arguments(fast_config):
    with pytest.raises(ConfigurationError, match="max_retries"):
        execute_sweep(fast_config, (0, 1), max_retries=-1)
    with pytest.raises(ConfigurationError, match="point_timeout"):
        execute_sweep(fast_config, (0, 1), point_timeout=0.0)
    with pytest.raises(ConfigurationError, match="chunk_size"):
        execute_sweep(fast_config, (0, 1), jobs=2, chunk_size=0)
    with pytest.raises(ConfigurationError, match="snapshot_transport"):
        execute_sweep(fast_config, (0, 1), jobs=2, snapshot_transport="carrier-pigeon")


def test_broken_pool_salvages_completed_points_and_retries(
    fast_config, monkeypatch
):
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _BreaksAfterFirstPool)
    outcomes = execute_sweep(
        fast_config, (0, 1, 2), jobs=2, max_retries=2, chunk_size=1
    )
    assert [o.pulses for o in outcomes] == [0, 1, 2]
    # Attempt 1 completed one chunk before breaking and was discarded;
    # attempt 2 ran the two missing chunks on a fresh pool.
    pools = _BreaksAfterFirstPool.instances
    assert len(pools) == 2
    assert pools[1].submitted == 2


def test_broken_pool_results_match_sequential(fast_config, monkeypatch):
    sequential = execute_sweep(fast_config, (0, 1, 2), jobs=1)
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _BreaksAfterFirstPool)
    recovered = execute_sweep(fast_config, (0, 1, 2), jobs=2, chunk_size=1)
    assert [o.digest for o in recovered] == [o.digest for o in sequential]


def test_healthy_pool_is_reused_across_sweeps(fast_config, monkeypatch):
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _InlinePool)
    first = execute_sweep(fast_config, (0, 1, 2), jobs=2)
    second = execute_sweep(fast_config, (0, 1, 2), jobs=2)
    assert [o.digest for o in first] == [o.digest for o in second]
    # The sweep released its healthy pool to the warm set and the second
    # sweep acquired the same instance instead of spawning another.
    assert len(_InlinePool.instances) == 1


def test_chunked_submission_batches_points(fast_config, monkeypatch):
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _InlinePool)
    outcomes = execute_sweep(fast_config, (0, 1, 2, 3), jobs=2, chunk_size=2)
    assert [o.pulses for o in outcomes] == [0, 1, 2, 3]
    assert _InlinePool.instances[0].submitted == 2


def test_exhausted_retries_raise_with_missing_points(fast_config, monkeypatch):
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _NeverFinishesPool)
    with pytest.raises(SimulationError, match=r"sweep lost 3 point\(s\)"):
        execute_sweep(
            fast_config,
            (0, 1, 2),
            jobs=2,
            point_timeout=0.05,
            max_retries=1,
        )
    # One fresh pool per attempt: a timed-out pool is never reused.
    assert len(_NeverFinishesPool.instances) == 2


def test_deterministic_episode_errors_are_not_retried(fast_config, monkeypatch):
    calls = []

    def boom(spec, tasks):
        calls.append(tasks)
        raise SimulationError("invariant violated")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _InlinePool)
    monkeypatch.setattr(parallel_mod, "_worker_run_chunk", boom)
    with pytest.raises(SimulationError, match="invariant violated"):
        execute_sweep(fast_config, (0, 1), jobs=2, max_retries=5)
    # The error propagated from the first chunk of the first attempt:
    # rerunning the same seed would reproduce it, so no retry happened.
    assert len(_InlinePool.instances) == 1


def _outcome(pulses: int, digest: str) -> PointOutcome:
    return PointOutcome(
        pulses=pulses,
        convergence_time=float(pulses),
        message_count=pulses,
        suppressions=0,
        peak_damped_links=0,
        secondary_charges=0,
        warmup_convergence=0.5,
        digest=digest,
    )


def test_salvage_harvests_only_clean_chunks():
    good: Future = Future()
    good.set_result([(0, _outcome(1, "d")), (1, _outcome(2, "f"))])
    pending: Future = Future()
    broken: Future = Future()
    broken.set_exception(BrokenProcessPool("dead"))
    already = _outcome(0, "e")
    results = {3: already}
    _salvage_chunks(
        [
            (((0, 1), (1, 2)), good),
            (((2, 3),), pending),
            (((4, 5),), broken),
        ],
        results,
    )
    assert results == {0: _outcome(1, "d"), 1: _outcome(2, "f"), 3: already}

"""Unit tests for the semlint protocol-semantics rule catalogue.

Every SEM rule gets a firing fixture, a suppression check, and a
compliant fixture that must stay silent. Module scoping (decision /
timer / penalty / damping modules) is exercised through the ``module``
argument, exactly as the runner derives it from file paths.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def findings_for(source: str, module: str = "repro.bgp.fixture") -> list:
    report = lint_source(textwrap.dedent(source), path="fixture.py", module=module)
    assert not report.parse_errors
    return report.findings


def sem_findings(source: str, rule_id: str, module: str = "repro.bgp.fixture") -> list:
    return [f for f in findings_for(source, module=module) if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# SEM001 — decision-process purity
# ----------------------------------------------------------------------


class TestSEM001:
    def test_fires_on_clock_read_in_decision_module(self):
        findings = sem_findings(
            """
            def select_best(candidates, engine):
                stamp = engine.now
                return max(candidates), stamp
            """,
            "SEM001",
            module="repro.bgp.decision",
        )
        assert len(findings) == 1
        assert "reads-clock" in findings[0].message
        assert "select_best" in findings[0].message

    def test_fires_on_transitive_effect(self):
        # The effect hides one call away: select_best itself looks clean.
        findings = sem_findings(
            """
            class Decider:
                def _bookkeep(self, route):
                    self.loc_rib.set_route("p0", route)

                def select_best(self, candidates):
                    best = max(candidates)
                    self._bookkeep(best)
                    return best
            """,
            "SEM001",
            module="repro.bgp.decision",
        )
        assert len(findings) == 2  # both the leaf and the caller

    def test_fires_on_effectful_closure(self):
        findings = sem_findings(
            """
            def rank_candidates(candidates, engine):
                def tiebreak():
                    engine.schedule(0.0, lambda: None)
                return sorted(candidates), tiebreak
            """,
            "SEM001",
            module="repro.bgp.decision",
        )
        assert findings

    def test_respects_disable_on_def_line(self):
        assert not sem_findings(
            """
            def select_best(candidates, engine):  # detlint: disable=SEM001
                return max(candidates), engine.now
            """,
            "SEM001",
            module="repro.bgp.decision",
        )

    def test_quiet_on_pure_decision_code(self):
        assert not sem_findings(
            """
            def preference_key(route, local_pref):
                return (-local_pref.get(route.peer, 100), len(route.as_path))

            def select_best(candidates, local_pref):
                usable = [c for c in candidates if not c.suppressed]
                if not usable:
                    return None
                return min(usable, key=lambda c: preference_key(c, local_pref))
            """,
            "SEM001",
            module="repro.bgp.decision",
        )

    def test_quiet_outside_decision_modules(self):
        assert not sem_findings(
            """
            def select_best(candidates, engine):
                return max(candidates), engine.now
            """,
            "SEM001",
            module="repro.bgp.router",
        )


# ----------------------------------------------------------------------
# SEM002 — timer scheduling through Engine/Timer APIs
# ----------------------------------------------------------------------


class TestSEM002:
    def test_fires_on_heapq_outside_sim(self):
        findings = sem_findings(
            """
            import heapq

            def arm(queue, when, cb):
                heapq.heappush(queue, (when, cb))
            """,
            "SEM002",
            module="repro.core.fixture",
        )
        assert len(findings) == 1
        assert "heapq.heappush" in findings[0].message

    def test_fires_on_expiry_write_and_scheduled_event(self):
        source = """
            from repro.sim.engine import ScheduledEvent

            def rearm(entry, now, delay):
                entry.expiry = now + delay
                return ScheduledEvent(now + delay, 0, lambda: None)
            """
        assert len(sem_findings(source, "SEM002", module="repro.core.fixture")) == 2

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            def rearm(entry, now, delay):
                entry.expiry = now + delay  # detlint: disable=SEM002
            """,
            "SEM002",
            module="repro.core.fixture",
        )

    def test_quiet_inside_timer_substrate(self):
        assert not sem_findings(
            """
            import heapq

            def push(queue, event):
                heapq.heappush(queue, event)

            def advance(self, event):
                self._now = event.time
            """,
            "SEM002",
            module="repro.sim.engine",
        )

    def test_quiet_on_engine_api_use(self):
        assert not sem_findings(
            """
            def arm(engine, timer, delay, cb):
                engine.schedule(delay, cb)
                timer.reschedule(delay)
            """,
            "SEM002",
            module="repro.core.fixture",
        )


# ----------------------------------------------------------------------
# SEM003 — penalty arithmetic with named constants
# ----------------------------------------------------------------------


class TestSEM003:
    def test_fires_on_literal_threshold_compare(self):
        findings = sem_findings(
            """
            def should_suppress(entry):
                return entry.penalty > 3000.0
            """,
            "SEM003",
            module="repro.core.fixture",
        )
        assert len(findings) == 1
        assert "3000" in findings[0].message

    def test_fires_on_literal_in_arithmetic(self):
        assert sem_findings(
            """
            def bump(entry):
                entry.penalty = entry.penalty + 1000.0
            """,
            "SEM003",
            module="repro.core.fixture",
        )

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            def should_suppress(entry):
                return entry.penalty > 3000.0  # detlint: disable=SEM003
            """,
            "SEM003",
            module="repro.core.fixture",
        )

    def test_quiet_with_named_params(self):
        assert not sem_findings(
            """
            def should_suppress(entry, params):
                return entry.penalty > params.cutoff

            def decay(entry, params, dt):
                return entry.penalty * 2.0 ** (-dt / params.half_life)
            """,
            "SEM003",
            module="repro.core.fixture",
        )

    def test_quiet_on_structural_values(self):
        assert not sem_findings(
            """
            def halve(entry):
                if entry.penalty <= 0:
                    return 0.0
                return entry.penalty * 0.5
            """,
            "SEM003",
            module="repro.core.fixture",
        )

    def test_quiet_in_params_module_and_outside_penalty_modules(self):
        source = """
            CISCO_CUTOFF = 2000.0

            def preset():
                return {"cutoff": CISCO_CUTOFF, "penalty": 1000.0}

            def compare(penalty):
                return penalty > 3000.0
            """
        assert not sem_findings(source, "SEM003", module="repro.core.params")
        assert not sem_findings(source, "SEM003", module="repro.metrics.fixture")


# ----------------------------------------------------------------------
# SEM004 — equality on computed time expressions
# ----------------------------------------------------------------------


class TestSEM004:
    def test_fires_on_arithmetic_time_equality(self):
        findings = sem_findings(
            """
            def due(entry, now, delay):
                return entry.armed_at == now + delay
            """,
            "SEM004",
        )
        assert len(findings) == 1

    def test_fires_on_time_returning_call_equality(self):
        assert sem_findings(
            """
            def aligned(manager, entry, horizon):
                return manager.reuse_delay(entry) != horizon
            """,
            "SEM004",
        )

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            def due(entry, now, delay):
                return entry.armed_at == now + delay  # detlint: disable=SEM004
            """,
            "SEM004",
        )

    def test_quiet_on_ordering_and_tolerance(self):
        assert not sem_findings(
            """
            def due(entry, now, delay, eps):
                early = entry.armed_at < now + delay
                close = abs(entry.armed_at - (now + delay)) <= eps
                return early or close
            """,
            "SEM004",
        )

    def test_quiet_on_non_time_arithmetic(self):
        assert not sem_findings(
            """
            def parity(count):
                return count % 2 == 0
            """,
            "SEM004",
        )


# ----------------------------------------------------------------------
# SEM005 — Loc-RIB mutations notify metrics
# ----------------------------------------------------------------------


class TestSEM005:
    def test_fires_on_silent_set_route(self):
        findings = sem_findings(
            """
            class Router:
                def install(self, prefix, route):
                    self.loc_rib.set_route(prefix, route)
            """,
            "SEM005",
        )
        assert len(findings) == 1

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            class Router:
                def install(self, prefix, route):
                    self.loc_rib.set_route(prefix, route)  # detlint: disable=SEM005
            """,
            "SEM005",
        )

    def test_quiet_when_stats_touched(self):
        assert not sem_findings(
            """
            class Router:
                def install(self, prefix, route, now):
                    self.loc_rib.set_route(prefix, route)
                    self.stats.best_path_changes += 1
                    self.last_best_change = now
            """,
            "SEM005",
        )

    def test_quiet_on_other_receivers(self):
        assert not sem_findings(
            """
            class Router:
                def stash(self, prefix, route):
                    self.adj_rib_in.set_route(prefix, route)
            """,
            "SEM005",
        )

    def test_nested_handler_checked_independently(self):
        # The outer function touches stats, but the nested callback that
        # mutates the Loc-RIB does not — the callback must still fire.
        assert sem_findings(
            """
            class Router:
                def plan(self, prefix, route):
                    self.stats.plans += 1
                    def apply_later():
                        self.loc_rib.set_route(prefix, route)
                    return apply_later
            """,
            "SEM005",
        )


# ----------------------------------------------------------------------
# SEM006 — monotonic sequence comparison
# ----------------------------------------------------------------------


class TestSEM006:
    def test_fires_on_seq_inequality(self):
        findings = sem_findings(
            """
            def is_fresh(rcn, last_seq):
                return rcn.seq != last_seq
            """,
            "SEM006",
        )
        assert len(findings) == 1

    def test_fires_on_seq_equality(self):
        assert sem_findings(
            """
            def already_seen(self, notification):
                return notification.seq_num == self.highest_seq
            """,
            "SEM006",
        )

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            def is_fresh(rcn, last_seq):
                return rcn.seq != last_seq  # detlint: disable=SEM006
            """,
            "SEM006",
        )

    def test_quiet_on_ordering_comparison(self):
        assert not sem_findings(
            """
            def is_fresh(rcn, last_seq):
                return rcn.seq > last_seq

            def accept(self, notification):
                if notification.seq_num >= self.highest_seq:
                    self.highest_seq = notification.seq_num
            """,
            "SEM006",
        )

    def test_quiet_on_none_check(self):
        assert not sem_findings(
            """
            def first_sighting(last_seq):
                return last_seq == None
            """,
            "SEM006",
        )


# ----------------------------------------------------------------------
# SEM007 — suppression state owned by the damping manager
# ----------------------------------------------------------------------


class TestSEM007:
    def test_fires_on_foreign_suppressed_write(self):
        findings = sem_findings(
            """
            def force_release(entry):
                entry.suppressed = False
            """,
            "SEM007",
            module="repro.bgp.router",
        )
        assert len(findings) == 1

    def test_respects_disable_comment(self):
        assert not sem_findings(
            """
            def force_release(entry):
                entry.suppressed = False  # detlint: disable=SEM007
            """,
            "SEM007",
            module="repro.bgp.router",
        )

    def test_quiet_inside_damping_manager(self):
        assert not sem_findings(
            """
            def _reuse_fired(self, entry):
                entry.suppressed = False
            """,
            "SEM007",
            module="repro.core.damping",
        )

    def test_quiet_on_reads(self):
        assert not sem_findings(
            """
            def count_suppressed(entries):
                return sum(1 for e in entries if e.suppressed)
            """,
            "SEM007",
            module="repro.bgp.router",
        )

"""Unit tests for the Section 3 intended-behaviour model."""

from __future__ import annotations

import math

import pytest

from repro.core.intended import (
    FlapEvent,
    IntendedBehaviorModel,
    pulse_events,
)
from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS, UpdateKind
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=60.0, tup=30.0)


def test_pulse_events_structure():
    events = pulse_events(2, 60.0)
    assert [(e.time, e.kind) for e in events] == [
        (0.0, UpdateKind.WITHDRAWAL),
        (60.0, UpdateKind.REANNOUNCEMENT),
        (120.0, UpdateKind.WITHDRAWAL),
        (180.0, UpdateKind.REANNOUNCEMENT),
    ]


def test_pulse_events_zero():
    assert pulse_events(0, 60.0) == []


def test_pulse_events_validation():
    with pytest.raises(ConfigurationError):
        pulse_events(-1, 60.0)
    with pytest.raises(ConfigurationError):
        pulse_events(1, 0.0)


def test_no_suppression_for_one_or_two_pulses(model):
    """Paper: 'when the number of pulses n = 1 or 2, route suppression is
    not triggered and the convergence time is the same as no damping'."""
    for n in (1, 2):
        prediction = model.predict(n)
        assert not prediction.suppressed
        assert prediction.convergence_time == model.tup
        assert prediction.suppression_pulse is None


def test_suppression_from_third_pulse(model):
    """Paper: 'when n >= 3, route suppression is triggered'."""
    prediction = model.predict(3)
    assert prediction.suppressed
    assert prediction.suppression_pulse == 3
    assert prediction.convergence_time > model.tup


def test_penalty_after_pulses_matches_recurrence(model):
    params = CISCO_DEFAULTS
    lam = params.decay_constant
    # Withdrawals at 0, 120, 240; final announcement at 300 adds 0 (Cisco).
    expected = (
        1000.0 * math.exp(-lam * 300.0)
        + 1000.0 * math.exp(-lam * 180.0)
        + 1000.0 * math.exp(-lam * 60.0)
    )
    assert model.penalty_after_pulses(3) == pytest.approx(expected)


def test_reuse_delay_formula(model):
    prediction = model.predict(5)
    lam = CISCO_DEFAULTS.decay_constant
    expected = math.log(prediction.penalty_at_final / 750.0) / lam
    assert prediction.reuse_delay == pytest.approx(expected)
    assert prediction.convergence_time == pytest.approx(expected + model.tup)


def test_convergence_monotone_in_pulses_once_suppressed(model):
    previous = 0.0
    for n in range(3, 12):
        value = model.predict(n).convergence_time
        assert value >= previous
        previous = value


def test_convergence_bounded_by_max_hold_down(model):
    prediction = model.predict(60)
    assert prediction.reuse_delay <= CISCO_DEFAULTS.max_hold_down + 1e-6


def test_zero_pulses(model):
    prediction = model.predict(0)
    assert prediction.convergence_time == 0.0
    assert not prediction.suppressed


def test_critical_pulse_count_cisco(model):
    assert model.critical_pulse_count() == 3


def test_juniper_model_differs():
    """Juniper charges re-announcements too but cuts off at 3000."""
    juniper = IntendedBehaviorModel(JUNIPER_DEFAULTS, flap_interval=60.0, tup=30.0)
    # Pulse 1: 1000 (down) + 1000 (up) = ~2000 < 3000 -> not suppressed.
    assert not juniper.predict(1).suppressed
    # Pulse 2 pushes past 3000.
    assert juniper.predict(2).suppressed


def test_longer_interval_delays_suppression():
    # With 14-minute gaps between withdrawals, suppression needs more
    # than three pulses (the penalty partially decays between flaps).
    medium = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=420.0, tup=30.0)
    assert not medium.predict(3).suppressed
    assert medium.critical_pulse_count() > 3
    # With 20-minute gaps the geometric sum never reaches the cutoff:
    # suppression is never triggered at all.
    slow = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=600.0, tup=30.0)
    assert slow.critical_pulse_count() is None


def test_trajectory_tracks_suppression_flag(model):
    events = pulse_events(4, 60.0)
    trajectory = model.penalty_trajectory(events)
    flags = [s for _, _, s in trajectory]
    # Not suppressed for the first two pulses (4 events), suppressed after.
    assert flags[:4] == [False, False, False, False]
    assert flags[4] is True


def test_trajectory_reuse_resets_flag(model):
    """A long quiet gap lets the penalty decay below reuse; a later flap
    starts unsuppressed."""
    events = [
        FlapEvent(0.0, UpdateKind.WITHDRAWAL),
        FlapEvent(120.0, UpdateKind.WITHDRAWAL),
        FlapEvent(240.0, UpdateKind.WITHDRAWAL),  # suppressed here
        FlapEvent(240.0 + 6 * 3600.0, UpdateKind.WITHDRAWAL),  # long gap
    ]
    trajectory = model.penalty_trajectory(events)
    assert trajectory[2][2] is True
    assert trajectory[3][2] is False


def test_sweep(model):
    predictions = model.sweep(range(0, 5))
    assert [p.pulses for p in predictions] == [0, 1, 2, 3, 4]


def test_model_validation():
    with pytest.raises(ConfigurationError):
        IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=0.0)
    with pytest.raises(ConfigurationError):
        IntendedBehaviorModel(CISCO_DEFAULTS, tup=-1.0)
